//! The §4.2 loop-unrolling filter must preserve semantics on every real
//! workload, keep the dynamic instruction count identical (each copy keeps
//! the loop test), and measurably help the Levo machine on small-body
//! loops.

use dee::isa::transform::{unroll_loops, UnrollConfig};
use dee::levo::{Levo, LevoConfig};
use dee::vm::trace_program;
use dee::workloads::{all_workloads, Scale};

#[test]
fn filter_preserves_workload_semantics_and_dynamic_length() {
    for w in all_workloads(Scale::Tiny) {
        let before = trace_program(&w.program, &w.initial_memory, 50_000_000).expect("runs");
        let result = unroll_loops(&w.program, &UnrollConfig::default()).expect("filter runs");
        let after =
            trace_program(&result.program, &w.initial_memory, 50_000_000).expect("still runs");
        assert_eq!(before.output(), after.output(), "{}: output", w.name);
        assert_eq!(
            before.len(),
            after.len(),
            "{}: dynamic instruction count must not change",
            w.name
        );
    }
}

#[test]
fn filter_finds_loops_in_loopy_workloads() {
    let w = all_workloads(Scale::Tiny)
        .into_iter()
        .find(|w| w.name == "eqntott")
        .expect("eqntott present");
    let result = unroll_loops(&w.program, &UnrollConfig::default()).expect("filter runs");
    assert!(
        !result.unrolled.is_empty(),
        "eqntott has small single-entry loops to unroll"
    );
}

#[test]
fn unrolling_helps_levo_when_columns_are_scarce() {
    // With m = 1 iteration column, a wide loop body executes one iteration
    // at a time; unrolling gives the single column k iterations' worth of
    // independent work — exactly the §4.2 motivation for the filter.
    use dee::isa::{Assembler, Reg};
    let mut asm = Assembler::new();
    let (r1, r2, r3, r4, r5) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
    );
    asm.li(r1, 200);
    asm.li(r2, 0);
    asm.label("top");
    // Four independent operations per iteration plus the counter.
    asm.andi(r3, r1, 7);
    asm.slli(r4, r1, 2);
    asm.xori(r5, r1, 0x55);
    asm.add(r2, r2, r3);
    asm.addi(r1, r1, -1);
    asm.bgt_label(r1, Reg::ZERO, "top");
    asm.out(r2);
    asm.halt();
    let p = asm.assemble().unwrap();

    let result = unroll_loops(
        &p,
        &UnrollConfig {
            factor: 4,
            max_body: 8,
        },
    )
    .unwrap();
    assert_eq!(result.unrolled.len(), 1);

    let config = LevoConfig {
        m: 1,
        ..LevoConfig::default()
    }; // one column
    let plain = Levo::new(config).run(&p, &[]).expect("plain runs");
    let unrolled = Levo::new(config)
        .run(&result.program, &[])
        .expect("unrolled runs");
    assert_eq!(plain.output, unrolled.output);
    assert!(
        unrolled.ipc() > plain.ipc() * 1.2,
        "unrolled {:.2} IPC should clearly beat plain {:.2}",
        unrolled.ipc(),
        plain.ipc()
    );
}
