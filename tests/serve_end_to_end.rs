//! End-to-end tests of the `dee-serve` subsystem over real sockets.
//!
//! The load-bearing property: concurrent server responses are *byte-
//! identical* to what a direct, single-threaded call into the simulation
//! stack produces. The worker pool, queue, and cache must be transparent
//! to results.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::serve::{outcome_json, tree_json, Json, Server, ServerConfig};
use dee::theory::{StaticTree, TreeParams};
use dee::workloads::Scale;

fn spawn(workers: usize) -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .expect("bind on port 0")
}

/// One `Connection: close` HTTP exchange; returns (status, body).
fn exchange(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, &raw)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX)
}

#[test]
fn healthz_responds() {
    let server = spawn(2);
    let (status, body) = get(server.addr(), "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.shutdown();
}

#[test]
fn concurrent_simulate_matches_direct_results_byte_for_byte() {
    let server = spawn(4);
    let addr = server.addr();

    // Expected payloads, computed directly and single-threaded.
    let expected: Vec<String> = [("compress", 16u32), ("xlisp", 48u32)]
        .iter()
        .map(|&(name, et)| {
            let workload = match name {
                "compress" => dee::workloads::compress::build(Scale::Tiny),
                _ => dee::workloads::xlisp::build(Scale::Tiny),
            };
            let trace = workload.capture_trace().unwrap();
            let prepared = PreparedTrace::new(&workload.program, &trace);
            let outcome = simulate(
                &prepared,
                &SimConfig::new(Model::DeeCdMf, et).with_p(prepared.accuracy()),
            );
            outcome_json(&outcome).to_string()
        })
        .collect();

    // 16 concurrent clients alternating between the two requests.
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let expected = expected[i % 2].clone();
            std::thread::spawn(move || {
                let (name, et) = if i % 2 == 0 {
                    ("compress", 16)
                } else {
                    ("xlisp", 48)
                };
                let body = format!(
                    r#"{{"workload":"{name}","scale":"tiny","model":"DEE-CD-MF","et":{et}}}"#
                );
                let (status, response) = post(addr, "/simulate", &body);
                assert_eq!(status, 200, "{response}");
                let json = dee::serve::json::parse(&response).expect("valid json");
                let results = json.get("results").and_then(Json::as_arr).expect("results");
                assert_eq!(results.len(), 1);
                assert_eq!(results[0].to_string(), expected, "client {i}");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client");
    }

    // 2 distinct cache keys for 16 requests; preparation is single-flight,
    // so exactly 2 misses regardless of interleaving.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let hits = scrape(&metrics, "dee_prepared_cache_hits_total");
    let misses = scrape(&metrics, "dee_prepared_cache_misses_total");
    assert_eq!((hits, misses), (14, 2), "{metrics}");
    server.shutdown();
}

#[test]
fn tree_endpoint_matches_direct_build() {
    let server = spawn(2);
    let (status, body) = post(server.addr(), "/tree", r#"{"p":0.9053,"et":100}"#);
    assert_eq!(status, 200);
    let expected = tree_json(&StaticTree::build(TreeParams { p: 0.9053, et: 100 })).to_string();
    assert_eq!(body, expected);
    server.shutdown();
}

#[test]
fn levo_endpoint_runs_a_workload() {
    let server = spawn(2);
    let (status, body) = post(
        server.addr(),
        "/levo",
        r#"{"workload":"xlisp","scale":"tiny"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let json = dee::serve::json::parse(&body).unwrap();
    assert!(json.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    assert!(json.get("output_checksum").and_then(Json::as_str).is_some());
    server.shutdown();
}

#[test]
fn bad_requests_get_4xx_not_hangs() {
    let server = spawn(2);
    let addr = server.addr();
    assert_eq!(post(addr, "/simulate", "not json").0, 400);
    assert_eq!(post(addr, "/simulate", r#"{"workload":"nope"}"#).0, 400);
    assert_eq!(post(addr, "/nowhere", "{}").0, 404);
    assert_eq!(get(addr, "/simulate").0, 405);
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_load_with_503() {
    // No workers: accepted jobs stay queued, so with capacity 1 the second
    // concurrent request must be refused with 503 before queueing.
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Fills the queue: connect and send, but nobody will serve it.
    let mut parked = TcpStream::connect(addr).expect("connect");
    parked
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send");
    // Wait until the accept thread has queued the first connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = get(addr, "/healthz");
        if status == 503 {
            assert!(body.contains("queue full"), "{body}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never saw 503, last status {status}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Shutdown answers the still-parked job with 503 (no workers remain).
    server.shutdown();
    let mut response = String::new();
    parked
        .read_to_string(&mut response)
        .expect("drained response");
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
}

#[test]
fn graceful_shutdown_completes_queued_work() {
    let server = spawn(2);
    let addr = server.addr();
    // Issue a request, then shut down; both must complete cleanly.
    let client = std::thread::spawn(move || post(addr, "/tree", r#"{"et":50}"#));
    let (status, _) = client.join().expect("client");
    assert_eq!(status, 200);
    server.shutdown();
    // The port is released: a fresh bind to the same address succeeds.
    assert!(std::net::TcpListener::bind(addr).is_ok());
}
