//! Differential testing of the two execution engines.
//!
//! The pre-decoded engine (`Engine::Decoded`) is a performance rewrite of
//! the reference interpreter (`Engine::Interp`); its contract is *byte
//! identity*, not approximate agreement. For every builtin registry
//! workload and a seeded grid of `dee-gen` workload-space points, both
//! engines must produce:
//!
//! * identical `DEETRC1` serialized trace bytes,
//! * identical final machine state (FNV-1a state digest over registers,
//!   pc, halt flag, call depth, executed count, output, and memory), and
//! * identical predictor accuracy counters when the captured traces are
//!   replayed through the paper's 2-bit predictor.
//!
//! `DEE_CHAOS_SEED` (default 42) picks the generated grid;
//! `DEE_CHAOS_ITERS` (default 300) scales how many grid points run.

use dee::gen::{generate_with, GenSpec};
use dee::predict::{measure_accuracy, TwoBitCounter};
use dee::vm::{DecodedMachine, DecodedProgram, Engine, Machine, Trace};
use dee::workloads::{Scale, Workload, WorkloadRegistry};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn deetrc1_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("in-memory serialization");
    bytes
}

/// Runs the workload to completion on both machines and asserts every
/// observable agrees: trace bytes, state digests, accuracy counters.
fn assert_engines_identical(w: &Workload, label: &str) {
    let interp = w
        .capture_trace_with(Engine::Interp)
        .unwrap_or_else(|e| panic!("{label}: interpreter capture failed: {e}"));
    let decoded = w
        .capture_trace_with(Engine::Decoded)
        .unwrap_or_else(|e| panic!("{label}: decoded capture failed: {e}"));

    assert_eq!(
        deetrc1_bytes(&interp),
        deetrc1_bytes(&decoded),
        "{label}: DEETRC1 bytes diverge between engines"
    );

    let mut reference = Machine::new();
    reference.load_memory(&w.initial_memory);
    reference
        .run(&w.program, w.step_limit)
        .unwrap_or_else(|e| panic!("{label}: interpreter run failed: {e}"));
    let program = DecodedProgram::compile(&w.program);
    let mut fast = DecodedMachine::new();
    fast.try_load_memory(&w.initial_memory)
        .unwrap_or_else(|e| panic!("{label}: memory image rejected: {e}"));
    fast.run(&program, w.step_limit)
        .unwrap_or_else(|e| panic!("{label}: decoded run failed: {e}"));
    assert_eq!(
        reference.state_digest(),
        fast.state_digest(),
        "{label}: final machine state diverges between engines"
    );

    let a = measure_accuracy(&mut TwoBitCounter::new(), &interp);
    let b = measure_accuracy(&mut TwoBitCounter::new(), &decoded);
    assert_eq!(
        a, b,
        "{label}: predictor accuracy counters diverge between engines"
    );
    assert_eq!(interp.output(), w.expected_output.as_slice(), "{label}");
}

#[test]
fn registry_workloads_identical_across_engines() {
    let registry = WorkloadRegistry::builtin();
    for name in registry.names() {
        let w = registry.build(name, Scale::Tiny).expect("registered");
        assert_engines_identical(&w, name);
    }
}

#[test]
fn seeded_gen_grid_identical_across_engines() {
    // A spec grid spanning the generator's knobs: predictability sweep,
    // deep loop nests, call- and jr-heavy control, aliased memory.
    let specs = [
        "",
        "pred=0.6,spread=0.2",
        "pred=0.95,iters=32",
        "depth=3,blocks=6,iters=24",
        "calls=0.6,jr=0.4,iters=32",
        "alias=0.9,pred=0.75,iters=48",
    ];
    let seed = env_u64("DEE_CHAOS_SEED", 42);
    // Default 300 "iterations" maps to 12 grid points (two engine runs
    // plus two machine runs each); scale up for soak runs.
    let points = (env_u64("DEE_CHAOS_ITERS", 300) / 25).max(specs.len() as u64);

    for point in 0..points {
        let spec_text = specs[(point as usize) % specs.len()];
        let spec = GenSpec::parse(spec_text).expect("grid specs are valid");
        let point_seed = seed ^ (point.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let label = format!("gen[{spec_text}] seed={point_seed}");

        let interp = generate_with(&spec, point_seed, Engine::Interp)
            .unwrap_or_else(|e| panic!("{label}: interp generation failed: {e}"));
        let decoded = generate_with(&spec, point_seed, Engine::Decoded)
            .unwrap_or_else(|e| panic!("{label}: decoded generation failed: {e}"));

        // The generator validates against its own reference execution, so
        // engine-sensitive capture would surface here first.
        assert_eq!(
            interp.workload.expected_output, decoded.workload.expected_output,
            "{label}: generation-time outputs diverge"
        );
        assert_eq!(
            deetrc1_bytes(&interp.trace),
            deetrc1_bytes(&decoded.trace),
            "{label}: generation-time DEETRC1 bytes diverge"
        );
        assert_engines_identical(&interp.workload, &label);
    }
}
