//! Chaos tests: `dee-serve` under a deterministic, seeded fault storm.
//!
//! The server is spawned with an armed [`FaultPlan`] and hammered over
//! real sockets while faults inject panics, delays, short reads, and
//! spurious errors at every site. The properties under test:
//!
//! - a panicking simulation job answers *that* client with a structured
//!   `500` and the worker is respawned (visible in `/metrics`);
//! - the storm never deadlocks: every connection gets a syntactically
//!   valid HTTP response within a bounded wall-clock;
//! - the same seed produces the same injected-fault sequence;
//! - after the storm, fault-free requests return byte-identical correct
//!   results.
//!
//! `DEE_CHAOS_ITERS` scales the soak length (default 300 requests, the
//! acceptance floor); `DEE_CHAOS_SEED` picks the storm.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::serve::faults::FaultSpec;
use dee::serve::{outcome_json, FaultPlan, FaultSite, Server, ServerConfig};
use dee::workloads::Scale;

fn spawn_with(workers: usize, faults: FaultPlan) -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        faults: Arc::new(faults),
        // Tight budgets keep the whole storm fast; injected delays are
        // single-digit milliseconds.
        read_budget: Duration::from_secs(2),
        write_budget: Duration::from_secs(2),
        supervisor_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    })
    .expect("bind on port 0")
}

/// One raw exchange that never panics on transport hiccups: the server
/// may inject a read fault and close early, so the write can fail while
/// a response still arrives. Returns the full raw response text.
fn raw_exchange(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let response = raw_exchange(addr, raw.as_bytes());
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n");
    let response = raw_exchange(addr, raw.as_bytes());
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Waits until the supervisor has every worker slot alive again.
fn wait_for_healed(server: &Server, workers: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.workers_alive() < workers {
        assert!(
            Instant::now() < deadline,
            "supervisor never healed the pool: {}/{} alive",
            server.workers_alive(),
            workers
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Directly computed expected payload for the clean-request check.
fn expected_simulate_result() -> String {
    let workload = dee::workloads::compress::build(Scale::Tiny);
    let trace = workload.capture_trace().unwrap();
    let prepared = PreparedTrace::new(&workload.program, &trace);
    let outcome = simulate(
        &prepared,
        &SimConfig::new(Model::DeeCdMf, 16).with_p(prepared.accuracy()),
    );
    outcome_json(&outcome).to_string()
}

const CLEAN_BODY: &str = r#"{"workload":"compress","scale":"tiny","model":"DEE-CD-MF","et":16}"#;

#[test]
fn injected_panic_answers_500_then_worker_respawns_then_results_are_byte_identical() {
    // Fuse of 1: exactly one injected fault (a job-execution panic), then
    // the plan goes quiet and the server must behave as if nothing
    // happened.
    let plan = FaultPlan::new(7)
        .arm(
            FaultSite::JobExecute,
            FaultSpec {
                panic_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        )
        .with_fuse(1);
    let workers = 2;
    let server = spawn_with(workers, plan);
    let addr = server.addr();

    // The poisoned request: a structured 500 to this client only.
    let (status, body) = post(addr, "/simulate", CLEAN_BODY);
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The worker that caught the panic recycles; the supervisor respawns
    // it, and the respawn is visible in /metrics. Respawn is asynchronous
    // (the supervisor polls), so scrape until the counter moves.
    let deadline = Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let (_, metrics) = get(addr, "/metrics");
        if scrape(&metrics, "dee_worker_respawns_total") >= 1 {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "respawn never surfaced in /metrics: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(scrape(&metrics, "dee_panics_caught_total"), 1, "{metrics}");
    wait_for_healed(&server, workers);
    assert_eq!(
        scrape(&metrics, "dee_faults_injected_total{site=\"job_execute\"}"),
        1,
        "{metrics}"
    );

    // Identical requests now return byte-identical correct results. (The
    // envelope's `cache` field flips miss→hit after the first request, so
    // the byte-for-byte comparison is between two warm responses.)
    let expected = expected_simulate_result();
    let mut bodies = Vec::new();
    for _ in 0..3 {
        let (status, body) = post(addr, "/simulate", CLEAN_BODY);
        assert_eq!(status, 200, "{body}");
        let json = dee::serve::json::parse(&body).expect("valid json");
        let results = json
            .get("results")
            .and_then(dee::serve::Json::as_arr)
            .expect("results");
        assert_eq!(results[0].to_string(), expected);
        bodies.push(body);
    }
    assert_eq!(
        bodies[1], bodies[2],
        "identical requests must be byte-identical"
    );
    server.shutdown();
}

#[test]
fn chaos_soak_survives_a_hostile_storm() {
    let iterations = env_u64("DEE_CHAOS_ITERS", 300) as usize;
    let seed = env_u64("DEE_CHAOS_SEED", 42);
    let workers = 4;
    let clients = 8;
    let server = spawn_with(workers, FaultPlan::hostile(seed));
    let addr = server.addr();

    let started = Instant::now();
    let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                let mut valid = 0usize;
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= iterations {
                        return valid;
                    }
                    // Mix endpoints so every fault site sees traffic.
                    let response = match i % 4 {
                        0 => post(addr, "/simulate", CLEAN_BODY),
                        1 => post(addr, "/tree", r#"{"p":0.9053,"et":50}"#),
                        2 => get(addr, "/healthz"),
                        _ => get(addr, "/metrics"),
                    };
                    let (status, _) = response;
                    // Every connection must receive a syntactically valid
                    // HTTP response: a parseable status line with a
                    // plausible status code. status == 0 means the parse
                    // failed (empty or garbled response).
                    assert!(
                        (200..=599).contains(&status),
                        "request {i}: invalid response (status {status})"
                    );
                    valid += 1;
                }
            })
        })
        .collect();
    let served: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    assert_eq!(served, iterations, "every request answered");
    // Bounded wall-clock: the storm must not hang. Generous for slow CI,
    // but far below any deadlock timeout.
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "storm took {:?}",
        started.elapsed()
    );

    // The plan injected real faults (otherwise the storm proved nothing).
    assert!(
        server.faults().injected_total() > 0,
        "hostile plan injected nothing over {iterations} requests"
    );

    // End the storm: disarm, let the supervisor heal the pool.
    server.faults().disarm();
    wait_for_healed(&server, workers);

    // No leaked workers, queue drained, and clean requests are
    // byte-identical to direct computation. The first request warms the
    // cache (an injected fault may have failed the storm's preparation),
    // then two warm responses must match each other byte for byte.
    let expected = expected_simulate_result();
    let mut warm = Vec::new();
    for _ in 0..3 {
        let (status, body) = post(addr, "/simulate", CLEAN_BODY);
        assert_eq!(status, 200, "{body}");
        let json = dee::serve::json::parse(&body).expect("valid json");
        let results = json
            .get("results")
            .and_then(dee::serve::Json::as_arr)
            .expect("results");
        assert_eq!(results[0].to_string(), expected);
        warm.push(body);
    }
    assert_eq!(
        warm[1], warm[2],
        "post-storm responses must be byte-identical"
    );

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(
        scrape(&metrics, "dee_workers_alive"),
        workers as u64,
        "{metrics}"
    );
    server.shutdown();
}

#[test]
fn same_seed_produces_the_same_injected_fault_sequence() {
    let seed = env_u64("DEE_CHAOS_SEED", 42);
    // Sites whose arrival counts are a pure function of the request
    // sequence (socket sites depend on TCP segmentation, so they are
    // left out of the determinism check).
    let deterministic_sites = [
        FaultSite::QueuePush,
        FaultSite::QueuePop,
        FaultSite::JobExecute,
        FaultSite::JsonDecode,
        FaultSite::CacheLookup,
    ];
    let plan = |seed: u64| {
        let mut p = FaultPlan::new(seed);
        for site in deterministic_sites {
            p = p.arm(
                site,
                FaultSpec {
                    error_ppm: 120_000,
                    ..FaultSpec::default()
                },
            );
        }
        p
    };

    let run = |seed: u64| -> Vec<(u64, u64)> {
        // One worker and strictly sequential requests: the trip order at
        // each site is exactly the request order.
        let server = spawn_with(1, plan(seed));
        let addr = server.addr();
        for i in 0..40 {
            let _ = match i % 2 {
                0 => post(addr, "/simulate", CLEAN_BODY),
                _ => post(addr, "/tree", r#"{"p":0.9053,"et":50}"#),
            };
        }
        let counts = deterministic_sites
            .iter()
            .map(|&s| {
                (
                    server.faults().arrivals_at(s),
                    server.faults().injected_at(s),
                )
            })
            .collect();
        server.shutdown();
        counts
    };

    let a = run(seed);
    let b = run(seed);
    assert_eq!(a, b, "same seed must give the same fault sequence");
    assert!(
        a.iter().map(|(_, injected)| injected).sum::<u64>() > 0,
        "the plan never fired: {a:?}"
    );
    // A different seed gives a different (but equally deterministic)
    // storm — almost surely different injection counts.
    let c = run(seed.wrapping_add(1));
    assert_ne!(
        a, c,
        "different seeds should differ (astronomically likely)"
    );
}

#[test]
fn breaker_trips_to_fast_503_and_recovers_after_cooldown() {
    // Every job fails: three consecutive 500s trip the worker's breaker.
    let plan = FaultPlan::new(3).arm(
        FaultSite::JobExecute,
        FaultSpec {
            error_ppm: 1_000_000,
            ..FaultSpec::default()
        },
    );
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        faults: Arc::new(plan),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    for i in 0..3 {
        let (status, body) = post(addr, "/tree", r#"{"et":10}"#);
        assert_eq!(status, 500, "request {i}: {body}");
    }
    // Tripped: the next job is fast-failed without executing.
    let (status, body) = post(addr, "/tree", r#"{"et":10}"#);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("circuit open"), "{body}");

    // Heal the fault and wait out the cooldown: the half-open trial
    // succeeds and the breaker closes.
    server.faults().disarm();
    std::thread::sleep(Duration::from_millis(250));
    let (status, body) = post(addr, "/tree", r#"{"et":10}"#);
    assert_eq!(status, 200, "half-open trial should pass: {body}");
    let (status, _) = post(addr, "/tree", r#"{"et":10}"#);
    assert_eq!(status, 200);

    let (_, metrics) = get(addr, "/metrics");
    assert_eq!(scrape(&metrics, "dee_breaker_trips_total"), 1, "{metrics}");
    assert!(
        scrape(&metrics, "dee_breaker_fast_fails_total") >= 1,
        "{metrics}"
    );
    server.shutdown();
}
