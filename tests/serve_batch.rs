//! End-to-end tests of `POST /batch` — the parameter-grid fan-out that
//! rides the dee-serve worker pool.
//!
//! The contract mirrors the sweep pool's: a batch response is a pure
//! function of the request. Cells stream back in deterministic grid
//! order (workloads × models × ets), each cell's `result` payload is
//! byte-identical to what `POST /simulate` returns for the same point,
//! cache accounting is exact, oversized grids are shed with 503 before
//! any work runs, and an injected fault spoils exactly its own cell.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dee::serve::{FaultPlan, FaultSite, FaultSpec, Json, Server, ServerConfig};

fn spawn(workers: usize) -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .expect("bind on port 0")
}

/// One `Connection: close` HTTP exchange; returns (status, body).
fn exchange(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, &raw)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX)
}

fn batch_results(body: &str) -> Vec<Json> {
    let json = dee::serve::json::parse(body).expect("valid batch json");
    json.get("results")
        .and_then(Json::as_arr)
        .expect("results array")
        .to_vec()
}

fn member_str(cell: &Json, key: &str) -> String {
    cell.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("cell missing `{key}`: {cell}"))
        .to_string()
}

#[test]
fn batch_streams_cells_in_grid_order_and_matches_simulate() {
    let server = spawn(4);
    let addr = server.addr();
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"workloads":["compress","xlisp"],"scale":"tiny","models":["DEE-CD-MF","SP"],"ets":[16,48]}"#,
    );
    assert_eq!(status, 200, "{body}");
    let json = dee::serve::json::parse(&body).expect("valid json");
    assert_eq!(json.get("cells").and_then(Json::as_u64), Some(8));
    let results = batch_results(&body);
    assert_eq!(results.len(), 8);

    // Grid order: workloads outermost, then models, then ets.
    let mut expected_order = Vec::new();
    for workload in ["compress", "xlisp"] {
        for model in ["DEE-CD-MF", "SP"] {
            for et in [16u64, 48] {
                expected_order.push((workload.to_string(), model.to_string(), et));
            }
        }
    }
    let got_order: Vec<(String, String, u64)> = results
        .iter()
        .map(|cell| {
            (
                member_str(cell, "workload"),
                member_str(cell, "model"),
                cell.get("et").and_then(Json::as_u64).expect("et"),
            )
        })
        .collect();
    assert_eq!(got_order, expected_order);

    // Every cell's `result` is byte-identical to the /simulate payload
    // for the same point (same server, so the same prepared trace).
    for (cell, (workload, model, et)) in results.iter().zip(&expected_order) {
        let (status, body) = post(
            addr,
            "/simulate",
            &format!(r#"{{"workload":"{workload}","scale":"tiny","model":"{model}","et":{et}}}"#),
        );
        assert_eq!(status, 200, "{body}");
        let simulate = dee::serve::json::parse(&body).unwrap();
        let direct = simulate.get("results").and_then(Json::as_arr).unwrap()[0].to_string();
        let batched = cell.get("result").expect("result member").to_string();
        assert_eq!(batched, direct, "{workload}/{model}/{et}");
    }
    server.shutdown();
}

#[test]
fn batch_cache_accounting_is_exact() {
    let server = spawn(2);
    let addr = server.addr();
    // One workload, four E_T points, one model: one prepare, three hits.
    // Preparation is single-flight, so the split is exact no matter how
    // cells interleave across the worker pool.
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"workloads":["compress"],"scale":"tiny","models":["DEE-CD-MF"],"ets":[4,8,16,32]}"#,
    );
    assert_eq!(status, 200, "{body}");
    let json = dee::serve::json::parse(&body).unwrap();
    let cache = json.get("cache").expect("cache object");
    assert_eq!(
        cache.get("misses").and_then(Json::as_u64),
        Some(1),
        "{body}"
    );
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(3), "{body}");
    let results = batch_results(&body);
    let miss_cells = results
        .iter()
        .filter(|c| c.get("cache").and_then(Json::as_str) == Some("miss"))
        .count();
    assert_eq!(miss_cells, 1, "{body}");

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(scrape(&metrics, "dee_batch_requests_total"), 1);
    assert_eq!(scrape(&metrics, "dee_batch_cells_total"), 4);
    assert_eq!(scrape(&metrics, "dee_prepared_cache_misses_total"), 1);
    assert_eq!(scrape(&metrics, "dee_prepared_cache_hits_total"), 3);
    server.shutdown();
}

#[test]
fn oversized_batch_is_shed_before_any_work() {
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_batch_cells: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    // 1 workload × 8 default models × 1 default E_T = 8 cells > 4.
    let (status, body) = post(addr, "/batch", r#"{"workloads":["compress"]}"#);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("batch too large"), "{body}");

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(scrape(&metrics, "dee_batch_rejected_oversize_total"), 1);
    // Nothing was prepared or simulated for the shed batch.
    assert_eq!(scrape(&metrics, "dee_batch_cells_total"), 0);
    assert_eq!(scrape(&metrics, "dee_prepared_cache_misses_total"), 0);

    // A grid that fits still goes through on the same server.
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"workloads":["compress"],"models":["SP","DEE"],"ets":[16]}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(batch_results(&body).len(), 2);
    server.shutdown();
}

#[test]
fn injected_fault_spoils_exactly_one_cell() {
    // One worker and no helpers: the handler drains cells in index order,
    // so the fuse-limited prepare fault deterministically hits cell 0.
    let faults = FaultPlan::new(0xC4A05)
        .arm(
            FaultSite::TracePrepare,
            FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        )
        .with_fuse(1);
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        faults: Arc::new(faults),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let (status, body) = post(
        addr,
        "/batch",
        r#"{"workloads":["compress"],"scale":"tiny","models":["SP","EE","DEE"],"ets":[16]}"#,
    );
    // The batch as a whole still succeeds: one cell carries `error`,
    // every other cell carries a real `result`.
    assert_eq!(status, 200, "{body}");
    let results = batch_results(&body);
    assert_eq!(results.len(), 3);
    assert!(results[0].get("error").is_some(), "{body}");
    assert!(results[0].get("result").is_none(), "{body}");
    for cell in &results[1..] {
        assert!(cell.get("result").is_some(), "{body}");
        assert!(cell.get("error").is_none(), "{body}");
    }
    // The spoiled cell keeps its identity, so a sweep driver can retry it.
    assert_eq!(member_str(&results[0], "workload"), "compress");
    assert_eq!(member_str(&results[0], "model"), "SP");
    server.shutdown();
}
