//! The partial order the paper's theory imposes on the execution models
//! must hold on every workload: adding reduced control dependences,
//! multiple flows, or DEE coverage can only help; resources can only help;
//! and DEE degenerates to SP exactly when the static tree says so.

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::theory::{StaticTree, TreeParams};
use dee::workloads::{all_workloads, Scale};

fn cycles(prepared: &PreparedTrace, model: Model, et: u32, p: f64) -> u64 {
    simulate(prepared, &SimConfig::new(model, et).with_p(p)).cycles
}

#[test]
fn refinement_hierarchy_never_hurts() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("runs");
        let prepared = PreparedTrace::new(&w.program, &trace);
        let p = prepared.accuracy();
        for et in [16, 64, 256] {
            let sp = cycles(&prepared, Model::Sp, et, p);
            let sp_cd = cycles(&prepared, Model::SpCd, et, p);
            let sp_cd_mf = cycles(&prepared, Model::SpCdMf, et, p);
            let dee = cycles(&prepared, Model::Dee, et, p);
            let dee_cd = cycles(&prepared, Model::DeeCd, et, p);
            let dee_cd_mf = cycles(&prepared, Model::DeeCdMf, et, p);
            assert!(sp_cd <= sp, "{} et={et}: CD hurt SP", w.name);
            assert!(sp_cd_mf <= sp_cd, "{} et={et}: MF hurt SP-CD", w.name);
            assert!(dee <= sp, "{} et={et}: DEE worse than SP", w.name);
            assert!(dee_cd <= dee, "{} et={et}: CD hurt DEE", w.name);
            assert!(dee_cd_mf <= dee_cd, "{} et={et}: MF hurt DEE-CD", w.name);
            assert!(
                dee_cd_mf <= sp_cd_mf,
                "{} et={et}: DEE-CD-MF worse than SP-CD-MF",
                w.name
            );
        }
    }
}

#[test]
fn resources_are_monotone_for_every_model() {
    let w = &all_workloads(Scale::Tiny)[3]; // espresso
    let trace = w.capture_trace().expect("runs");
    let prepared = PreparedTrace::new(&w.program, &trace);
    let p = prepared.accuracy();
    for model in Model::all_constrained() {
        let mut last = u64::MAX;
        for et in [8, 16, 32, 64, 128, 256] {
            let c = cycles(&prepared, model, et, p);
            assert!(c <= last, "{model} et={et}: cycles rose {c} > {last}");
            last = c;
        }
    }
}

#[test]
fn dee_equals_sp_exactly_when_tree_degenerates() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("runs");
        let prepared = PreparedTrace::new(&w.program, &trace);
        // Use the paper's characteristic accuracy so the degeneracy point
        // matches §5.3: E_T <= 16 at p = 0.9053.
        let p = 0.9053;
        for et in [8, 16, 32, 100] {
            let tree = StaticTree::build(TreeParams { p, et });
            let sp = cycles(&prepared, Model::Sp, et, p);
            let dee = cycles(&prepared, Model::Dee, et, p);
            if tree.is_single_path() {
                assert_eq!(sp, dee, "{} et={et}: degenerate DEE must equal SP", w.name);
            } else {
                assert!(dee <= sp, "{} et={et}", w.name);
            }
        }
    }
}

#[test]
fn speedups_land_between_one_and_oracle() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("runs");
        let prepared = PreparedTrace::new(&w.program, &trace);
        let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0)).speedup();
        for model in Model::all_constrained() {
            let s = simulate(&prepared, &SimConfig::new(model, 100)).speedup();
            assert!(s >= 0.99, "{}: {} slower than sequential", w.name, model);
            assert!(s <= oracle * 1.001, "{}: {} beat oracle", w.name, model);
        }
    }
}

#[test]
fn dee_cd_mf_wins_at_high_resources_on_every_workload() {
    // The paper's central claim, per benchmark: "DEE-CD and DEE-CD-MF are
    // seen to be uniformly better than both SP and EE above 16 branch path
    // resources."
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("runs");
        let prepared = PreparedTrace::new(&w.program, &trace);
        let p = prepared.accuracy();
        let best_other = [Model::Sp, Model::Ee]
            .into_iter()
            .map(|m| simulate(&prepared, &SimConfig::new(m, 256).with_p(p)).speedup())
            .fold(0.0f64, f64::max);
        let dee = simulate(&prepared, &SimConfig::new(Model::DeeCdMf, 256).with_p(p)).speedup();
        assert!(
            dee >= best_other,
            "{}: DEE-CD-MF {dee:.2} should beat SP/EE {best_other:.2} at 256 paths",
            w.name
        );
    }
}
