//! Snapshot roundtrip under chaos: the acceptance gate for the
//! `DEESNAP1` warm-start path.
//!
//! For each fixed chaos seed, the real `dee` binary records the
//! compress/tiny artifact with `--checkpoint-stride`, a fault-storming
//! server answers seeded `/simulate_range` and `/debug/at` requests out
//! of that store, and every successful response must be byte-identical
//! to a store-less oracle server computing the same range from zero.
//! Then one snapshot byte is flipped on disk: the next request that
//! seeks it must quarantine the file and fall back to from-zero replay
//! — still byte-identical, with the degradation visible only in the
//! `dee_store_quarantined_total` counter and the `quarantine/`
//! directory.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dee::serve::{FaultPlan, Server, ServerConfig};

/// The two fixed storm seeds the CI job pins.
const CHAOS_SEEDS: [u64; 2] = [42, 1995];

/// Snapshot stride for the recording; compress/tiny runs 8417 records,
/// so stride 2000 publishes snapshots at 2000/4000/6000/8000.
const STRIDE: u64 = 2000;

/// Seeded requests per storm phase.
const REQUESTS: usize = 16;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dee_snap_rt_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One raw exchange tolerant of injected transport hiccups.
fn raw_exchange(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn split(response: &str) -> (u16, String) {
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: snap\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    split(&raw_exchange(addr, raw.as_bytes()))
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: snap\r\nConnection: close\r\n\r\n");
    split(&raw_exchange(addr, raw.as_bytes()))
}

/// Retries a request until it answers 200 (the storm is disarmed but
/// breakers may still be cooling down); panics past the deadline.
fn post_until_ok(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, response) = post(addr, path, body);
        if status == 200 {
            return response;
        }
        assert!(
            Instant::now() < deadline,
            "request never healed to 200 (last status {status}): {response}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn scrape(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

/// xorshift64* — the same generator loadgen uses, so the request
/// streams here and in `loadgen --range` are drawn from one family.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The i-th seeded `/simulate_range` body for this storm.
fn range_body(i: usize, seed: u64, trace_len: u64) -> String {
    let mut rng = Rng((seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1);
    let start = rng.next() % trace_len.saturating_sub(1).max(1);
    let span = 1 + rng.next() % 512;
    let end = (start + span).min(trace_len);
    let predictor = ["twobit", "gshare", "pap", "taken"][i % 4];
    format!(
        r#"{{"workload":"compress","scale":"tiny","model":"SP","et":8,"predictor":"{predictor}","start":{start},"end":{end}}}"#
    )
}

/// Records compress/tiny with checkpoints through the actual CLI —
/// `dee trace record compress --store DIR --scale tiny
/// --checkpoint-stride 2000` — and returns the snapshot filenames.
fn record_with_checkpoints(dir: &Path) -> Vec<PathBuf> {
    let output = Command::new(env!("CARGO_BIN_EXE_dee"))
        .args([
            "trace",
            "record",
            "compress",
            "--store",
            dir.to_str().expect("utf-8 temp path"),
            "--scale",
            "tiny",
            "--checkpoint-stride",
            &STRIDE.to_string(),
        ])
        .output()
        .expect("spawn dee binary");
    assert!(
        output.status.success(),
        "trace record failed:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "dsnp"))
        .collect();
    snapshots.sort();
    assert_eq!(
        snapshots.len(),
        4,
        "stride {STRIDE} over compress/tiny publishes 4 snapshots: {snapshots:?}"
    );
    snapshots
}

fn trace_len() -> u64 {
    let w = dee::workloads::compress::build(dee::workloads::Scale::Tiny);
    w.capture_trace().expect("compress runs").len() as u64
}

fn roundtrip_under_seed(seed: u64) {
    let dir = scratch_dir(&format!("seed{seed}"));
    let snapshots = record_with_checkpoints(&dir);
    let len = trace_len();

    // The oracle: no store, no faults — every range computed from zero.
    let oracle = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind oracle");
    let bodies: Vec<String> = (0..REQUESTS).map(|i| range_body(i, seed, len)).collect();
    let canonical: Vec<String> = bodies
        .iter()
        .map(|b| {
            let (status, body) = post(oracle.addr(), "/simulate_range", b);
            assert_eq!(status, 200, "oracle rejected {b}: {body}");
            body
        })
        .collect();

    // The subject: snapshot-backed store plus a hostile fault storm.
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store_dir: Some(dir.clone()),
        faults: Arc::new(FaultPlan::hostile(seed)),
        read_budget: Duration::from_secs(2),
        write_budget: Duration::from_secs(2),
        supervisor_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    })
    .expect("bind storm server");
    let addr = server.addr();

    // Storm phase: every connection gets a valid response, and any 200
    // that does arrive is byte-identical to the oracle — warm starts and
    // injected snap faults must never change payload bytes.
    for (body, expected) in bodies.iter().zip(&canonical) {
        let (status, response) = post(addr, "/simulate_range", body);
        assert!(
            (200..=599).contains(&status),
            "invalid response under storm (status {status})"
        );
        if status == 200 {
            assert_eq!(&response, expected, "storm response diverged for {body}");
        }
    }

    // Calm phase: disarm, then every seeded request must answer 200
    // with oracle-identical bytes, and the store must have warm-started
    // at least once (every start ≥ the first stride has a snapshot).
    server.faults().disarm();
    for (body, expected) in bodies.iter().zip(&canonical) {
        let response = post_until_ok(addr, "/simulate_range", body);
        assert_eq!(&response, expected, "calm response diverged for {body}");
    }
    assert!(
        scrape(addr, "dee_snap_seek_hits_total") > 0,
        "no warm start ever happened — snapshots unused"
    );

    // Time travel must agree between the snapshot path and the oracle's
    // from-zero walk.
    let probe = format!("/debug/at?workload=compress&scale=tiny&record={}", len / 2);
    let (status, oracle_at) = get(oracle.addr(), &probe);
    assert_eq!(status, 200, "{oracle_at}");
    let deadline = Instant::now() + Duration::from_secs(30);
    let subject_at = loop {
        let (status, body) = get(addr, &probe);
        if status == 200 {
            break body;
        }
        assert!(Instant::now() < deadline, "debug/at never healed: {body}");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(subject_at, oracle_at, "time travel diverged from oracle");

    // Corruption phase: flip one byte in the *lowest* snapshot
    // (record 2000), then ask for a range just past it. The seek finds
    // the corrupt file, the store quarantines it, no older snapshot
    // exists, and the request falls back to from-zero replay — with
    // byte-identical results.
    let victim = &snapshots[0];
    let mut bytes = std::fs::read(victim).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(victim, bytes).expect("corrupt snapshot");

    let quarantined_before = scrape(addr, "dee_store_quarantined_total");
    let corrupt_probe = format!(
        r#"{{"workload":"compress","scale":"tiny","model":"SP","et":8,"predictor":"gshare","start":{},"end":{}}}"#,
        STRIDE + 100,
        STRIDE + 400
    );
    let (status, oracle_body) = post(oracle.addr(), "/simulate_range", &corrupt_probe);
    assert_eq!(status, 200, "{oracle_body}");
    let healed = post_until_ok(addr, "/simulate_range", &corrupt_probe);
    assert_eq!(
        healed, oracle_body,
        "from-zero fallback after snapshot corruption changed bytes"
    );
    assert!(
        scrape(addr, "dee_store_quarantined_total") > quarantined_before,
        "corrupt snapshot was never quarantined"
    );
    assert!(!victim.exists(), "corrupt snapshot still in the store root");
    assert!(
        dir.join("quarantine")
            .read_dir()
            .is_ok_and(|mut d| d.next().is_some()),
        "quarantine directory is empty"
    );
    // The surviving snapshots keep warm-starting later ranges.
    let late_probe = format!(
        r#"{{"workload":"compress","scale":"tiny","model":"SP","et":8,"predictor":"twobit","start":{},"end":{}}}"#,
        3 * STRIDE + 100,
        3 * STRIDE + 400
    );
    let (status, oracle_late) = post(oracle.addr(), "/simulate_range", &late_probe);
    assert_eq!(status, 200, "{oracle_late}");
    let hits_before = scrape(addr, "dee_snap_seek_hits_total");
    let late = post_until_ok(addr, "/simulate_range", &late_probe);
    assert_eq!(late, oracle_late, "surviving-snapshot warm start diverged");
    assert!(
        scrape(addr, "dee_snap_seek_hits_total") > hits_before,
        "surviving snapshot was not used for the warm start"
    );

    server.shutdown();
    oracle.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn snap_roundtrip_seed_42() {
    roundtrip_under_seed(CHAOS_SEEDS[0]);
}

#[test]
fn snap_roundtrip_seed_1995() {
    roundtrip_under_seed(CHAOS_SEEDS[1]);
}
