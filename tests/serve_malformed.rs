//! Malformed-input tests: hostile bytes over a real socket.
//!
//! Seeded fuzz-style storm of broken HTTP and broken JSON against
//! `dee-serve`. The contract: every malformed request is answered with a
//! syntactically valid `4xx` response — never a hang, never a panic, and
//! the server is still healthy afterwards. `DEE_FUZZ_SEED` picks the
//! storm (default 1).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dee::serve::{FaultPlan, Server, ServerConfig};
use dee::store::ARTIFACT_EXT;

fn spawn() -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind on port 0")
}

fn spawn_with_store(tag: &str) -> (Server, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("dee_malformed_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind on port 0");
    (server, dir)
}

/// Sends raw bytes, half-closes the write side, and returns the parsed
/// status (0 when the response was empty or garbled). The read timeout
/// bounds every exchange, so a hanging server fails fast instead of
/// wedging the test binary.
fn send_raw(addr: std::net::SocketAddr, raw: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 "),
        "not a valid HTTP response: {text:.80?}"
    );
    text.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn post_body(addr: std::net::SocketAddr, body: &[u8]) -> u16 {
    request(addr, "POST", "/simulate", body)
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &[u8]) -> u16 {
    let mut raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    send_raw(addr, &raw)
}

fn healthy(addr: std::net::SocketAddr) -> bool {
    send_raw(addr, b"GET /healthz HTTP/1.1\r\nHost: fuzz\r\n\r\n") == 200
}

/// Same xorshift64*-style stream the fault plan uses.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn fuzz_seed() -> u64 {
    std::env::var("DEE_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[test]
fn garbage_request_lines_get_400() {
    let server = spawn();
    let addr = server.addr();
    for raw in [
        &b"GARBAGE\r\n\r\n"[..],
        b"\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /healthz\r\n\r\n",
        b"GET /healthz SPDY/99\r\n\r\n",
        b"POST /simulate HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        b"POST /simulate HTTP/1.1\r\nno colon here\r\n\r\n",
    ] {
        assert_eq!(
            send_raw(addr, raw),
            400,
            "{:?}",
            String::from_utf8_lossy(raw)
        );
    }
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn random_bytes_always_get_a_valid_4xx() {
    let server = spawn();
    let addr = server.addr();
    let mut rng = Rng::new(fuzz_seed());
    for i in 0..64 {
        let len = (rng.next() % 512) as usize + 1;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
        let status = send_raw(addr, &bytes);
        // Random bytes essentially never form a well-formed request line,
        // so the server must reject them — without dying.
        assert!(
            (400..=499).contains(&status),
            "fuzz case {i}: status {status} for {:?}",
            String::from_utf8_lossy(&bytes[..bytes.len().min(40)])
        );
    }
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn header_floods_and_oversized_bodies_get_413() {
    let server = spawn();
    let addr = server.addr();

    // Head larger than the 16 KiB cap: thousands of junk headers.
    let mut flood = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        flood.extend_from_slice(format!("X-Flood-{i}: {}\r\n", "y".repeat(16)).as_bytes());
    }
    flood.extend_from_slice(b"\r\n");
    assert_eq!(send_raw(addr, &flood), 413);

    // A declared body far over the 1 MiB cap is refused before reading.
    assert_eq!(
        send_raw(
            addr,
            b"POST /simulate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
        ),
        413
    );
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn truncated_bodies_get_400_not_a_hang() {
    let server = spawn();
    let addr = server.addr();
    // Declares 100 bytes, delivers 10, then half-closes: the read hits
    // EOF and must surface as 400, not wait forever.
    let started = Instant::now();
    let status = send_raw(
        addr,
        b"POST /simulate HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"workload\"",
    );
    assert_eq!(status, 400);
    assert!(started.elapsed() < Duration::from_secs(8));
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn mutated_json_bodies_never_hang_or_panic() {
    let server = spawn();
    let addr = server.addr();
    let valid = br#"{"workload":"compress","scale":"tiny","model":"SP","et":8}"#;
    let mut rng = Rng::new(fuzz_seed());
    for i in 0..64 {
        let mut body = valid.to_vec();
        // Flip 1–4 random bytes. Most mutations break the JSON (400);
        // a lucky flip inside a digit can stay valid (200). Either way
        // the response must be a valid one.
        for _ in 0..=(rng.next() % 4) {
            let at = (rng.next() as usize) % body.len();
            body[at] ^= (rng.next() & 0xFF) as u8;
        }
        let status = post_body(addr, &body);
        assert!(
            status == 200 || (400..=499).contains(&status),
            "mutation {i}: status {status} for {:?}",
            String::from_utf8_lossy(&body)
        );
    }
    // Truncations of a valid body: always 400 (bad JSON) or 200 (the
    // zero-length cut is impossible here, and prefixes are never valid).
    for cut in 1..valid.len() {
        let status = post_body(addr, &valid[..cut]);
        assert!(
            (400..=499).contains(&status),
            "truncation at {cut}: status {status}"
        );
    }
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn pathological_json_shapes_get_400() {
    let server = spawn();
    let addr = server.addr();
    // Deep-nesting bomb: must be a parse error, not a stack overflow.
    let bomb = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
    assert_eq!(post_body(addr, bomb.as_bytes()), 400);
    // Non-UTF-8 body behind valid headers.
    assert_eq!(post_body(addr, &[0xFF, 0xFE, 0x80, 0x00]), 400);
    // Valid JSON, hostile values.
    for body in [
        &br#"{"workload":"compress","scale":"tiny","model":"SP","et":99999999999}"#[..],
        br#"{"workload":"compress","scale":"tiny","model":"SP","et":-1}"#,
        br#"{"p":0.3,"et":10}"#,
        br#"[1,2,3]"#,
        br#""just a string""#,
    ] {
        let status = post_body(addr, body);
        assert!(
            (400..=499).contains(&status),
            "status {status} for {:?}",
            String::from_utf8_lossy(body)
        );
    }
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn malformed_numbers_get_400_not_a_panic() {
    // Regression for the JSON number scanner: its digit-run slice is
    // decoded fallibly now, and every broken number shape must come back
    // as a 400 parse error.
    let server = spawn();
    let addr = server.addr();
    for body in [
        &br#"{"et":-}"#[..],
        br#"{"et":1.2.3}"#,
        br#"{"et":1e}"#,
        br#"{"et":--5}"#,
        br#"{"et":+1}"#,
        br#"{"et":.5}"#,
        br#"{"et":1e+-2}"#,
    ] {
        assert_eq!(
            post_body(addr, body),
            400,
            "{:?}",
            String::from_utf8_lossy(body)
        );
    }
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn hostile_artifact_names_never_touch_the_filesystem() {
    // Regression for the replication endpoints: traversal and
    // out-of-alphabet names are rejected up front with 400, with or
    // without a configured store.
    let (server, dir) = spawn_with_store("names");
    let addr = server.addr();
    let hostile = [
        "..%2F..%2Fetc%2Fpasswd",
        "..",
        "x..y.dtrc",
        "UPPER.dtrc",
        "name%00.dtrc",
        "no-extension",
        ".hidden.dtrc",
    ];
    for name in hostile {
        let path = format!("/store/artifact/{name}");
        assert_eq!(request(addr, "GET", &path, b""), 400, "{name}");
        assert_eq!(request(addr, "PUT", &path, b"junk"), 400, "{name}");
    }
    // A well-formed name that simply does not exist is 404, not an error.
    let path = format!("/store/artifact/absent-tiny-v1-0000000000000000.{ARTIFACT_EXT}");
    assert_eq!(request(addr, "GET", &path, b""), 404);
    assert!(healthy(addr));
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_artifact_uploads_are_refused_verified() {
    // A PUT whose bytes fail container verification must be 422 and leave
    // nothing behind — the fail-closed install contract over the wire.
    let (server, dir) = spawn_with_store("corrupt");
    let addr = server.addr();
    let name = format!("evil-tiny-v1-00000000deadbeef.{ARTIFACT_EXT}");
    let path = format!("/store/artifact/{name}");
    assert_eq!(
        request(addr, "PUT", &path, b"not a DEESTOR1 container"),
        422
    );
    assert_eq!(request(addr, "PUT", &path, b""), 422);
    assert_eq!(
        request(addr, "GET", &path, b""),
        404,
        "refused upload must not be published"
    );
    assert!(!dir.join(&name).exists());
    assert!(healthy(addr));
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn peer_endpoints_answer_without_a_store() {
    // Nodes without a disk tier refuse peer traffic coherently instead of
    // panicking: 404 for state they do not have.
    let server = spawn();
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/store/digest", b""), 404);
    assert_eq!(
        request(
            addr,
            "GET",
            &format!("/store/artifact/x-tiny-v1-0000000000000000.{ARTIFACT_EXT}"),
            b""
        ),
        404
    );
    // /node works storeless (zero artifacts) — identity is not optional.
    assert_eq!(request(addr, "GET", "/node", b""), 200);
    assert_eq!(request(addr, "POST", "/node", b""), 405);
    assert_eq!(request(addr, "POST", "/store/digest", b""), 405);
    assert!(healthy(addr));
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_by_the_read_budget() {
    // A short whole-request read budget: the trickling client is cut off
    // with 408 within the budget, not per-byte-refreshed forever.
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        read_budget: Duration::from_millis(300),
        faults: Arc::new(FaultPlan::inert()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Trickle one byte every 50 ms: each write alone beats a naive
    // per-read timeout, but the whole-request budget still expires.
    let head = b"GET /healthz HTTP/1.1\r\n";
    let mut cut_off = None;
    for (i, byte) in head.iter().cycle().take(200).enumerate() {
        if stream.write_all(&[*byte]).is_err() {
            cut_off = Some(i);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        // Poll for an early response without blocking the trickle.
        if i == 0 {
            stream
                .set_read_timeout(Some(Duration::from_millis(1)))
                .unwrap();
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) | Ok(_) => {
                cut_off = Some(i);
                break;
            }
            Err(_) => {}
        }
    }
    let elapsed = started.elapsed();
    assert!(cut_off.is_some(), "server never cut off the slow client");
    assert!(
        elapsed < Duration::from_secs(5),
        "cut-off took {elapsed:?}, budget was 300ms"
    );
    // The cut-off is a valid 408, not a silent drop.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408, got {response:.60?}"
    );
    assert!(healthy(addr));
    server.shutdown();
}
