//! Cross-engine consistency: the functional VM, the Levo machine model,
//! and the reference implementations must agree on every workload, and the
//! cycle-level machine must respect the data-flow limit computed by the
//! ILP simulator's oracle.

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::levo::{Levo, LevoConfig};
use dee::vm::output_checksum;
use dee::workloads::{all_workloads, Scale};

#[test]
fn vm_matches_reference_outputs() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.validate().expect("workload validates");
        assert_eq!(
            trace.output_checksum(),
            output_checksum(&w.expected_output),
            "{}: checksum",
            w.name
        );
    }
}

#[test]
fn levo_matches_vm_on_all_workloads_and_configs() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("vm runs");
        for config in [
            LevoConfig::condel2(),
            LevoConfig::default(),
            LevoConfig::levo_100(),
        ] {
            let report = Levo::new(config)
                .run(&w.program, &w.initial_memory)
                .expect("levo runs");
            assert_eq!(report.output, trace.output(), "{}: output", w.name);
            assert_eq!(
                report.retired,
                trace.len() as u64,
                "{}: retired count equals dynamic instruction count",
                w.name
            );
        }
    }
}

#[test]
fn levo_never_beats_the_dataflow_oracle() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("vm runs");
        let prepared = PreparedTrace::new(&w.program, &trace);
        let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        for config in [LevoConfig::default(), LevoConfig::levo_100()] {
            let report = Levo::new(config)
                .run(&w.program, &w.initial_memory)
                .expect("levo runs");
            assert!(
                report.ipc() <= oracle.speedup() * 1.001,
                "{}: Levo {:.3} IPC exceeds oracle {:.3}",
                w.name,
                report.ipc(),
                oracle.speedup()
            );
        }
    }
}

#[test]
fn ilpsim_models_never_beat_the_oracle_either() {
    for w in all_workloads(Scale::Tiny) {
        let trace = w.capture_trace().expect("vm runs");
        let prepared = PreparedTrace::new(&w.program, &trace);
        let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        for model in Model::all_constrained() {
            let out = simulate(&prepared, &SimConfig::new(model, 256));
            assert!(
                out.cycles >= oracle.cycles,
                "{}: {} beat the oracle",
                w.name,
                model
            );
        }
    }
}

#[test]
fn workload_builds_are_deterministic() {
    let a = all_workloads(Scale::Tiny);
    let b = all_workloads(Scale::Tiny);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.program, y.program, "{}: program", x.name);
        assert_eq!(x.initial_memory, y.initial_memory, "{}: memory", x.name);
        assert_eq!(x.expected_output, y.expected_output, "{}: output", x.name);
    }
}

#[test]
fn scales_grow_dynamic_length() {
    for (small, medium) in all_workloads(Scale::Tiny)
        .iter()
        .zip(all_workloads(Scale::Small).iter())
    {
        let a = small.capture_trace().expect("tiny runs");
        let b = medium.capture_trace().expect("small runs");
        assert!(
            b.len() > a.len(),
            "{}: {} !> {}",
            small.name,
            b.len(),
            a.len()
        );
    }
}
