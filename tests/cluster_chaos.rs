//! The cluster chaos soak: a 3-node `LocalCluster` under the
//! `cluster_hostile` fault plan, with a node killed and respawned
//! mid-run.
//!
//! The oracle is the determinism the DEE tree guarantees by
//! construction: the same request produces the same bytes on every
//! replica, so *every* 200 the gateway ever returns — through hedges,
//! failovers, retries, partitions, and a node restart — must be
//! byte-identical to a single standalone node's answer for the same
//! body. Any replica divergence, torn replication, or routing bug
//! surfaces as a byte mismatch, and the soak demands zero.
//!
//! After the soak: the respawned node must be back in the ring (the
//! dead-peer prober re-admits it), and anti-entropy must converge all
//! three stores to an identical digest fold.
//!
//! Honors `DEE_CHAOS_SEED` (one seed instead of the built-in pair) and
//! `DEE_CHAOS_ITERS` (requests per seed) — CI runs seeds 42 and 1995.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dee::cluster::{peer_request, request, ClusterConfig, LocalCluster, PeerTimeouts};
use dee::serve::json::parse as parse_json;
use dee::serve::{FaultPlan, Json, Server, ServerConfig};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dee_cluster_chaos_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A unique request body per (seed, iteration): unique bodies miss every
/// cache on every node, so the node-local `"cache"` field is uniformly
/// `"miss"` and responses are comparable byte-for-byte across machines.
fn body_for(seed: u64, i: usize) -> String {
    let value = (seed as i32).wrapping_mul(1009).wrapping_add(i as i32 * 7);
    format!(
        "{{\"program\":\"lw r1, 0(zero)\\nout r1\\nhalt\\n\",\"memory\":[{value}],\"model\":\"SP\",\"et\":4}}"
    )
}

fn post(addr: &str, body: &str) -> std::io::Result<dee::cluster::PeerResponse> {
    peer_request(
        addr,
        "POST",
        "/simulate",
        body.as_bytes(),
        PeerTimeouts::default(),
        &FaultPlan::inert(),
    )
}

/// One node's digest fold (hex string) and entry count, un-injected.
fn digest_fold(addr: &str) -> Option<(String, usize)> {
    let response = request(addr, "GET", "/store/digest", b"", PeerTimeouts::default()).ok()?;
    if response.status != 200 {
        return None;
    }
    let json = parse_json(std::str::from_utf8(&response.body).ok()?).ok()?;
    let fold = json.get("fold").and_then(Json::as_str)?.to_string();
    let Some(Json::Arr(entries)) = json.get("entries") else {
        return None;
    };
    Some((fold, entries.len()))
}

#[test]
fn three_node_soak_with_kill_and_respawn_returns_single_node_bytes() {
    let seeds: Vec<u64> = match env_u64("DEE_CHAOS_SEED") {
        Some(seed) => vec![seed],
        None => vec![42, 1995],
    };
    let iters = env_u64("DEE_CHAOS_ITERS").unwrap_or(40) as usize;

    for seed in seeds {
        let root = scratch(&format!("seed{seed}"));
        let mut cluster = LocalCluster::launch(ClusterConfig {
            nodes: 3,
            replication: 2,
            store_root: root.join("cluster"),
            sync_interval: Some(Duration::from_millis(25)),
            hedge_ms: Some(0),
            faults: Arc::new(FaultPlan::cluster_hostile(seed)),
            ..ClusterConfig::default()
        })
        .expect("launch cluster");
        let gateway = cluster.gateway_addr().to_string();

        // The single-node oracle: same server stack, no cluster, no chaos.
        let reference = Server::spawn(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            store_dir: Some(root.join("reference")),
            ..ServerConfig::default()
        })
        .expect("spawn reference node");
        let reference_addr = reference.addr().to_string();

        let kill_at = iters / 3;
        let respawn_at = (2 * iters) / 3;
        let mut ok = 0usize;
        let mut degraded = 0usize;
        for i in 0..iters {
            if i == kill_at {
                cluster.kill_node(1);
            }
            if i == respawn_at {
                cluster.respawn_node(1).expect("respawn node-1");
            }
            let body = body_for(seed, i);
            let expected = post(&reference_addr, &body).expect("reference reachable");
            assert_eq!(expected.status, 200, "oracle must answer");
            match post(&gateway, &body) {
                Ok(response) if response.status == 200 => {
                    assert_eq!(
                        response.body, expected.body,
                        "seed {seed} request {i}: gateway bytes diverged from the \
                         single-node oracle"
                    );
                    ok += 1;
                }
                // Shed (503) or all replicas unreachable (502) are honest
                // degraded answers under chaos — never wrong bytes.
                Ok(_) | Err(_) => degraded += 1,
            }
        }
        assert!(
            ok * 2 > iters,
            "seed {seed}: only {ok}/{iters} requests succeeded ({degraded} degraded) — \
             the cluster is not riding through the chaos"
        );

        // Ring re-admission: the prober must see node-1's /healthz again.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cluster.gateway().dead_peers().is_empty() {
            assert!(
                Instant::now() < deadline,
                "seed {seed}: respawned node was never re-admitted to the ring; \
                 still dead: {:?}",
                cluster.gateway().dead_peers()
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        // Anti-entropy convergence: all three digest folds equal, with
        // every artifact the soak created present everywhere.
        let peers: Vec<String> = (0..cluster.len())
            .map(|i| cluster.node_addr(i).to_string())
            .collect();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let folds: Vec<Option<(String, usize)>> =
                peers.iter().map(|p| digest_fold(p)).collect();
            if let [Some(a), Some(b), Some(c)] = &folds[..] {
                if a == b && b == c && a.1 > 0 {
                    break;
                }
            }
            assert!(
                Instant::now() < deadline,
                "seed {seed}: anti-entropy never converged; folds: {folds:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        let hedges = cluster
            .gateway()
            .metrics()
            .hedges
            .load(std::sync::atomic::Ordering::Relaxed);
        let retries = cluster
            .gateway()
            .metrics()
            .retries
            .load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "seed {seed}: {ok}/{iters} ok, {degraded} degraded, \
             {hedges} hedges, {retries} retries"
        );

        reference.shutdown();
        cluster.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}
