//! Differential testing on randomly generated structured programs: the
//! functional VM and the Levo machine model must compute identical output
//! for arbitrary (halting) programs, and the ILP models must respect the
//! oracle on all of them — not just on the five curated workloads.

use dee::ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee::isa::{Assembler, Program, Reg};
use dee::levo::{Levo, LevoConfig, PredictorKind};
use dee::vm::trace_program;

/// Tiny deterministic generator; each test case is one seed, printed on
/// failure for exact reproduction.
struct Rng(u32);

impl Rng {
    fn next(&mut self) -> u32 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u32) -> u32 {
        self.next() % bound
    }
}

/// Registers the generator plays with.
fn pool(rng: &mut Rng) -> Reg {
    Reg::new(1 + (rng.below(8) as u8))
}

/// Emits a random ALU instruction over the register pool.
fn random_alu(asm: &mut Assembler, rng: &mut Rng) {
    let (d, a, b) = (pool(rng), pool(rng), pool(rng));
    match rng.below(8) {
        0 => asm.add(d, a, b),
        1 => asm.sub(d, a, b),
        2 => asm.mul(d, a, b),
        3 => asm.and(d, a, b),
        4 => asm.or(d, a, b),
        5 => asm.xor(d, a, b),
        6 => asm.addi(d, a, rng.below(64) as i32 - 32),
        _ => asm.slt(d, a, b),
    };
}

/// Emits a bounded memory access: address masked into a 64-word region.
fn random_mem(asm: &mut Assembler, rng: &mut Rng) {
    let addr_reg = Reg::new(20);
    let v = pool(rng);
    asm.andi(addr_reg, pool(rng), 63);
    if rng.below(2) == 0 {
        asm.sw(v, addr_reg, 0);
    } else {
        asm.lw(v, addr_reg, 0);
    }
}

/// Builds a random structured program: init, then a few blocks (straight
/// line, counted loop, or if/else), then output of the whole pool.
fn random_program(seed: u32) -> Program {
    let mut rng = Rng(seed);
    let mut asm = Assembler::new();
    for i in 1..=8u8 {
        asm.li(Reg::new(i), rng.below(1000) as i32 - 500);
    }
    let blocks = 2 + rng.below(4);
    for b in 0..blocks {
        match rng.below(4) {
            0 | 1 => {
                for _ in 0..(1 + rng.below(5)) {
                    if rng.below(4) == 0 {
                        random_mem(&mut asm, &mut rng);
                    } else {
                        random_alu(&mut asm, &mut rng);
                    }
                }
            }
            2 => {
                // Counted loop with a data-dependent body.
                let counter = Reg::new(16);
                let top = format!("loop_{b}");
                asm.li(counter, 1 + rng.below(8) as i32);
                asm.label(&top);
                for _ in 0..(1 + rng.below(3)) {
                    random_alu(&mut asm, &mut rng);
                }
                asm.addi(counter, counter, -1);
                asm.bgt_label(counter, Reg::ZERO, &top);
            }
            _ => {
                // If/else on a data-dependent condition.
                let (a, b2) = (pool(&mut rng), pool(&mut rng));
                let arm = format!("else_{b}");
                let join = format!("join_{b}");
                asm.blt_label(a, b2, &arm);
                random_alu(&mut asm, &mut rng);
                asm.j_label(&join);
                asm.label(&arm);
                random_alu(&mut asm, &mut rng);
                random_alu(&mut asm, &mut rng);
                asm.label(&join);
            }
        }
    }
    for i in 1..=8u8 {
        asm.out(Reg::new(i));
    }
    asm.halt();
    asm.assemble().expect("generated program assembles")
}

/// The 48 seeds each differential test sweeps, spread deterministically
/// over the seed space.
fn seeds() -> impl Iterator<Item = u32> {
    (0..48u32).map(|i| 1 + i.wrapping_mul(20_719) % 999_999)
}

/// VM and Levo agree on every random program, in all configurations.
#[test]
fn levo_agrees_with_vm_on_random_programs() {
    for seed in seeds() {
        let program = random_program(seed);
        let trace = trace_program(&program, &[], 200_000).expect("halts");
        for config in [
            LevoConfig::condel2(),
            LevoConfig::default(),
            LevoConfig::levo_100(),
            LevoConfig {
                n: 16,
                m: 4,
                ..LevoConfig::default()
            },
            LevoConfig {
                predictor: PredictorKind::PapSpeculative,
                ..LevoConfig::default()
            },
        ] {
            let report = Levo::new(config).run(&program, &[]).expect("levo runs");
            assert_eq!(
                report.output,
                trace.output().to_vec(),
                "seed {seed} config {config:?}"
            );
            assert_eq!(report.retired, trace.len() as u64, "seed {seed}");
        }
    }
}

/// The model hierarchy and the oracle bound hold on random programs.
#[test]
fn ilpsim_invariants_on_random_programs() {
    for seed in seeds() {
        let program = random_program(seed);
        let trace = trace_program(&program, &[], 200_000).expect("halts");
        let prepared = PreparedTrace::new(&program, &trace);
        let oracle = simulate(&prepared, &SimConfig::new(Model::Oracle, 0));
        let mut cycles = Vec::new();
        for model in Model::all_constrained() {
            let out = simulate(&prepared, &SimConfig::new(model, 64));
            assert!(
                out.cycles >= oracle.cycles,
                "seed {seed}: {model} beat oracle"
            );
            assert!(
                out.cycles <= trace.len() as u64 + 2,
                "seed {seed}: {model} slower than sequential"
            );
            cycles.push((model, out.cycles));
        }
        // Refinements never hurt.
        let get = |m: Model| cycles.iter().find(|(x, _)| *x == m).expect("simulated").1;
        assert!(get(Model::SpCd) <= get(Model::Sp), "seed {seed}");
        assert!(get(Model::SpCdMf) <= get(Model::SpCd), "seed {seed}");
        assert!(get(Model::DeeCd) <= get(Model::Dee), "seed {seed}");
        assert!(get(Model::DeeCdMf) <= get(Model::DeeCd), "seed {seed}");
    }
}
