//! Property-based tests on the theory layer: optimality of the greedy
//! assignment (Theorem 1/Corollary 1) against exhaustive search, and
//! structural invariants of the speculation trees.

use dee::theory::{
    assign_resources, expected_performance, PathCandidate, SpecTree, StaticTree, Strategy,
    TreeParams,
};
use proptest::prelude::*;

/// Exhaustive best `P_tot` over all allocations (small instances only).
fn brute_force_best(paths: &[PathCandidate], total: u32) -> f64 {
    fn recurse(paths: &[PathCandidate], left: u32, idx: usize, alloc: &mut Vec<u32>, best: &mut f64) {
        if idx == paths.len() {
            let perf = expected_performance(paths, alloc);
            if perf > *best {
                *best = perf;
            }
            return;
        }
        for e in 0..=left {
            alloc.push(e);
            recurse(paths, left - e, idx + 1, alloc, best);
            alloc.pop();
        }
    }
    let mut best = f64::MIN;
    recurse(paths, total, 0, &mut Vec::new(), &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 + Corollary 1: greedy equals exhaustive optimum.
    #[test]
    fn greedy_assignment_is_optimal(
        cps in prop::collection::vec(0.01f64..1.0, 1..5),
        sats in prop::collection::vec(prop::option::of(1u32..4), 1..5),
        total in 0u32..7,
    ) {
        let paths: Vec<PathCandidate> = cps
            .iter()
            .zip(sats.iter().chain(std::iter::repeat(&None)))
            .map(|(&cp, &sat)| PathCandidate { cp, saturation: sat })
            .collect();
        let greedy = assign_resources(&paths, total);
        let greedy_perf = expected_performance(&paths, &greedy);
        let best = brute_force_best(&paths, total);
        prop_assert!((greedy_perf - best).abs() < 1e-9,
            "greedy {greedy_perf} vs optimal {best} for {paths:?} total {total}");
    }

    /// The greedy allocation never hands out more than the budget.
    #[test]
    fn assignment_respects_budget(
        cps in prop::collection::vec(0.01f64..1.0, 1..8),
        total in 0u32..50,
    ) {
        let paths: Vec<PathCandidate> =
            cps.iter().map(|&cp| PathCandidate::saturating(cp, 3)).collect();
        let alloc = assign_resources(&paths, total);
        prop_assert!(alloc.iter().sum::<u32>() <= total);
        for (a, p) in alloc.iter().zip(&paths) {
            prop_assert!(*a <= p.saturation.unwrap_or(u32::MAX));
        }
    }

    /// Disjoint trees dominate SP and EE in expected performance and
    /// interpolate their depths.
    #[test]
    fn disjoint_tree_dominates_and_interpolates(p in 0.5f64..0.99, et in 1u32..200) {
        let dee = SpecTree::build(Strategy::Disjoint, p, et);
        let sp = SpecTree::build(Strategy::SinglePath, p, et);
        let ee = SpecTree::build(Strategy::Eager, p, et);
        prop_assert!(dee.total_cp() >= sp.total_cp() - 1e-9);
        prop_assert!(dee.total_cp() >= ee.total_cp() - 1e-9);
        prop_assert!(dee.depth() <= sp.depth());
        prop_assert!(dee.depth() >= ee.depth());
    }

    /// Every chosen path's cp is the product of local probabilities along
    /// its ancestry (a cp-consistency invariant).
    #[test]
    fn chosen_path_cps_are_consistent(p in 0.5f64..0.99, et in 1u32..64) {
        let tree = SpecTree::build(Strategy::Disjoint, p, et);
        for path in tree.paths() {
            let mut cp = 1.0;
            let mut cursor = Some(path);
            while let Some(node) = cursor {
                cp *= if node.predicted { p } else { 1.0 - p };
                cursor = node.parent.map(|i| &tree.paths()[i as usize]);
            }
            prop_assert!((cp - path.cp).abs() < 1e-9);
        }
    }

    /// Static-tree coverage is consistent with its own region accounting
    /// and fits the budget at every operating point.
    #[test]
    fn static_tree_accounting(p in 0.5f64..0.99, et in 1u32..400) {
        let tree = StaticTree::build(TreeParams { p, et });
        let region: u32 = (1..=tree.h_dee()).map(|k| tree.coverage_at_level(k)).sum();
        prop_assert_eq!(region, tree.dee_region_paths());
        prop_assert!(tree.total_paths() <= et);
        prop_assert!(tree.mainline_len() >= 1);
        // Degeneracy exactly mirrors is_single_path().
        prop_assert_eq!(tree.h_dee() == 0, tree.is_single_path());
    }
}

#[test]
fn figure_1_numbers_are_stable() {
    // Pin the exact Figure 1 values as a regression anchor.
    let dee = SpecTree::build(Strategy::Disjoint, 0.7, 6);
    let mut cps: Vec<f64> = dee.paths().iter().map(|p| p.cp).collect();
    cps.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let expected = [0.7, 0.49, 0.343, 0.3, 0.2401, 0.21];
    for (a, e) in cps.iter().zip(expected.iter()) {
        assert!((a - e).abs() < 1e-12);
    }
}
