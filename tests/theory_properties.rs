//! Property-based tests on the theory layer: optimality of the greedy
//! assignment (Theorem 1/Corollary 1) against exhaustive search, and
//! structural invariants of the speculation trees.
//!
//! Cases are drawn from a deterministic xorshift sweep (the repo builds
//! with no external crates, so no `proptest`); assertion messages carry
//! the sampled parameters so failures reproduce exactly.

use dee::theory::{
    assign_resources, expected_performance, PathCandidate, SpecTree, StaticTree, Strategy,
    TreeParams,
};

/// xorshift64* — deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn u_in(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next() % u64::from(hi - lo)) as u32
    }
}

/// Exhaustive best `P_tot` over all allocations (small instances only).
fn brute_force_best(paths: &[PathCandidate], total: u32) -> f64 {
    fn recurse(
        paths: &[PathCandidate],
        left: u32,
        idx: usize,
        alloc: &mut Vec<u32>,
        best: &mut f64,
    ) {
        if idx == paths.len() {
            let perf = expected_performance(paths, alloc);
            if perf > *best {
                *best = perf;
            }
            return;
        }
        for e in 0..=left {
            alloc.push(e);
            recurse(paths, left - e, idx + 1, alloc, best);
            alloc.pop();
        }
    }
    let mut best = f64::MIN;
    recurse(paths, total, 0, &mut Vec::new(), &mut best);
    best
}

/// Theorem 1 + Corollary 1: greedy equals exhaustive optimum.
#[test]
fn greedy_assignment_is_optimal() {
    let mut rng = Rng(0x7eed_0001);
    for case in 0..64 {
        let n = rng.u_in(1, 5) as usize;
        let cps: Vec<f64> = (0..n).map(|_| rng.f_in(0.01, 1.0)).collect();
        let sats: Vec<Option<u32>> = (0..n)
            .map(|_| {
                if rng.next().is_multiple_of(2) {
                    Some(rng.u_in(1, 4))
                } else {
                    None
                }
            })
            .collect();
        let total = rng.u_in(0, 7);
        let paths: Vec<PathCandidate> = cps
            .iter()
            .zip(sats.iter())
            .map(|(&cp, &sat)| PathCandidate {
                cp,
                saturation: sat,
            })
            .collect();
        let greedy = assign_resources(&paths, total);
        let greedy_perf = expected_performance(&paths, &greedy);
        let best = brute_force_best(&paths, total);
        assert!(
            (greedy_perf - best).abs() < 1e-9,
            "case {case}: greedy {greedy_perf} vs optimal {best} for {paths:?} total {total}"
        );
    }
}

/// The greedy allocation never hands out more than the budget.
#[test]
fn assignment_respects_budget() {
    let mut rng = Rng(0x7eed_0002);
    for case in 0..128 {
        let n = rng.u_in(1, 8) as usize;
        let paths: Vec<PathCandidate> = (0..n)
            .map(|_| PathCandidate::saturating(rng.f_in(0.01, 1.0), 3))
            .collect();
        let total = rng.u_in(0, 50);
        let alloc = assign_resources(&paths, total);
        assert!(
            alloc.iter().sum::<u32>() <= total,
            "case {case}: total {total}"
        );
        for (a, p) in alloc.iter().zip(&paths) {
            assert!(*a <= p.saturation.unwrap_or(u32::MAX), "case {case}");
        }
    }
}

/// Disjoint trees dominate SP and EE in expected performance and
/// interpolate their depths.
#[test]
fn disjoint_tree_dominates_and_interpolates() {
    let mut rng = Rng(0x7eed_0003);
    for case in 0..128 {
        let (p, et) = (rng.f_in(0.5, 0.99), rng.u_in(1, 200));
        let dee = SpecTree::build(Strategy::Disjoint, p, et);
        let sp = SpecTree::build(Strategy::SinglePath, p, et);
        let ee = SpecTree::build(Strategy::Eager, p, et);
        assert!(
            dee.total_cp() >= sp.total_cp() - 1e-9,
            "case {case}: p={p} et={et}"
        );
        assert!(
            dee.total_cp() >= ee.total_cp() - 1e-9,
            "case {case}: p={p} et={et}"
        );
        assert!(dee.depth() <= sp.depth(), "case {case}: p={p} et={et}");
        assert!(dee.depth() >= ee.depth(), "case {case}: p={p} et={et}");
    }
}

/// Every chosen path's cp is the product of local probabilities along
/// its ancestry (a cp-consistency invariant).
#[test]
fn chosen_path_cps_are_consistent() {
    let mut rng = Rng(0x7eed_0004);
    for case in 0..128 {
        let (p, et) = (rng.f_in(0.5, 0.99), rng.u_in(1, 64));
        let tree = SpecTree::build(Strategy::Disjoint, p, et);
        for path in tree.paths() {
            let mut cp = 1.0;
            let mut cursor = Some(path);
            while let Some(node) = cursor {
                cp *= if node.predicted { p } else { 1.0 - p };
                cursor = node.parent.map(|i| &tree.paths()[i as usize]);
            }
            assert!((cp - path.cp).abs() < 1e-9, "case {case}: p={p} et={et}");
        }
    }
}

/// Static-tree coverage is consistent with its own region accounting
/// and fits the budget at every operating point.
#[test]
fn static_tree_accounting() {
    let mut rng = Rng(0x7eed_0005);
    for case in 0..256 {
        let (p, et) = (rng.f_in(0.5, 0.99), rng.u_in(1, 400));
        let tree = StaticTree::build(TreeParams { p, et });
        let region: u32 = (1..=tree.h_dee()).map(|k| tree.coverage_at_level(k)).sum();
        assert_eq!(
            region,
            tree.dee_region_paths(),
            "case {case}: p={p} et={et}"
        );
        assert!(tree.total_paths() <= et, "case {case}: p={p} et={et}");
        assert!(tree.mainline_len() >= 1, "case {case}: p={p} et={et}");
        // Degeneracy exactly mirrors is_single_path().
        assert_eq!(
            tree.h_dee() == 0,
            tree.is_single_path(),
            "case {case}: p={p} et={et}"
        );
    }
}

#[test]
fn figure_1_numbers_are_stable() {
    // Pin the exact Figure 1 values as a regression anchor.
    let dee = SpecTree::build(Strategy::Disjoint, 0.7, 6);
    let mut cps: Vec<f64> = dee.paths().iter().map(|p| p.cp).collect();
    cps.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let expected = [0.7, 0.49, 0.343, 0.3, 0.2401, 0.21];
    for (a, e) in cps.iter().zip(expected.iter()) {
        assert!((a - e).abs() < 1e-12);
    }
}
