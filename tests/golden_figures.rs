//! Golden-figure suite: locks the paper's Figure 1 and Figure 2 to their
//! exact published numbers.
//!
//! Figures 1 and 2 are the paper's two *constructive* figures — their
//! content is a deterministic function of `(p, E_T)` with every number
//! printed in the figure itself, so they admit exact (not statistical)
//! goldens. Any drift in the tree-construction code — a tie-break change
//! in the greedy heap, an off-by-one in the triangle bound, a rounding
//! change in the closed form — fails here with the literal paper value in
//! the assertion message.
//!
//! * **Figure 1** (p = 0.7, E_T = 6): the branch paths chosen by SP, EE,
//!   and DEE, their cumulative probabilities, and the depths
//!   `l_SP = 6`, `l_EE = 2`, `l_DEE = 4`.
//! * **Figure 2** (p = 0.90, E_T = 34): the static DEE tree — main line
//!   `l = 24`, DEE region height `h_DEE = 4` holding 10 branch paths in
//!   the triangular region, and the crossover depth
//!   `c = log_p(1 − p) ≈ 21.85`.

use dee::theory::{ee_depth, log_p_not_p, SpecTree, StaticTree, Strategy, TreeParams};

const FIG1_P: f64 = 0.7;
const FIG1_ET: u32 = 6;

const FIG2_P: f64 = 0.90;
const FIG2_ET: u32 = 34;

fn sorted_cps(tree: &SpecTree) -> Vec<f64> {
    let mut cps: Vec<f64> = tree.paths().iter().map(|p| p.cp).collect();
    cps.sort_by(|a, b| b.partial_cmp(a).unwrap());
    cps
}

#[track_caller]
fn assert_close(actual: &[f64], expected: &[f64]) {
    assert_eq!(actual.len(), expected.len(), "{actual:?} vs {expected:?}");
    for (a, e) in actual.iter().zip(expected) {
        assert!((a - e).abs() < 1e-9, "{actual:?} vs {expected:?}");
    }
}

#[test]
fn figure_1_depths_are_6_2_4() {
    let sp = SpecTree::build(Strategy::SinglePath, FIG1_P, FIG1_ET);
    let ee = SpecTree::build(Strategy::Eager, FIG1_P, FIG1_ET);
    let dee = SpecTree::build(Strategy::Disjoint, FIG1_P, FIG1_ET);
    assert_eq!(sp.depth(), 6, "Figure 1: l_SP = E_T = 6");
    assert_eq!(ee.depth(), 2, "Figure 1: l_EE = 2 (complete levels of 2+4)");
    assert_eq!(dee.depth(), 4, "Figure 1: l_DEE = 4");
    // EE's depth also follows the closed form 2^(d+1) - 2 <= E_T.
    assert_eq!(ee_depth(FIG1_ET), 2);
}

#[test]
fn figure_1_single_path_cps_are_powers_of_p() {
    let sp = SpecTree::build(Strategy::SinglePath, FIG1_P, FIG1_ET);
    assert_close(
        &sorted_cps(&sp),
        &[0.7, 0.49, 0.343, 0.2401, 0.16807, 0.117649],
    );
    assert!(
        sp.paths().iter().all(|p| p.predicted),
        "SP never leaves the predicted line"
    );
}

#[test]
fn figure_1_eager_cps_cover_both_directions_breadth_first() {
    let ee = SpecTree::build(Strategy::Eager, FIG1_P, FIG1_ET);
    assert_close(&sorted_cps(&ee), &[0.7, 0.49, 0.3, 0.21, 0.21, 0.09]);
    // Level populations 2 + 4: both root paths, then all four children.
    let at_depth = |d: u32| ee.paths().iter().filter(|p| p.depth == d).count();
    assert_eq!((at_depth(1), at_depth(2)), (2, 4));
}

#[test]
fn figure_1_dee_chooses_the_six_most_probable_paths() {
    let dee = SpecTree::build(Strategy::Disjoint, FIG1_P, FIG1_ET);
    // The six highest-cp paths of the infinite tree, as circled in the
    // figure: four main-line paths, the not-predicted root path (0.3),
    // and its predicted child (0.21).
    assert_close(&sorted_cps(&dee), &[0.7, 0.49, 0.343, 0.3, 0.2401, 0.21]);
    assert_eq!(dee.mainline_len(), 4);
    // Assignment order: three main-line paths, then the figure's marquee
    // choice — the 4th resource goes to the not-predicted root path
    // (cp 0.3) ahead of the 4th main-line path (cp 0.2401).
    let order: Vec<(u32, bool)> = dee.paths().iter().map(|p| (p.depth, p.predicted)).collect();
    assert_eq!(
        order,
        vec![
            (1, true),
            (2, true),
            (3, true),
            (1, false),
            (4, true),
            (2, true),
        ]
    );
    let fourth = &dee.paths()[3];
    assert!(!fourth.predicted, "4th resource: not-predicted root path");
    assert_eq!(fourth.parent, None);
    assert!((fourth.cp - 0.3).abs() < 1e-12);
}

#[test]
fn figure_1_dee_dominates_sp_and_ee_at_the_figure_point() {
    let dee = SpecTree::build(Strategy::Disjoint, FIG1_P, FIG1_ET).total_cp();
    let sp = SpecTree::build(Strategy::SinglePath, FIG1_P, FIG1_ET).total_cp();
    let ee = SpecTree::build(Strategy::Eager, FIG1_P, FIG1_ET).total_cp();
    // P_tot: SP = 2.058..., EE = 2.0, DEE = 2.2831 (sum of the six cps).
    assert!((sp - 2.058819).abs() < 1e-6, "{sp}");
    assert!((ee - 2.0).abs() < 1e-12, "{ee}");
    assert!((dee - 2.2831).abs() < 1e-12, "{dee}");
    assert!(dee > sp && dee > ee);
}

#[test]
fn figure_2_static_tree_shape_is_l24_h4() {
    let tree = StaticTree::build(TreeParams {
        p: FIG2_P,
        et: FIG2_ET,
    });
    assert_eq!(tree.mainline_len(), 24, "Figure 2: l = 24");
    assert_eq!(tree.h_dee(), 4, "Figure 2: h_DEE = 4");
    assert_eq!(
        tree.dee_region_paths(),
        10,
        "Figure 2: triangular DEE region holds h(h+1)/2 = 10 paths"
    );
    assert_eq!(tree.total_paths(), FIG2_ET, "every resource used");
    assert!(!tree.is_single_path());
    assert!(
        tree.formulas_valid(),
        "Figure 2 sits inside the paper's validity regime"
    );
}

#[test]
fn figure_2_crossover_depth_is_21_85() {
    // The paper's c = log_p(1 - p): at p = 0.90 a predicted path's cp
    // falls below (1 - p) only past ML depth ~21.85, which is what makes
    // the 24-deep main line worth 4 DEE'd branches.
    let c = log_p_not_p(FIG2_P);
    assert!((c - 21.85).abs() < 5e-3, "c = {c}, paper: 21.85");
    assert!((c - 21.854_345).abs() < 1e-6, "c = {c}");
}

#[test]
fn figure_2_coverage_and_path_labels() {
    let tree = StaticTree::build(TreeParams {
        p: FIG2_P,
        et: FIG2_ET,
    });
    // DEE path coverage shrinks linearly down the region: 4, 3, 2, 1, 0.
    let coverage: Vec<u32> = (1..=5).map(|k| tree.coverage_at_level(k)).collect();
    assert_eq!(coverage, vec![4, 3, 2, 1, 0]);
    // Main-line labels are p^k: .90, .81, .729, .6561, ...
    let ml = tree.mainline_cps();
    assert_eq!(ml.len(), 24);
    assert_close(&ml[..4], &[0.90, 0.81, 0.729, 0.6561]);
    // The DEE path at B1 starts at cp = 1 - p = 0.10; at B4, 0.1 * 0.9^3.
    assert!((tree.dee_path_cp(1, 0) - 0.10).abs() < 1e-12);
    assert!((tree.dee_path_cp(4, 0) - 0.0729).abs() < 1e-12);
}

#[test]
fn figure_2_closed_form_matches_greedy_construction() {
    // The paper derives (l, h) in closed form; the greedy constructor
    // maximizes P_tot directly. They must agree at the figure's point —
    // and across the whole E_T sweep of Figure 5 at p = 0.90.
    for et in [4, 8, 16, 32, 34, 64, 128, 256] {
        let params = TreeParams { p: FIG2_P, et };
        let greedy = StaticTree::build(params);
        let closed = StaticTree::build_closed_form(params);
        assert_eq!(
            (greedy.mainline_len(), greedy.h_dee()),
            (closed.mainline_len(), closed.h_dee()),
            "E_T = {et}"
        );
    }
}

#[test]
fn figure_2_tree_is_the_greedy_top_34_selection() {
    // Theorem 1 says the static shape is optimal; cross-check it against
    // the unconstrained greedy SpecTree at the same (p, E_T): identical
    // multiset of chosen cumulative probabilities.
    let spec = SpecTree::build(Strategy::Disjoint, FIG2_P, FIG2_ET);
    let tree = StaticTree::build(TreeParams {
        p: FIG2_P,
        et: FIG2_ET,
    });
    let mut expected: Vec<f64> = tree.mainline_cps();
    for k in 1..=tree.h_dee() {
        for j in 0..tree.coverage_at_level(k) {
            expected.push(tree.dee_path_cp(k, j));
        }
    }
    expected.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_close(&sorted_cps(&spec), &expected);
}
