//! The disk cache tier of `dee-serve`: prepared traces survive a full
//! server restart via the trace-artifact store.
//!
//! A freshly spawned server with an empty in-memory cache but a populated
//! `--store` directory must serve its first `/simulate` by *replaying*
//! the artifact (visible as `dee_store_disk_hits_total` in `/metrics`)
//! instead of re-tracing — and the response bytes must be identical
//! either way. A corrupted artifact is quarantined and transparently
//! re-traced; the client never sees the difference.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use dee::serve::{Server, ServerConfig};

fn spawn_with_store(dir: &Path) -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind on port 0")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dee_serve_store_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One `Connection: close` HTTP exchange; returns (status, body).
fn exchange(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, &raw)
}

fn scrape(addr: std::net::SocketAddr, name: &str) -> u64 {
    let (status, metrics) = exchange(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

const BODY: &str = r#"{"workload":"xlisp","scale":"tiny","model":"DEE-CD-MF","et":32}"#;

#[test]
fn prepared_traces_survive_restart_as_disk_tier_hits() {
    let dir = scratch_dir("restart");

    // Generation 1: cold store. The first request re-traces and publishes.
    let server = spawn_with_store(&dir);
    let (status, cold_body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{cold_body}");
    assert_eq!(scrape(server.addr(), "dee_store_disk_hits_total"), 0);
    assert_eq!(scrape(server.addr(), "dee_store_misses_total"), 1);
    assert_eq!(scrape(server.addr(), "dee_store_writes_total"), 1);
    server.shutdown();
    let artifacts: Vec<_> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "dtrc"))
        .collect();
    assert_eq!(artifacts.len(), 1, "exactly one artifact published");

    // Generation 2: a brand-new process image — empty prepared cache,
    // same store directory. The first request is a disk-tier hit and the
    // response bytes are identical to the cold run.
    let server = spawn_with_store(&dir);
    let (status, warm_body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{warm_body}");
    assert_eq!(
        warm_body, cold_body,
        "disk-tier replay changed response bytes"
    );
    assert_eq!(scrape(server.addr(), "dee_store_disk_hits_total"), 1);
    assert_eq!(scrape(server.addr(), "dee_store_writes_total"), 0);
    // The disk tier sits *inside* the prepared-cache miss path: a second
    // identical request is a memory hit and never touches the store.
    let (status, again) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200);
    // Identical payload; only the cache field flips to the memory hit.
    assert_eq!(
        again,
        cold_body.replace("\"cache\":\"miss\"", "\"cache\":\"hit\"")
    );
    assert_eq!(scrape(server.addr(), "dee_store_disk_hits_total"), 1);
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corrupt_artifact_is_quarantined_and_request_succeeds_anyway() {
    let dir = scratch_dir("corrupt");

    let server = spawn_with_store(&dir);
    let (status, clean_body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{clean_body}");
    server.shutdown();

    // Flip a payload byte in the published artifact.
    let artifact = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "dtrc"))
        .expect("artifact published");
    let mut bytes = std::fs::read(&artifact).expect("read artifact");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&artifact, bytes).expect("corrupt artifact");

    // The restarted server detects the corruption, quarantines the file,
    // re-traces, and serves an identical response.
    let server = spawn_with_store(&dir);
    let (status, healed_body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{healed_body}");
    assert_eq!(healed_body, clean_body, "fallback changed response bytes");
    assert_eq!(scrape(server.addr(), "dee_store_disk_hits_total"), 0);
    assert_eq!(scrape(server.addr(), "dee_store_quarantined_total"), 1);
    // The re-trace republished a good artifact over the same key, and
    // the bad bytes went to quarantine/ rather than being destroyed.
    assert_eq!(scrape(server.addr(), "dee_store_writes_total"), 1);
    dee::store::verify_file(&artifact).expect("republished artifact verifies");
    assert!(
        dir.join("quarantine")
            .read_dir()
            .is_ok_and(|mut d| d.next().is_some()),
        "quarantine directory is empty"
    );
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// A tripped `decode_compile` site degrades the miss-path capture from
/// the pre-decoded engine to the reference interpreter — visibly only in
/// the fault metric, never in the response bytes.
#[test]
fn decode_compile_fault_degrades_to_interpreter_with_identical_bytes() {
    use std::sync::Arc;

    use dee::serve::faults::FaultSpec;
    use dee::serve::{FaultPlan, FaultSite, Server, ServerConfig};

    let dir = scratch_dir("decode_fault");

    // Clean run: decoded-engine miss path.
    let server = spawn_with_store(&dir);
    let (status, clean_body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{clean_body}");
    assert_eq!(
        scrape(
            server.addr(),
            "dee_faults_injected_total{site=\"decode_compile\"}"
        ),
        0
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // Degraded run: the first (and only, via the fuse) decode-compile
    // arrival trips, so the capture falls back to the interpreter.
    let dir = scratch_dir("decode_fault_armed");
    let plan = FaultPlan::new(1)
        .arm(
            FaultSite::DecodeCompile,
            FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        )
        .with_fuse(1);
    let server = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store_dir: Some(dir.clone()),
        faults: Arc::new(plan),
        ..ServerConfig::default()
    })
    .expect("bind on port 0");
    let (status, degraded_body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{degraded_body}");
    assert_eq!(
        degraded_body, clean_body,
        "interpreter fallback changed response bytes"
    );
    assert_eq!(
        scrape(
            server.addr(),
            "dee_faults_injected_total{site=\"decode_compile\"}"
        ),
        1
    );
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// Records published by the server replay chunk-by-chunk through
/// `StoreReader`, and the streamed records match a fresh decoded-engine
/// capture record for record.
#[test]
fn store_reader_streams_records_matching_decoded_capture() {
    use dee::store::{ArtifactKey, Store};
    use dee::vm::{trace_program_with, Engine};
    use dee::workloads::Scale;

    let dir = scratch_dir("stream_replay");
    let server = spawn_with_store(&dir);
    let (status, body) = post(server.addr(), "/simulate", BODY);
    assert_eq!(status, 200, "{body}");
    server.shutdown();

    let w = dee::workloads::xlisp::build(Scale::Tiny);
    let reference = trace_program_with(
        Engine::Decoded,
        &w.program,
        &w.initial_memory,
        1_000_000_000,
    )
    .expect("xlisp runs on the decoded engine");

    let store = Store::open(&dir).expect("store opens");
    let key = ArtifactKey::new("xlisp", "tiny", &w.program.to_listing(), &w.initial_memory);
    let mut reader = store
        .open_reader(&key)
        .expect("artifact readable")
        .expect("artifact published by the server");
    assert_eq!(reader.record_count(), reference.len() as u64);
    let mut streamed = Vec::with_capacity(reference.len());
    while let Some(record) = reader.next_record().expect("chunk intact") {
        streamed.push(record);
    }
    assert_eq!(
        streamed.as_slice(),
        reference.records(),
        "streamed records diverge from the decoded capture"
    );
    std::fs::remove_dir_all(dir).ok();
}
