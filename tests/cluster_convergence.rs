//! Anti-entropy convergence and gateway hedging determinism.
//!
//! The convergence half is a seeded property test: artifacts are
//! published to random non-empty subsets of three node stores, then
//! anti-entropy rounds run under a seeded partition schedule (some
//! rounds with `PartitionPeer` armed hot, then healed). The claim under
//! test: once partitions heal, every node converges to the *same*
//! digest listing — the union of everything published — within a
//! bounded number of rounds, and repair never invents or corrupts an
//! artifact along the way.
//!
//! The hedging half pins the gateway's core safety property: hedged
//! requests are a latency tactic, not a semantics change. The same
//! request sequence through an aggressively-hedging gateway and a
//! never-hedging gateway must produce byte-identical responses,
//! because every replica computes the same answer by construction.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dee::cluster::{peer_request, request, sync_round, PeerTimeouts, SyncAgent};
use dee::cluster::{ClusterConfig, LocalCluster};
use dee::serve::json::parse as parse_json;
use dee::serve::{FaultPlan, FaultSite, FaultSpec, Json, Server, ServerConfig};
use dee::store::{ArtifactKey, Store};
use dee::vm::trace_program;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dee_cluster_conv_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// splitmix64 — the repo-wide seeded-PRNG idiom.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Publishes a tiny but real artifact (traced program) under a unique key.
fn publish(store: &Store, index: usize) -> String {
    let listing = format!("li r1, {index}\nout r1\nhalt\n");
    let program = dee::isa::parse::parse_program(&listing).expect("valid program");
    let trace = trace_program(&program, &[], 1_000_000).expect("traceable");
    let key = ArtifactKey::new("prop", "tiny", &listing, &[]);
    store.put(&key, &trace).expect("publish");
    key.filename()
}

// &PathBuf (not &Path) so `dirs.iter().map(spawn_node)` works unchanged.
#[allow(clippy::ptr_arg)]
fn spawn_node(dir: &PathBuf) -> Server {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind node")
}

/// One node's digest listing via HTTP: (fold, sorted entry names).
fn digest_of(addr: &str) -> (String, Vec<String>) {
    let response =
        request(addr, "GET", "/store/digest", b"", PeerTimeouts::default()).expect("digest fetch");
    assert_eq!(response.status, 200, "digest endpoint answers");
    let text = std::str::from_utf8(&response.body).expect("utf-8 digest");
    let json = parse_json(text).expect("digest json");
    let fold = json
        .get("fold")
        .and_then(Json::as_str)
        .expect("fold field")
        .to_string();
    let Some(Json::Arr(entries)) = json.get("entries") else {
        panic!("entries array missing");
    };
    let mut names: Vec<String> = entries
        .iter()
        .map(|e| {
            e.get("name")
                .and_then(Json::as_str)
                .expect("name")
                .to_string()
        })
        .collect();
    names.sort();
    (fold, names)
}

#[test]
fn seeded_partition_schedules_converge_to_the_published_union() {
    for &seed in &[0xA11CEu64, 0xB0B, 1995] {
        let root = scratch(&format!("prop{seed}"));
        let dirs: Vec<PathBuf> = (0..3).map(|i| root.join(format!("node-{i}"))).collect();
        let stores: Vec<Store> = dirs
            .iter()
            .map(|d| Store::open(d.clone()).expect("open store"))
            .collect();

        // Seeded publish schedule: 6 artifacts, each to a random
        // non-empty subset of nodes.
        let mut expected: Vec<String> = Vec::new();
        for index in 0..6 {
            let roll = mix(seed ^ (index as u64));
            let mut subset = (roll % 7) as usize + 1; // 1..=7, bits = nodes
            subset &= 0b111;
            if subset == 0 {
                subset = 0b001;
            }
            let mut name = None;
            for (bit, store) in stores.iter().enumerate() {
                if subset & (1 << bit) != 0 {
                    name = Some(publish(store, index + (seed as usize % 1000) * 100));
                }
            }
            expected.push(name.expect("published somewhere"));
        }
        expected.sort();
        expected.dedup();
        drop(stores); // servers own the directories from here

        let nodes: Vec<Server> = dirs.iter().map(spawn_node).collect();
        let peers: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
        let stop = AtomicBool::new(false);

        // Partitioned phase: a hot PartitionPeer site drops roughly a
        // third of peer calls. Rounds still make partial progress.
        let partitioned = FaultPlan::new(seed).arm(
            FaultSite::PartitionPeer,
            FaultSpec {
                error_ppm: 333_333,
                ..FaultSpec::default()
            },
        );
        for _ in 0..4 {
            sync_round(&peers, PeerTimeouts::default(), &partitioned, &stop);
        }

        // Healed phase: inert plan; must converge within a few rounds.
        let healed = FaultPlan::inert();
        let mut converged = false;
        for _ in 0..50 {
            sync_round(&peers, PeerTimeouts::default(), &healed, &stop);
            let listings: Vec<(String, Vec<String>)> = peers.iter().map(|p| digest_of(p)).collect();
            if listings.iter().all(|(fold, names)| {
                *fold == listings[0].0 && *names == expected && !fold.is_empty()
            }) {
                converged = true;
                break;
            }
        }
        assert!(converged, "seed {seed}: nodes never converged to the union");

        for node in nodes {
            node.shutdown();
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn hedging_never_changes_response_bytes() {
    // Two independent clusters over the same request sequence: one
    // hedging on a 1ms budget (every slow simulate hedges), one with
    // hedging off entirely.
    let root_a = scratch("hedge_on");
    let root_b = scratch("hedge_off");
    let launch = |root: &PathBuf, hedge_ms: Option<u64>| {
        LocalCluster::launch(ClusterConfig {
            nodes: 3,
            replication: 2,
            store_root: root.clone(),
            sync_interval: None,
            hedge_ms,
            ..ClusterConfig::default()
        })
        .expect("launch cluster")
    };
    let hedging = launch(&root_a, Some(1));
    let plain = launch(&root_b, None);

    // A program slow enough (~150k trace records) that a 1ms budget
    // always expires before the primary answers.
    for i in 0..6 {
        let body = format!(
            "{{\"program\":\"li r1, 25000\\nloop: addi r1, r1, -1\\nbne r1, zero, loop\\nlw r2, 0(zero)\\nout r2\\nhalt\\n\",\"memory\":[{i}],\"model\":\"SP\",\"et\":4}}"
        );
        let send = |addr: std::net::SocketAddr| {
            peer_request(
                &addr.to_string(),
                "POST",
                "/simulate",
                body.as_bytes(),
                PeerTimeouts::default(),
                &FaultPlan::inert(),
            )
            .expect("gateway reachable")
        };
        let hedged = send(hedging.gateway_addr());
        let unhedged = send(plain.gateway_addr());
        assert_eq!(hedged.status, 200, "hedged request succeeds");
        assert_eq!(unhedged.status, 200, "unhedged request succeeds");
        assert_eq!(
            hedged.body, unhedged.body,
            "request {i}: hedged and unhedged responses must be byte-identical"
        );
    }

    let metrics_a = hedging.gateway().metrics();
    let fired = metrics_a.hedges.load(Ordering::Relaxed)
        + metrics_a.hedges_suppressed.load(Ordering::Relaxed);
    assert!(
        fired > 0,
        "1ms budget over a slow program must trigger the hedge path"
    );
    let metrics_b = plain.gateway().metrics();
    assert_eq!(
        metrics_b.hedges.load(Ordering::Relaxed),
        0,
        "hedge-off gateway must never hedge"
    );

    hedging.shutdown();
    plain.shutdown();
    std::fs::remove_dir_all(&root_a).ok();
    std::fs::remove_dir_all(&root_b).ok();
}

#[test]
fn sync_shutdown_drains_inflight_replication() {
    let root = scratch("drain");
    let dirs: Vec<PathBuf> = (0..2).map(|i| root.join(format!("node-{i}"))).collect();
    let source = Store::open(dirs[0].clone()).expect("open source store");
    let mut published = Vec::new();
    for i in 0..4 {
        published.push(publish(&source, 9000 + i));
    }
    published.sort();
    drop(source);

    let nodes: Vec<Server> = dirs.iter().map(spawn_node).collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();

    // A long interval: the agent's very first round does all the work,
    // and stop() lands while that round may still be in flight.
    let agent = SyncAgent::spawn(
        peers.clone(),
        Duration::from_secs(60),
        PeerTimeouts::default(),
        Arc::new(FaultPlan::inert()),
    )
    .expect("spawn agent");
    // Give the round a head start so stop() races real transfers.
    let deadline = Instant::now() + Duration::from_secs(20);
    while agent.stats().installed.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "first repair never happened");
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = Arc::clone(agent.stats());
    agent.stop(); // drain barrier: joins the round thread

    // Whatever landed on node-1 must be complete, verified artifacts —
    // never a torn file — and nothing may be left staged in tmp/.
    let receiver = Store::open(dirs[1].clone()).expect("open receiver store");
    let listing = receiver.digest_listing().expect("listable");
    for entry in &listing {
        assert!(
            published.contains(&entry.name),
            "unexpected artifact {} appeared",
            entry.name
        );
    }
    assert!(
        stats.installed.load(Ordering::Relaxed) as usize >= listing.len().min(1),
        "installed counter undercounts"
    );
    let tmp = dirs[1].join("tmp");
    if tmp.exists() {
        let staged = std::fs::read_dir(&tmp).expect("tmp readable").count();
        assert_eq!(staged, 0, "drain left a half-published artifact in tmp/");
    }

    for node in nodes {
        node.shutdown();
    }
    std::fs::remove_dir_all(&root).ok();
}
