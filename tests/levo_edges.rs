//! Edge-case geometry for the Levo machine model: degenerate windows,
//! minimal fetch, and column extremes must all stay architecturally
//! correct.

use dee::isa::{Assembler, Program, Reg};
use dee::levo::{Levo, LevoConfig};
use dee::vm::trace_program;

fn countdown(n: i32) -> Program {
    let mut asm = Assembler::new();
    let (r1, r2) = (Reg::new(1), Reg::new(2));
    asm.li(r1, n);
    asm.li(r2, 0);
    asm.label("top");
    asm.add(r2, r2, r1);
    asm.addi(r1, r1, -1);
    asm.bgt_label(r1, Reg::ZERO, "top");
    asm.out(r2);
    asm.halt();
    asm.assemble().unwrap()
}

fn check(config: LevoConfig, program: &Program) {
    let reference = trace_program(program, &[], 1_000_000).expect("vm runs");
    let report = Levo::new(config).run(program, &[]).expect("levo runs");
    assert_eq!(report.output, reference.output(), "config {config:?}");
    assert_eq!(report.retired, reference.len() as u64, "config {config:?}");
}

#[test]
fn window_larger_than_program() {
    let p = countdown(12);
    check(
        LevoConfig {
            n: 1024,
            ..LevoConfig::default()
        },
        &p,
    );
}

#[test]
fn single_fetch_per_cycle() {
    let p = countdown(12);
    let config = LevoConfig {
        fetch_width: 1,
        ..LevoConfig::default()
    };
    let report = Levo::new(config).run(&p, &[]).expect("runs");
    assert!(report.ipc() <= 1.0 + 1e-9, "fetch width 1 caps IPC at 1");
    check(config, &p);
}

#[test]
fn single_column_machine() {
    let p = countdown(12);
    check(
        LevoConfig {
            m: 1,
            ..LevoConfig::default()
        },
        &p,
    );
}

#[test]
fn many_columns_machine() {
    let p = countdown(40);
    check(
        LevoConfig {
            m: 64,
            ..LevoConfig::default()
        },
        &p,
    );
}

#[test]
fn tiny_window_forces_drains() {
    // A window smaller than the loop body: every iteration drains.
    let mut asm = Assembler::new();
    let r1 = Reg::new(1);
    asm.li(r1, 5);
    asm.label("top");
    for _ in 0..10 {
        asm.nop();
    }
    asm.addi(r1, r1, -1);
    asm.bgt_label(r1, Reg::ZERO, "top");
    asm.halt();
    let p = asm.assemble().unwrap();
    let config = LevoConfig {
        n: 8,
        ..LevoConfig::default()
    };
    let report = Levo::new(config).run(&p, &[]).expect("runs");
    assert!(report.uncaptured_backjumps > 0);
    check(config, &p);
}

#[test]
fn halt_only_program() {
    let mut asm = Assembler::new();
    asm.halt();
    let p = asm.assemble().unwrap();
    let report = Levo::new(LevoConfig::default()).run(&p, &[]).expect("runs");
    assert_eq!(report.retired, 1);
    assert!(report.output.is_empty());
}

#[test]
fn zero_penalty_machine_still_correct() {
    let p = countdown(25);
    let config = LevoConfig {
        mispredict_penalty: 0,
        ..LevoConfig::condel2()
    };
    check(config, &p);
}

#[test]
fn every_workload_under_stress_geometry() {
    // Hostile geometry: tiny window, one column, one DEE path, fetch 2.
    let config = LevoConfig {
        n: 16,
        m: 1,
        dee_paths: 1,
        dee_cols: 1,
        fetch_width: 2,
        ..LevoConfig::default()
    };
    for w in dee::workloads::all_workloads(dee::workloads::Scale::Tiny) {
        let report = Levo::new(config)
            .run(&w.program, &w.initial_memory)
            .expect("runs");
        assert_eq!(report.output, w.expected_output, "{}", w.name);
    }
}
