//! The static tree heuristic (§3.1, Figure 2).
//!
//! Computing cumulative probabilities dynamically is impractical (the paper
//! estimates hundreds of low-precision multiplies plus a sort, every cycle).
//! The heuristic instead fixes the DEE tree's *shape* at CPU design time
//! from a characteristic prediction accuracy `p`:
//!
//! * a **Main-Line (ML)** chain of `l` predicted branch paths, and
//! * a triangular **DEE region**: the not-predicted path of ML branch
//!   `B_k` (for `k = 1..h_DEE`, counted from the tree root) plus its
//!   subsequent predicted paths, forming a composite DEE path of length
//!   `h_DEE − k + 1`.
//!
//! With `c = log_p(1 − p)`, the paper's dimensions are
//!
//! ```text
//! E_T = c + h²/2 + 3h/2 − 1
//! h   = −3/2 + ½·√(8·E_T − 8c + 17)
//! l   = h + c − 1
//! ```
//!
//! valid while `p^l > (1 − p)²` (no second-order DEE paths wanted) and
//! `(1 − p) > p^l` (a non-empty DEE region). Equivalently — and this is how
//! [`StaticTree::build`] constructs the shape — the tree is the greedy
//! top-`E_T` selection of paths by cumulative probability under the
//! constant-`p` assumption, which is optimal by Theorem 1. When
//! `(1 − p) ≤ p^{E_T}` the DEE region is empty and the tree degenerates to
//! Single Path, which is why the paper's DEE curves coincide with SP at and
//! below 16 branch paths for `p ≈ 0.905`.

/// Inputs to the static tree heuristic.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TreeParams {
    /// Characteristic branch prediction accuracy (measured over a
    /// representative set of benchmarks; the paper uses 0.9053).
    pub p: f64,
    /// Total branch-path resources `E_T`.
    pub et: u32,
}

/// The fixed tree shape used by the DEE execution models and by Levo.
///
/// # Example
///
/// ```
/// use dee_core::{StaticTree, TreeParams};
///
/// // Figure 2: p = 0.90, E_T = 34.
/// let tree = StaticTree::build(TreeParams { p: 0.90, et: 34 });
/// assert_eq!(tree.mainline_len(), 24);
/// assert_eq!(tree.h_dee(), 4);
/// // DEE path at B1 covers 4 branch paths; at B4, one.
/// assert_eq!(tree.coverage_at_level(1), 4);
/// assert_eq!(tree.coverage_at_level(4), 1);
/// assert_eq!(tree.coverage_at_level(5), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StaticTree {
    p: f64,
    et: u32,
    l: u32,
    h: u32,
}

/// `log_p(1 − p)`, the paper's `c`: the ML depth at which a predicted
/// path's cumulative probability falls below a first not-predicted path's.
///
/// # Panics
///
/// Panics unless `0.5 <= p < 1`.
#[must_use]
pub fn log_p_not_p(p: f64) -> f64 {
    assert!((0.5..1.0).contains(&p), "p must be in [0.5, 1)");
    (1.0 - p).ln() / p.ln()
}

/// The depth of the Eager Execution tree with `et` branch paths: the
/// largest `d` with `2^(d+1) − 2 <= et` (complete levels only, plus any
/// partial level which does not add coverage depth for the whole trace).
#[must_use]
pub fn ee_depth(et: u32) -> u32 {
    let mut d = 0u32;
    let mut used = 0u64;
    loop {
        let next_level = 1u64 << (d + 1);
        if used + next_level > u64::from(et) {
            return d;
        }
        used += next_level;
        d += 1;
    }
}

impl StaticTree {
    /// Builds the static DEE tree for `params`: the triangular
    /// (ML + DEE-region) shape with the highest expected performance
    /// `P_tot = Σ cp` that fits in `et` branch paths.
    ///
    /// In the regime where the paper's formulas are valid
    /// (`p^l > (1−p)²` and `(1−p) > p^l`) this coincides with the
    /// unconstrained greedy selection of
    /// [`SpecTree`](crate::tree::SpecTree), which is optimal by Theorem 1;
    /// outside that regime it is the best tree of the heuristic's shape.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 <= p < 1` and `et >= 1`.
    #[must_use]
    pub fn build(params: TreeParams) -> Self {
        let TreeParams { p, et } = params;
        assert!((0.5..1.0).contains(&p), "p must be in [0.5, 1)");
        assert!(et >= 1, "at least one branch path resource required");
        let triangle_cp = |l: u32, h: u32| -> f64 {
            let mut total = 0.0;
            for k in 1..=l {
                total += p.powi(k as i32);
            }
            for k in 1..=h {
                for j in 0..=(h - k) {
                    total += (1.0 - p) * p.powi((k - 1 + j) as i32);
                }
            }
            total
        };
        let mut best = StaticTree { p, et, l: et, h: 0 };
        let mut best_cp = triangle_cp(et, 0);
        let mut h = 1u32;
        // A DEE path at B_k parallels ML levels k+1 ..= k+(h-k+1), so the
        // region needs l >= h + 1 to hang off a strictly longer main line.
        while h * (h + 1) / 2 + h < et {
            let l = et - h * (h + 1) / 2;
            let cp = triangle_cp(l, h);
            if cp > best_cp {
                best_cp = cp;
                best = StaticTree { p, et, l, h };
            }
            h += 1;
        }
        best
    }

    /// Builds the tree from the paper's closed-form formulas instead of the
    /// greedy construction. The two agree on the paper's operating points
    /// (this is tested); the greedy form is exact for all inputs.
    #[must_use]
    pub fn build_closed_form(params: TreeParams) -> Self {
        let TreeParams { p, et } = params;
        assert!(et >= 1, "at least one branch path resource required");
        let c = log_p_not_p(p);
        // Degenerate to SP when even the deepest ML path outranks the first
        // not-predicted path.
        if f64::from(et) <= c {
            return StaticTree { p, et, l: et, h: 0 };
        }
        let disc = 8.0 * f64::from(et) - 8.0 * c + 17.0;
        let mut h = ((-3.0 + disc.max(0.0).sqrt()) / 2.0).round().max(0.0) as u32;
        // Keep the DEE region from swallowing the main line.
        while h > 0 && et.saturating_sub(h * (h + 1) / 2) < h {
            h -= 1;
        }
        let l = et - h * (h + 1) / 2;
        StaticTree { p, et, l, h }
    }

    /// The characteristic accuracy this shape was designed for.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Total branch-path resources `E_T`.
    #[must_use]
    pub fn et(&self) -> u32 {
        self.et
    }

    /// Main-line length `l` in branch paths.
    #[must_use]
    pub fn mainline_len(&self) -> u32 {
        self.l
    }

    /// DEE region height/width `h_DEE` (number of DEE'd branches).
    #[must_use]
    pub fn h_dee(&self) -> u32 {
        self.h
    }

    /// Number of branch paths in the DEE region: `h(h+1)/2`.
    #[must_use]
    pub fn dee_region_paths(&self) -> u32 {
        self.h * (self.h + 1) / 2
    }

    /// Total branch paths in the tree (`l` + DEE region`)`; at most `E_T`.
    #[must_use]
    pub fn total_paths(&self) -> u32 {
        self.l + self.dee_region_paths()
    }

    /// Whether the tree has degenerated to a pure Single-Path chain.
    #[must_use]
    pub fn is_single_path(&self) -> bool {
        self.h == 0
    }

    /// How many branch paths past a branch at tree level `level`
    /// (1 = root) its DEE path covers: `h − level + 1` within the DEE
    /// region, 0 below it.
    ///
    /// This is the quantity the DEE execution models use to waive
    /// misprediction penalties: a branch resolving at `level` with a DEE
    /// path has already executed the correct continuation for that many
    /// branch paths.
    #[must_use]
    pub fn coverage_at_level(&self, level: u32) -> u32 {
        if level == 0 || level > self.h {
            0
        } else {
            self.h - level + 1
        }
    }

    /// Cumulative probability labels of the main-line paths (`p^k`),
    /// as printed along the ML of Figure 2.
    #[must_use]
    pub fn mainline_cps(&self) -> Vec<f64> {
        (1..=self.l).map(|k| self.p.powi(k as i32)).collect()
    }

    /// Cumulative probability of extension `j` (0-based) of the DEE path
    /// at branch `B_k`: `(1 − p) · p^(k − 1 + j)`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is outside `1..=h_DEE` or `j >= coverage(k)`.
    #[must_use]
    pub fn dee_path_cp(&self, k: u32, j: u32) -> f64 {
        assert!(k >= 1 && k <= self.h, "k out of DEE region");
        assert!(j < self.coverage_at_level(k), "extension beyond coverage");
        (1.0 - self.p) * self.p.powi((k - 1 + j) as i32)
    }

    /// The validity conditions of the paper's formulas:
    /// `p^l > (1 − p)²` and `(1 − p) > p^l`.
    #[must_use]
    pub fn formulas_valid(&self) -> bool {
        let q = 1.0 - self.p;
        let pl = self.p.powi(self.l as i32);
        pl > q * q && q > pl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: TreeParams = TreeParams { p: 0.90, et: 34 };

    #[test]
    fn figure_2_dimensions() {
        let t = StaticTree::build(FIG2);
        assert_eq!(t.mainline_len(), 24);
        assert_eq!(t.h_dee(), 4);
        assert_eq!(t.dee_region_paths(), 10);
        assert_eq!(t.total_paths(), 34);
        assert!(t.formulas_valid());
    }

    #[test]
    fn closed_form_matches_greedy_on_paper_points() {
        for &(p, et) in &[(0.90, 34), (0.9053, 100), (0.9053, 32)] {
            let greedy = StaticTree::build(TreeParams { p, et });
            let closed = StaticTree::build_closed_form(TreeParams { p, et });
            assert_eq!(
                greedy.mainline_len(),
                closed.mainline_len(),
                "p={p} et={et}"
            );
            assert_eq!(greedy.h_dee(), closed.h_dee(), "p={p} et={et}");
        }
    }

    #[test]
    fn figure_2_cp_labels() {
        let t = StaticTree::build(FIG2);
        let ml = t.mainline_cps();
        assert!((ml[0] - 0.90).abs() < 1e-12);
        assert!((ml[1] - 0.81).abs() < 1e-12);
        assert!((ml[2] - 0.729).abs() < 1e-12);
        assert!((ml[3] - 0.6561).abs() < 1e-12);
        // First DEE path, first extension: 0.10; at B4: ~0.0729.
        assert!((t.dee_path_cp(1, 0) - 0.10).abs() < 1e-12);
        assert!((t.dee_path_cp(4, 0) - 0.0729).abs() < 1e-12);
        // Deepest extension of the B1 path: (1-p)·p^3 ≈ 0.0729.
        assert!((t.dee_path_cp(1, 3) - 0.0729).abs() < 1e-12);
    }

    #[test]
    fn degenerates_to_single_path_at_low_resources() {
        // p ≈ 0.9053: (1-p) ≤ p^16, so E_T = 16 is a pure SP chain — the
        // paper's "at and below 16 paths the DEE tree is the same as SP".
        for et in [8, 16] {
            let t = StaticTree::build(TreeParams { p: 0.9053, et });
            assert!(t.is_single_path(), "et={et} should be SP");
            assert_eq!(t.mainline_len(), et);
        }
        let t32 = StaticTree::build(TreeParams { p: 0.9053, et: 32 });
        assert!(!t32.is_single_path(), "et=32 should have a DEE region");
    }

    #[test]
    fn levo_operating_point() {
        // E_T = 100, p ≈ 0.9053 (the paper's measured accuracy).
        let t = StaticTree::build(TreeParams { p: 0.9053, et: 100 });
        assert_eq!(t.total_paths(), 100);
        assert!(t.h_dee() >= 10 && t.h_dee() <= 12, "h = {}", t.h_dee());
        assert_eq!(t.mainline_len() + t.dee_region_paths(), 100);
    }

    #[test]
    fn coverage_shape_is_triangular() {
        let t = StaticTree::build(FIG2);
        assert_eq!(t.coverage_at_level(1), 4);
        assert_eq!(t.coverage_at_level(2), 3);
        assert_eq!(t.coverage_at_level(3), 2);
        assert_eq!(t.coverage_at_level(4), 1);
        assert_eq!(t.coverage_at_level(5), 0);
        assert_eq!(t.coverage_at_level(0), 0);
        let total: u32 = (1..=t.h_dee()).map(|k| t.coverage_at_level(k)).sum();
        assert_eq!(total, t.dee_region_paths());
    }

    #[test]
    fn ee_depth_matches_complete_levels() {
        assert_eq!(ee_depth(1), 0);
        assert_eq!(ee_depth(2), 1);
        assert_eq!(ee_depth(5), 1);
        assert_eq!(ee_depth(6), 2); // Figure 1: 6 paths, 2 levels
        assert_eq!(ee_depth(14), 3);
        assert_eq!(ee_depth(256), 7);
        assert_eq!(ee_depth(510), 8);
    }

    #[test]
    fn log_p_not_p_reference_values() {
        // log_0.9(0.1) ≈ 21.85
        assert!((log_p_not_p(0.9) - 21.8543).abs() < 1e-3);
        // log_0.5(0.5) = 1
        assert!((log_p_not_p(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_grows_with_resources() {
        let p = 0.9053;
        let mut last_h = 0;
        for et in [16, 32, 64, 100, 128, 256] {
            let t = StaticTree::build(TreeParams { p, et });
            assert!(t.h_dee() >= last_h, "h should be monotone in E_T");
            last_h = t.h_dee();
            assert!(t.total_paths() <= et);
        }
        assert!(last_h > 0);
    }

    #[test]
    #[should_panic(expected = "extension beyond coverage")]
    fn dee_path_cp_bounds_checked() {
        let t = StaticTree::build(FIG2);
        let _ = t.dee_path_cp(1, 4);
    }
}

#[cfg(test)]
mod proptests {
    //! Property tests over a deterministic xorshift sweep (the repo builds
    //! with no external crates, so no `proptest`; failures print the seed).
    use super::*;

    /// xorshift64* — deterministic across platforms, good enough to sample
    /// the (p, E_T) parameter space.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn p_in(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn et_in(&mut self, lo: u32, hi: u32) -> u32 {
            lo + (self.next() % u64::from(hi - lo)) as u32
        }
    }

    /// The greedy static tree never exceeds its resource budget and its
    /// main line is always at least as long as its DEE height.
    #[test]
    fn shape_invariants() {
        let mut rng = Rng(0x5eed_0001);
        for case in 0..256 {
            let (p, et) = (rng.p_in(0.5, 0.99), rng.et_in(1, 300));
            let t = StaticTree::build(TreeParams { p, et });
            assert!(t.total_paths() <= et, "case {case}: p={p} et={et}");
            assert!(t.mainline_len() >= 1, "case {case}: p={p} et={et}");
            assert!(
                t.mainline_len() + t.dee_region_paths() == t.total_paths(),
                "case {case}: p={p} et={et}"
            );
            // Triangular coverage is monotonically decreasing in level.
            for level in 1..=t.h_dee() {
                assert!(
                    t.coverage_at_level(level) >= t.coverage_at_level(level + 1),
                    "case {case}: p={p} et={et} level={level}"
                );
            }
        }
    }

    /// The greedy tree's total cp dominates both SP's and EE's
    /// (optimality of greatest marginal benefit).
    #[test]
    fn greedy_total_cp_dominates() {
        use crate::tree::{SpecTree, Strategy};
        let mut rng = Rng(0x5eed_0002);
        for case in 0..256 {
            let (p, et) = (rng.p_in(0.5, 0.99), rng.et_in(1, 128));
            let dee = SpecTree::build(Strategy::Disjoint, p, et).total_cp();
            let sp = SpecTree::build(Strategy::SinglePath, p, et).total_cp();
            let ee = SpecTree::build(Strategy::Eager, p, et).total_cp();
            assert!(dee >= sp - 1e-9, "case {case}: p={p} et={et}");
            assert!(dee >= ee - 1e-9, "case {case}: p={p} et={et}");
        }
    }
}
