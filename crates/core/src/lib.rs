//! Disjoint Eager Execution theory (Uht & Sindagi, MICRO-28, 1995, §2–§3).
//!
//! This crate contains the paper's *analytic* content, independent of any
//! simulator:
//!
//! * [`assign`] — Theorem 1 and Corollary 1: given branch paths with
//!   cumulative probabilities (and optional saturation limits), the
//!   expected-performance-optimal assignment of execution resources is the
//!   rule of **greatest marginal benefit** — give everything to the most
//!   likely unsaturated path, then repeat. Disjoint Eager Execution is the
//!   speculation strategy this rule constructs.
//! * [`tree`] — speculation trees over a branch-prediction process with
//!   per-branch accuracy `p`: the Single Path (SP), Eager Execution (EE)
//!   and Disjoint Eager Execution (DEE) strategies of Figure 1, each
//!   selecting which branch paths receive the `E_T` available resources.
//! * [`static_tree`] — the §3.1 *static tree heuristic*: fixing the DEE
//!   tree shape at design time from a characteristic prediction accuracy,
//!   with the paper's closed-form dimensions (`l`, `h_DEE`, `E_T`) and the
//!   equivalent greedy construction (Figure 2).
//!
//! # Example
//!
//! The static tree of Figure 2 (p = 0.90, E_T = 34 branch paths):
//!
//! ```
//! use dee_core::{StaticTree, TreeParams};
//!
//! let tree = StaticTree::build(TreeParams { p: 0.90, et: 34 });
//! assert_eq!(tree.mainline_len(), 24); // "l = 24 paths"
//! assert_eq!(tree.h_dee(), 4);         // "hDEE = 4 paths"
//! assert_eq!(tree.dee_region_paths(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod static_tree;
pub mod tree;

pub use assign::{assign_resources, expected_performance, PathCandidate};
pub use static_tree::{ee_depth, log_p_not_p, StaticTree, TreeParams};
pub use tree::{ChosenPath, SpecTree, Strategy};
