//! Optimal resource assignment (Theorem 1, Corollary 1).
//!
//! The paper models overall expected performance as
//! `P_tot = Σ_i cp_i · e_i`, where `cp_i` is branch path *i*'s cumulative
//! probability of being executed and `e_i` the execution resources assigned
//! to it. Theorem 1: with no saturation, putting **all** resources on the
//! path with the largest `cp` maximizes `P_tot`. Corollary 1: if a path
//! saturates (can productively use only so many resources), give it its
//! saturation amount and assign the remainder to the next-most-likely path,
//! recursively. The resulting **rule of greatest marginal benefit** is the
//! constructive definition of Disjoint Eager Execution.

/// A branch path competing for execution resources.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PathCandidate {
    /// Cumulative probability of the path being executed (product of local
    /// probabilities up the tree). Must be in `[0, 1]`.
    pub cp: f64,
    /// Maximum resources the path can productively use, or `None` for an
    /// unsaturable path (Theorem 1's premise).
    pub saturation: Option<u32>,
}

impl PathCandidate {
    /// An unsaturable path with cumulative probability `cp`.
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not a probability.
    #[must_use]
    pub fn unsaturated(cp: f64) -> Self {
        assert!((0.0..=1.0).contains(&cp), "cp must be a probability");
        PathCandidate {
            cp,
            saturation: None,
        }
    }

    /// A path that saturates at `max` resources.
    ///
    /// # Panics
    ///
    /// Panics if `cp` is not a probability.
    #[must_use]
    pub fn saturating(cp: f64, max: u32) -> Self {
        assert!((0.0..=1.0).contains(&cp), "cp must be a probability");
        PathCandidate {
            cp,
            saturation: Some(max),
        }
    }
}

/// Assigns `total` resources to `paths` by the rule of greatest marginal
/// benefit: all remaining resources go to the most likely idle path until it
/// saturates; repeat.
///
/// Returns the per-path assignment (same order as `paths`). By Theorem 1 and
/// Corollary 1 this maximizes [`expected_performance`]. Ties on `cp` are
/// broken by path order, which does not affect optimality.
///
/// # Example
///
/// ```
/// use dee_core::assign::{assign_resources, PathCandidate};
///
/// let paths = [
///     PathCandidate::saturating(0.7, 4),
///     PathCandidate::saturating(0.3, 4),
///     PathCandidate::unsaturated(0.21),
/// ];
/// // 4 to the 0.7 path (saturates), 4 to the 0.3 path, remainder to 0.21.
/// assert_eq!(assign_resources(&paths, 10), vec![4, 4, 2]);
/// ```
#[must_use]
pub fn assign_resources(paths: &[PathCandidate], total: u32) -> Vec<u32> {
    let mut alloc = vec![0u32; paths.len()];
    let mut order: Vec<usize> = (0..paths.len()).collect();
    // Stable sort: descending cp, ties by original order.
    order.sort_by(|&a, &b| {
        paths[b]
            .cp
            .partial_cmp(&paths[a].cp)
            .expect("cp values are comparable")
    });
    let mut remaining = total;
    for idx in order {
        if remaining == 0 {
            break;
        }
        let take = match paths[idx].saturation {
            Some(max) => remaining.min(max),
            None => remaining,
        };
        alloc[idx] = take;
        remaining -= take;
    }
    alloc
}

/// The paper's expected-performance objective `P_tot = Σ cp_i · e_i`, with
/// resources beyond a path's saturation contributing nothing (Corollary 1:
/// "effectively `cp_j → 0` for resources placed beyond saturation").
///
/// # Panics
///
/// Panics if `alloc.len() != paths.len()`.
#[must_use]
pub fn expected_performance(paths: &[PathCandidate], alloc: &[u32]) -> f64 {
    assert_eq!(paths.len(), alloc.len(), "allocation length mismatch");
    paths
        .iter()
        .zip(alloc)
        .map(|(path, &e)| {
            let useful = match path.saturation {
                Some(max) => e.min(max),
                None => e,
            };
            path.cp * f64::from(useful)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively enumerates all allocations of `total` resources over
    /// `paths` and returns the best `P_tot`.
    fn brute_force_best(paths: &[PathCandidate], total: u32) -> f64 {
        fn recurse(
            paths: &[PathCandidate],
            total: u32,
            idx: usize,
            alloc: &mut Vec<u32>,
            best: &mut f64,
        ) {
            if idx == paths.len() {
                let mut padded = alloc.clone();
                padded.resize(paths.len(), 0);
                let p = expected_performance(paths, &padded);
                if p > *best {
                    *best = p;
                }
                return;
            }
            for e in 0..=total {
                alloc.push(e);
                recurse(paths, total - e, idx + 1, alloc, best);
                alloc.pop();
            }
        }
        let mut best = f64::MIN;
        recurse(paths, total, 0, &mut Vec::new(), &mut best);
        best
    }

    #[test]
    fn theorem_1_all_resources_to_max_cp() {
        let paths = [
            PathCandidate::unsaturated(0.3),
            PathCandidate::unsaturated(0.7),
            PathCandidate::unsaturated(0.21),
        ];
        assert_eq!(assign_resources(&paths, 6), vec![0, 6, 0]);
    }

    #[test]
    fn corollary_1_spillover_on_saturation() {
        let paths = [
            PathCandidate::saturating(0.7, 2),
            PathCandidate::unsaturated(0.3),
        ];
        assert_eq!(assign_resources(&paths, 6), vec![2, 4]);
    }

    #[test]
    fn greedy_matches_brute_force_small_cases() {
        let cases: Vec<(Vec<PathCandidate>, u32)> = vec![
            (
                vec![
                    PathCandidate::saturating(0.7, 3),
                    PathCandidate::saturating(0.49, 2),
                    PathCandidate::saturating(0.3, 3),
                    PathCandidate::unsaturated(0.21),
                ],
                6,
            ),
            (
                vec![
                    PathCandidate::saturating(0.5, 1),
                    PathCandidate::saturating(0.5, 1),
                    PathCandidate::saturating(0.25, 4),
                ],
                5,
            ),
            (
                vec![
                    PathCandidate::unsaturated(0.9),
                    PathCandidate::saturating(0.81, 2),
                ],
                4,
            ),
        ];
        for (paths, total) in cases {
            let greedy = assign_resources(&paths, total);
            let greedy_perf = expected_performance(&paths, &greedy);
            let best = brute_force_best(&paths, total);
            assert!(
                (greedy_perf - best).abs() < 1e-12,
                "greedy {greedy_perf} != optimal {best} for {paths:?} total {total}"
            );
        }
    }

    #[test]
    fn figure_1_dee_order() {
        // Figure 1, DEE: p = 0.7, six single-resource path slots. Candidate
        // paths with their cumulative probabilities; each path "saturates"
        // at one resource slot (one path = one slot in the figure).
        let cps = [0.7, 0.49, 0.34, 0.3, 0.24, 0.21, 0.17, 0.15, 0.12];
        let paths: Vec<PathCandidate> = cps
            .iter()
            .map(|&cp| PathCandidate::saturating(cp, 1))
            .collect();
        let alloc = assign_resources(&paths, 6);
        // The six most likely paths get the resources: the 0.3 path (the
        // not-predicted path at the root) is taken *before* the deeper
        // main-line paths at 0.24 — the disjoint choice of Figure 1.
        assert_eq!(alloc, vec![1, 1, 1, 1, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn zero_total_assigns_nothing() {
        let paths = [PathCandidate::unsaturated(0.5)];
        assert_eq!(assign_resources(&paths, 0), vec![0]);
    }

    #[test]
    fn empty_paths_ok() {
        assert!(assign_resources(&[], 10).is_empty());
        assert_eq!(expected_performance(&[], &[]), 0.0);
    }

    #[test]
    fn insufficient_saturation_leaves_remainder_unused() {
        let paths = [
            PathCandidate::saturating(0.9, 1),
            PathCandidate::saturating(0.5, 1),
        ];
        assert_eq!(assign_resources(&paths, 10), vec![1, 1]);
    }

    #[test]
    fn performance_clamps_over_saturation() {
        let paths = [PathCandidate::saturating(0.5, 2)];
        assert_eq!(expected_performance(&paths, &[8]), 1.0);
    }

    #[test]
    #[should_panic(expected = "cp must be a probability")]
    fn rejects_invalid_probability() {
        let _ = PathCandidate::unsaturated(1.5);
    }

    #[test]
    #[should_panic(expected = "allocation length mismatch")]
    fn rejects_mismatched_alloc() {
        let paths = [PathCandidate::unsaturated(0.5)];
        let _ = expected_performance(&paths, &[1, 2]);
    }
}
