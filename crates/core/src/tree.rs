//! Speculation trees: which branch paths the SP, EE and DEE strategies
//! execute for a given prediction accuracy `p` and resource budget `E_T`
//! (Figure 1 of the paper).
//!
//! Every node of the (conceptually infinite) binary tree below a pending
//! branch is a *branch path*. The left/predicted child of a node has local
//! probability `p`, the right/not-predicted child `1 - p`; a path's
//! cumulative probability `cp` is the product of local probabilities up to
//! the root. A strategy selects `E_T` paths:
//!
//! * **Single Path** follows predictions only: a chain of depth `E_T`;
//! * **Eager Execution** takes both children breadth-first: a complete
//!   binary tree of depth ~`log2(E_T)`;
//! * **Disjoint Eager Execution** repeatedly takes the highest-`cp`
//!   unchosen path whose parent is chosen — the rule of greatest marginal
//!   benefit from [`assign`](crate::assign).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The speculative execution strategy (Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Strategy {
    /// Branch prediction only: follow the single most likely path.
    SinglePath,
    /// Execute both paths of every branch, breadth-first.
    Eager,
    /// Execute the most likely paths overall (the paper's contribution).
    Disjoint,
}

/// One branch path selected by a strategy.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChosenPath {
    /// Index of the parent path within the tree, or `None` for the two
    /// root-level paths.
    pub parent: Option<u32>,
    /// Whether this path follows the *predicted* direction of its branch.
    pub predicted: bool,
    /// Depth in branch paths (root-level paths have depth 1).
    pub depth: u32,
    /// Cumulative probability of execution.
    pub cp: f64,
    /// Resource-assignment order (0 = first path assigned), as circled in
    /// Figure 1.
    pub order: u32,
}

/// A finite speculation tree: the set of branch paths a strategy executes.
///
/// # Example
///
/// Figure 1's DEE tree (p = 0.7, 6 branch-path resources): after the three
/// main-line paths, the *not-predicted* root path (cp 0.3) is chosen before
/// the fourth main-line path (cp 0.24):
///
/// ```
/// use dee_core::{SpecTree, Strategy};
///
/// let tree = SpecTree::build(Strategy::Disjoint, 0.7, 6);
/// let fourth = tree.paths().iter().find(|p| p.order == 3).unwrap();
/// assert!(!fourth.predicted);
/// assert!((fourth.cp - 0.3).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SpecTree {
    strategy: Strategy,
    p: f64,
    paths: Vec<ChosenPath>,
}

/// Heap candidate ordered by (cp, shallower, predicted-first).
struct Candidate {
    cp: f64,
    depth: u32,
    predicted: bool,
    parent: Option<u32>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cp
            .partial_cmp(&other.cp)
            .expect("cp is finite")
            // Prefer shallower paths on ties (yields the EE shape at p=0.5).
            .then_with(|| other.depth.cmp(&self.depth))
            // Then prefer the predicted direction.
            .then_with(|| self.predicted.cmp(&other.predicted))
    }
}

impl SpecTree {
    /// Builds the tree a strategy executes with accuracy `p` and `et`
    /// branch-path resources.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 <= p < 1.0` (a predictor below 0.5 would simply
    /// be inverted) and `et >= 1`.
    #[must_use]
    pub fn build(strategy: Strategy, p: f64, et: u32) -> Self {
        assert!((0.5..1.0).contains(&p), "p must be in [0.5, 1)");
        assert!(et >= 1, "at least one branch path resource required");
        let paths = match strategy {
            Strategy::SinglePath => Self::build_single_path(p, et),
            Strategy::Eager | Strategy::Disjoint => {
                // Eager execution is greedy selection with all-equal local
                // probabilities; implemented directly for clarity.
                if strategy == Strategy::Eager {
                    Self::build_eager(p, et)
                } else {
                    Self::build_greedy(p, et)
                }
            }
        };
        SpecTree { strategy, p, paths }
    }

    fn build_single_path(p: f64, et: u32) -> Vec<ChosenPath> {
        let mut paths = Vec::with_capacity(et as usize);
        let mut cp = 1.0;
        for depth in 1..=et {
            cp *= p;
            paths.push(ChosenPath {
                parent: if depth == 1 { None } else { Some(depth - 2) },
                predicted: true,
                depth,
                cp,
                order: depth - 1,
            });
        }
        paths
    }

    fn build_eager(p: f64, et: u32) -> Vec<ChosenPath> {
        // Breadth-first levels; a partial last level is filled in
        // descending-cp order (predicted children first).
        let mut paths: Vec<ChosenPath> = Vec::with_capacity(et as usize);
        let mut level: Vec<u32> = Vec::new(); // indices of previous level
        let mut depth = 0;
        while (paths.len() as u32) < et {
            depth += 1;
            let parents: Vec<Option<u32>> = if depth == 1 {
                vec![None]
            } else {
                level.iter().map(|&i| Some(i)).collect()
            };
            // Candidates of this level, predicted children first so that a
            // partial level takes the most likely paths.
            let mut cands: Vec<Candidate> = Vec::new();
            for &parent in &parents {
                let parent_cp = parent.map_or(1.0, |i| paths[i as usize].cp);
                cands.push(Candidate {
                    cp: parent_cp * p,
                    depth,
                    predicted: true,
                    parent,
                });
                cands.push(Candidate {
                    cp: parent_cp * (1.0 - p),
                    depth,
                    predicted: false,
                    parent,
                });
            }
            cands.sort_by(|a, b| b.cmp(a));
            level.clear();
            for cand in cands {
                if paths.len() as u32 >= et {
                    break;
                }
                let order = paths.len() as u32;
                level.push(order);
                paths.push(ChosenPath {
                    parent: cand.parent,
                    predicted: cand.predicted,
                    depth,
                    cp: cand.cp,
                    order,
                });
            }
        }
        paths
    }

    fn build_greedy(p: f64, et: u32) -> Vec<ChosenPath> {
        let mut paths: Vec<ChosenPath> = Vec::with_capacity(et as usize);
        let mut heap = BinaryHeap::new();
        heap.push(Candidate {
            cp: p,
            depth: 1,
            predicted: true,
            parent: None,
        });
        heap.push(Candidate {
            cp: 1.0 - p,
            depth: 1,
            predicted: false,
            parent: None,
        });
        while (paths.len() as u32) < et {
            let cand = heap.pop().expect("frontier never empties");
            let order = paths.len() as u32;
            paths.push(ChosenPath {
                parent: cand.parent,
                predicted: cand.predicted,
                depth: cand.depth,
                cp: cand.cp,
                order,
            });
            heap.push(Candidate {
                cp: cand.cp * p,
                depth: cand.depth + 1,
                predicted: true,
                parent: Some(order),
            });
            heap.push(Candidate {
                cp: cand.cp * (1.0 - p),
                depth: cand.depth + 1,
                predicted: false,
                parent: Some(order),
            });
        }
        paths
    }

    /// The strategy that produced this tree.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The per-branch prediction accuracy used.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The chosen paths, in assignment order.
    #[must_use]
    pub fn paths(&self) -> &[ChosenPath] {
        &self.paths
    }

    /// The depth of speculation `l`: the maximum height of the tree in
    /// branch paths (`l_SP = E_T`, `l_EE ≈ log2(E_T)`).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.paths.iter().map(|p| p.depth).max().unwrap_or(0)
    }

    /// Length of the main-line (all-predicted) chain.
    #[must_use]
    pub fn mainline_len(&self) -> u32 {
        // Follow predicted children from the root.
        let mut len = 0;
        let mut current: Option<u32> = None;
        loop {
            let next = self
                .paths
                .iter()
                .find(|path| path.parent == current && path.predicted);
            match next {
                Some(path) => {
                    len += 1;
                    current = Some(path.order);
                }
                None => return len,
            }
        }
    }

    /// Sum of chosen-path cumulative probabilities — the expected
    /// performance `P_tot` with one resource slot per path.
    #[must_use]
    pub fn total_cp(&self) -> f64 {
        self.paths.iter().map(|p| p.cp).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1_P: f64 = 0.7;
    const FIG1_ET: u32 = 6;

    fn sorted_cps(tree: &SpecTree) -> Vec<f64> {
        let mut cps: Vec<f64> = tree.paths().iter().map(|p| p.cp).collect();
        cps.sort_by(|a, b| b.partial_cmp(a).unwrap());
        cps
    }

    fn assert_close(actual: &[f64], expected: &[f64]) {
        assert_eq!(actual.len(), expected.len());
        for (a, e) in actual.iter().zip(expected) {
            assert!((a - e).abs() < 1e-9, "{actual:?} vs {expected:?}");
        }
    }

    #[test]
    fn figure_1_single_path() {
        let tree = SpecTree::build(Strategy::SinglePath, FIG1_P, FIG1_ET);
        assert_eq!(tree.depth(), 6); // l_SP = 6
        assert_close(
            &sorted_cps(&tree),
            &[0.7, 0.49, 0.343, 0.2401, 0.16807, 0.117649],
        );
        assert!(tree.paths().iter().all(|p| p.predicted));
    }

    #[test]
    fn figure_1_eager() {
        let tree = SpecTree::build(Strategy::Eager, FIG1_P, FIG1_ET);
        assert_eq!(tree.depth(), 2); // l_EE = 2
        assert_close(&sorted_cps(&tree), &[0.7, 0.49, 0.3, 0.21, 0.21, 0.09]);
    }

    #[test]
    fn figure_1_disjoint() {
        let tree = SpecTree::build(Strategy::Disjoint, FIG1_P, FIG1_ET);
        assert_eq!(tree.depth(), 4); // l_DEE = 4
        assert_close(&sorted_cps(&tree), &[0.7, 0.49, 0.343, 0.3, 0.2401, 0.21]);
        // Paths 1..3 are main-line; path 4 (order 3) is the not-predicted
        // root path with cp 0.3 — chosen before main-line cp 0.2401.
        let orders: Vec<(u32, bool)> = tree
            .paths()
            .iter()
            .map(|p| (p.order, p.predicted))
            .collect();
        assert_eq!(
            orders,
            vec![
                (0, true),
                (1, true),
                (2, true),
                (3, false),
                (4, true),
                (5, true)
            ]
        );
        assert_eq!(tree.mainline_len(), 4);
    }

    #[test]
    fn dee_beats_sp_and_ee_on_expected_performance() {
        for &(p, et) in &[(0.7, 6), (0.9, 34), (0.8, 20), (0.6, 12)] {
            let dee = SpecTree::build(Strategy::Disjoint, p, et).total_cp();
            let sp = SpecTree::build(Strategy::SinglePath, p, et).total_cp();
            let ee = SpecTree::build(Strategy::Eager, p, et).total_cp();
            assert!(dee >= sp - 1e-12, "p={p} et={et}: dee {dee} < sp {sp}");
            assert!(dee >= ee - 1e-12, "p={p} et={et}: dee {dee} < ee {ee}");
        }
    }

    #[test]
    fn dee_equals_sp_at_high_accuracy() {
        // p^et > 1-p for p=0.95, et=6 (0.735 > 0.05): greedy never leaves
        // the main line.
        let dee = SpecTree::build(Strategy::Disjoint, 0.95, 6);
        let sp = SpecTree::build(Strategy::SinglePath, 0.95, 6);
        assert_close(&sorted_cps(&dee), &sorted_cps(&sp));
        assert_eq!(dee.depth(), 6);
    }

    #[test]
    fn dee_equals_ee_at_coin_flip_accuracy() {
        // At p = 0.5 every same-depth path has equal cp; greedy (with the
        // shallow-first tie break) fills levels breadth-first: the EE shape.
        let dee = SpecTree::build(Strategy::Disjoint, 0.5, 6);
        let ee = SpecTree::build(Strategy::Eager, 0.5, 6);
        assert_close(&sorted_cps(&dee), &sorted_cps(&ee));
        assert_eq!(dee.depth(), 2);
    }

    #[test]
    fn parents_precede_children() {
        for strategy in [Strategy::SinglePath, Strategy::Eager, Strategy::Disjoint] {
            let tree = SpecTree::build(strategy, 0.75, 17);
            for path in tree.paths() {
                if let Some(parent) = path.parent {
                    assert!(parent < path.order, "{strategy:?}: child before parent");
                    let pp = &tree.paths()[parent as usize];
                    assert_eq!(pp.depth + 1, path.depth);
                    let local = if path.predicted { 0.75 } else { 0.25 };
                    assert!((pp.cp * local - path.cp).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn requested_resource_count_is_honored() {
        for strategy in [Strategy::SinglePath, Strategy::Eager, Strategy::Disjoint] {
            for et in [1, 2, 7, 64] {
                let tree = SpecTree::build(strategy, 0.85, et);
                assert_eq!(tree.paths().len() as u32, et, "{strategy:?} et={et}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "p must be in [0.5, 1)")]
    fn rejects_bad_probability() {
        let _ = SpecTree::build(Strategy::Disjoint, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one branch path resource")]
    fn rejects_zero_resources() {
        let _ = SpecTree::build(Strategy::Disjoint, 0.7, 0);
    }
}
