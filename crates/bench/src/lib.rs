//! Experiment harness shared by the figure/table-regeneration binaries and
//! the timing benches (see [`timing`]; the repo carries no external crates,
//! so the benches use a hand-rolled harness instead of Criterion).
//!
//! Every evaluation artifact of the paper has a binary here (see DESIGN.md
//! §3 for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig1` | Figure 1 — SP/EE/DEE trees at p=0.7, E_T=6 |
//! | `fig2` | Figure 2 — static DEE tree at p=0.90, E_T=34 |
//! | `fig5` | Figure 5 — speedup vs resources, 7 models × 5 benchmarks + HM |
//! | `headline` | §5.3 headline numbers at E_T=100 |
//! | `resolve_location` | §5.3 — where mispredicted branches resolve |
//! | `predictor_accuracy` | §3.1/§5.1 characteristic accuracy; §4.3 PAp claim |
//! | `cost_model` | §4.3 hardware cost shares |
//! | `ablation_p` | DEE→SP / DEE→EE convergence; tree-shape sensitivity |
//! | `ablation_shape` | h_DEE sweep vs the §3.1 heuristic's pick |
//! | `ablation_predictor` | §5.1 predictor/DEE tradeoff |
//! | `ablation_future` | §1.2/§5.3 future work: latencies, PE limits, PAp |
//! | `ablation_memory` | §1.2 future work: a finite data cache |
//! | `riseman_foster` | the 1972 baseline cited in §1.2 |
//! | `levo_eval` | §4 Levo machine: IPC, DEE paths, loop capture |
//! | `workload_stats` | workload character (lengths, branch stats) |
//!
//! Binaries print paper-vs-measured tables and write CSVs under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;
pub mod pool;
pub mod timing;

use std::fmt::Write as _;
use std::path::Path;

use dee_ilpsim::{harmonic_mean, PreparedTrace};
use dee_predict::{measure_accuracy, BranchPredictor, TwoBitCounter};
use dee_store::{ArtifactKey, Store, StoreSource};
use dee_vm::{Engine, Trace, TraceChunks, DEFAULT_CHUNK_RECORDS};
use dee_workloads::{all_workloads, Scale, Workload, WorkloadRegistry, PAPER_WORKLOADS};

/// A validated workload with its captured trace.
pub struct BenchEntry {
    /// The workload (program + inputs + expected output).
    pub workload: Workload,
    /// Its dynamic trace (validated against the reference output).
    pub trace: Trace,
}

impl BenchEntry {
    /// Prepares the trace for simulation (predictor replay + CFG
    /// analysis).
    #[must_use]
    pub fn prepare(&self) -> PreparedTrace {
        PreparedTrace::new(&self.workload.program, &self.trace)
    }

    /// Streamed preparation: the records flow through
    /// [`PreparedTrace::from_source`] in `chunk_records`-sized chunks
    /// (the sweep binaries' `--chunk-records` flag), byte-identical to
    /// [`prepare`](Self::prepare) at every chunk size.
    #[must_use]
    pub fn prepare_chunked(&self, chunk_records: usize) -> PreparedTrace {
        self.prepare_chunked_with(chunk_records, &mut TwoBitCounter::new())
    }

    /// [`prepare_chunked`](Self::prepare_chunked) with a caller-supplied
    /// predictor.
    #[must_use]
    pub fn prepare_chunked_with(
        &self,
        chunk_records: usize,
        predictor: &mut dyn BranchPredictor,
    ) -> PreparedTrace {
        let mut source = TraceChunks::new(&self.trace);
        PreparedTrace::from_source(
            &self.workload.program,
            &mut source,
            chunk_records,
            predictor,
        )
        .expect("in-memory chunk source cannot fail")
    }
}

/// The five-benchmark suite at a given scale, traced and validated.
pub struct Suite {
    /// Entries in the paper's benchmark order.
    pub entries: Vec<BenchEntry>,
    /// The scale the suite was built at.
    pub scale: Scale,
}

impl Suite {
    /// Builds, runs, and validates all five workloads.
    ///
    /// # Panics
    ///
    /// Panics if any workload fails validation — that is a build error,
    /// not an experiment outcome.
    #[must_use]
    pub fn load(scale: Scale) -> Self {
        Suite::load_with_store(scale, None)
    }

    /// Like [`Suite::load`], but record-once/replay-many when a store is
    /// given: each workload's raw trace is replayed from its published
    /// artifact when one exists and is intact, and captured on the VM —
    /// then published — otherwise. A replayed trace is still validated
    /// against the workload's reference output; disagreement quarantines
    /// the artifact and falls back to the VM, so the suite a binary
    /// computes on is byte-identical with and without `--store`.
    ///
    /// # Panics
    ///
    /// Panics if VM-side workload validation fails, or if a workload
    /// carries `Error`-severity static-analysis lints — both are build
    /// errors, not experiment outcomes.
    #[must_use]
    pub fn load_with_store(scale: Scale, store: Option<&Store>) -> Self {
        Suite::from_workloads(all_workloads(scale), scale, store, Engine::default())
    }

    /// Builds a suite over a caller-chosen workload set, resolved through
    /// the builtin [`WorkloadRegistry`] — any mix of the paper five and
    /// the other registered workloads (`synacor`, `sc`), in the order
    /// given.
    ///
    /// # Errors
    ///
    /// Reports the first name the registry does not know.
    ///
    /// # Panics
    ///
    /// As [`Suite::load_with_store`], on validation or lint failure.
    pub fn load_selected(
        scale: Scale,
        names: &[impl AsRef<str>],
        store: Option<&Store>,
    ) -> Result<Self, String> {
        Suite::load_selected_with(scale, names, store, Engine::default())
    }

    /// [`Suite::load_selected`] with an explicit trace-capture engine
    /// (`--engine decoded|interp`). Both engines produce byte-identical
    /// suites; the choice only changes capture speed.
    ///
    /// # Errors
    ///
    /// Reports the first name the registry does not know.
    ///
    /// # Panics
    ///
    /// As [`Suite::load_with_store`], on validation or lint failure.
    pub fn load_selected_with(
        scale: Scale,
        names: &[impl AsRef<str>],
        store: Option<&Store>,
        engine: Engine,
    ) -> Result<Self, String> {
        let workloads = WorkloadRegistry::builtin().build_many(names, scale)?;
        Ok(Suite::from_workloads(workloads, scale, store, engine))
    }

    /// The shared trace-capture path: every workload — built-in or
    /// generated — goes through the same lint gate, store replay,
    /// quarantine, and validation, traced by the selected engine.
    ///
    /// # Panics
    ///
    /// As [`Suite::load_with_store`].
    #[must_use]
    pub fn from_workloads(
        workloads: Vec<Workload>,
        scale: Scale,
        store: Option<&Store>,
        engine: Engine,
    ) -> Self {
        let scale_tag = format!("{scale:?}").to_ascii_lowercase();
        let entries = workloads
            .into_iter()
            .map(|workload| {
                // Static gate: refuse to trace a program the analyzer can
                // prove malformed. Keeps every bench binary's failure mode
                // a diagnostic listing instead of a mid-run VM fault.
                let report = dee_analyze::analyze(&workload.program);
                assert!(
                    !report.has_errors(),
                    "workload {} rejected by static analysis:\n{}",
                    workload.name,
                    report.render_text(&workload.name)
                );
                let census = dee_analyze::BranchCensus::build(&workload.program);
                let trace = match store {
                    None => workload
                        .validate_with(engine)
                        .unwrap_or_else(|e| panic!("workload validation failed: {e}")),
                    Some(store) => {
                        let key = ArtifactKey::new(
                            &workload.name,
                            &scale_tag,
                            &workload.program.to_listing(),
                            &workload.initial_memory,
                        );
                        let (trace, source) = store
                            .get_or_record(&key, || workload.validate_with(engine))
                            .unwrap_or_else(|e| panic!("workload validation failed: {e}"));
                        // A replayed artifact must both reproduce the
                        // reference output and survive the static/dynamic
                        // cross-check (every record explainable by the
                        // program's branch census). Either failure means
                        // the container was intact but its content has
                        // drifted — quarantine it and re-trace.
                        let stale = source == StoreSource::Disk
                            && (trace.output() != workload.expected_output
                                || census.verify_trace(&trace).is_err());
                        if stale {
                            store.quarantine_key(&key);
                            let trace = workload
                                .validate_with(engine)
                                .unwrap_or_else(|e| panic!("workload validation failed: {e}"));
                            let _ = store.put(&key, &trace);
                            trace
                        } else {
                            trace
                        }
                    }
                };
                BenchEntry { workload, trace }
            })
            .collect();
        Suite { entries, scale }
    }

    /// The characteristic prediction accuracy: harmonic mean of the 2-bit
    /// counter's accuracy over the suite (the paper's §3.1 step 1; it
    /// measured 90.53% on SPECint92).
    #[must_use]
    pub fn characteristic_accuracy(&self) -> f64 {
        let accs: Vec<f64> = self
            .entries
            .iter()
            .map(|e| measure_accuracy(&mut TwoBitCounter::new(), &e.trace).accuracy())
            .collect();
        harmonic_mean(&accs)
    }
}

/// Parses the scale argument shared by the experiment binaries
/// (`tiny|small|medium|large`, default `small`). Flags and their values
/// (`--jobs N`, `--store DIR`, `--workloads LIST`, `--engine E`,
/// `--chunk-records N`, `--max-rss BYTES`) are skipped, so the scale may
/// appear anywhere: `fig5 --store traces tiny --jobs 4`.
#[must_use]
pub fn scale_from_args() -> Scale {
    scale_from(std::env::args().skip(1))
}

fn scale_from<I: Iterator<Item = String>>(args: I) -> Scale {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Value-taking flags: skip the value so a directory named
            // `tiny` never reads as a scale.
            "--jobs" | "--store" | "--workloads" | "--engine" | "--chunk-records" | "--max-rss" => {
                args.next();
            }
            "tiny" => return Scale::Tiny,
            "small" => return Scale::Small,
            "medium" => return Scale::Medium,
            "large" => return Scale::Large,
            _ => {}
        }
    }
    Scale::Small
}

/// Parses the `--store DIR` (or `--store=DIR`) flag shared by the
/// experiment binaries: the trace-artifact store to record to and replay
/// from. `None` when the flag is absent.
///
/// # Panics
///
/// Panics when the flag has no value or the store cannot be opened.
#[must_use]
pub fn store_from_args() -> Option<Store> {
    store_from(std::env::args().skip(1))
}

fn store_from<I: Iterator<Item = String>>(args: I) -> Option<Store> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let dir = if arg == "--store" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--store=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let dir = dir.unwrap_or_else(|| panic!("--store needs a directory"));
        return Some(Store::open(&dir).unwrap_or_else(|e| panic!("--store {dir}: {e}")));
    }
    None
}

/// Parses the `--engine decoded|interp` (or `--engine=E`) flag shared by
/// the experiment binaries: which trace-capture engine the suite uses.
/// Defaults to the pre-decoded fast path; `interp` selects the reference
/// interpreter. Both produce byte-identical suites.
///
/// # Panics
///
/// Panics when the flag has no value or names an unknown engine.
#[must_use]
pub fn engine_from_args() -> Engine {
    engine_from(std::env::args().skip(1))
}

fn engine_from<I: Iterator<Item = String>>(args: I) -> Engine {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value = if arg == "--engine" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--engine=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let value = value.unwrap_or_else(|| panic!("--engine needs `decoded` or `interp`"));
        return value.parse().unwrap_or_else(|e| panic!("--engine: {e}"));
    }
    Engine::default()
}

/// Parses the `--chunk-records N` (or `--chunk-records=N`) flag shared by
/// the experiment binaries: how many records the streaming prepare path
/// pulls per chunk. Defaults to [`dee_vm::DEFAULT_CHUNK_RECORDS`]; the
/// prepared traces — and so every golden — are byte-identical at any
/// chunk size.
///
/// # Panics
///
/// Panics when the flag has no value or the value is not a positive
/// integer.
#[must_use]
pub fn chunk_records_from_args() -> usize {
    chunk_records_from(std::env::args().skip(1))
}

fn chunk_records_from<I: Iterator<Item = String>>(args: I) -> usize {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value = if arg == "--chunk-records" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--chunk-records=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let value = value.unwrap_or_else(|| panic!("--chunk-records needs a record count"));
        let chunk: usize = value.parse().unwrap_or_else(|_| {
            panic!("--chunk-records expects a positive integer, got {value:?}")
        });
        assert!(
            chunk >= 1,
            "--chunk-records expects a positive integer, got 0"
        );
        return chunk;
    }
    DEFAULT_CHUNK_RECORDS
}

/// Parses the `--max-rss BYTES` (or `--max-rss=BYTES`) flag shared by the
/// experiment binaries: a peak-resident-set budget the run must stay
/// under, checked by [`enforce_max_rss`] once the sweep finishes. Accepts
/// a plain byte count or a `K`/`M`/`G` suffix (powers of 1024). `None`
/// when the flag is absent.
///
/// # Panics
///
/// Panics when the flag has no value or the value is malformed.
#[must_use]
pub fn max_rss_from_args() -> Option<u64> {
    max_rss_from(std::env::args().skip(1))
}

fn max_rss_from<I: Iterator<Item = String>>(args: I) -> Option<u64> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value = if arg == "--max-rss" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--max-rss=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let value = value.unwrap_or_else(|| panic!("--max-rss needs a byte budget"));
        return Some(
            parse_byte_size(&value)
                .unwrap_or_else(|| panic!("--max-rss expects BYTES or <N>K|M|G, got {value:?}")),
        );
    }
    None
}

fn parse_byte_size(value: &str) -> Option<u64> {
    let v = value.trim();
    let (digits, shift) = match v.as_bytes().last()? {
        b'k' | b'K' => (&v[..v.len() - 1], 10),
        b'm' | b'M' => (&v[..v.len() - 1], 20),
        b'g' | b'G' => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_shl(shift).filter(|&b| b > 0 || n == 0)
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the proc filesystem is
/// unavailable.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Enforces the `--max-rss` budget at the end of a sweep: prints the
/// measured peak next to the limit on stderr, and fails loudly when the
/// peak exceeds it. A platform without `VmHWM` reporting logs that the
/// guard could not run instead of passing silently.
///
/// # Panics
///
/// Panics when the peak resident set exceeds `limit`.
pub fn enforce_max_rss(limit: Option<u64>) {
    let Some(limit) = limit else { return };
    match peak_rss_bytes() {
        Some(peak) => {
            eprintln!("dee_bench_max_rss: peak_bytes={peak} limit_bytes={limit}");
            assert!(
                peak <= limit,
                "peak RSS {peak} bytes exceeds --max-rss {limit} bytes"
            );
        }
        None => eprintln!("dee_bench_max_rss: VmHWM unavailable; --max-rss not enforced"),
    }
}

/// Parses the `--workloads a,b,c` (or `--workloads=a,b,c`) flag shared by
/// the experiment binaries: which registered workloads a suite covers.
/// Defaults to the paper five so committed goldens are unaffected;
/// `--workloads all` selects every builtin registration.
///
/// # Panics
///
/// Panics when the flag has no value or names an unknown workload.
#[must_use]
pub fn workloads_from_args() -> Vec<String> {
    workloads_from(std::env::args().skip(1))
}

fn workloads_from<I: Iterator<Item = String>>(args: I) -> Vec<String> {
    let registry = WorkloadRegistry::builtin();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let list = if arg == "--workloads" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--workloads=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let list = list.unwrap_or_else(|| panic!("--workloads needs a comma-separated list"));
        if list == "all" {
            return registry.names().iter().map(|n| (*n).to_string()).collect();
        }
        let names: Vec<String> = list
            .split(',')
            .filter(|n| !n.is_empty())
            .map(str::to_string)
            .collect();
        for name in &names {
            assert!(
                registry.contains(name),
                "--workloads: unknown workload `{name}` (known: {})",
                registry.names().join(", ")
            );
        }
        assert!(!names.is_empty(), "--workloads list is empty");
        return names;
    }
    PAPER_WORKLOADS.iter().map(|n| (*n).to_string()).collect()
}

/// A simple fixed-width text table builder for experiment output.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for c in 0..cols {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cells[c], width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Writes the table as CSV under `results/` (creating the directory).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }
}

/// Formats a float with two decimals for table cells.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// The resource sweep used throughout Figure 5.
pub const FIG5_RESOURCES: [u32; 6] = [8, 16, 32, 64, 128, 256];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_loads_and_validates_tiny() {
        let suite = Suite::load(Scale::Tiny);
        assert_eq!(suite.entries.len(), 5);
        let p = suite.characteristic_accuracy();
        assert!((0.5..1.0).contains(&p), "accuracy {p}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["longer".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.905), "90.5%");
    }

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn scale_parsing_tolerates_flags_anywhere() {
        assert_eq!(scale_from(args(&["tiny"])), Scale::Tiny);
        assert_eq!(scale_from(args(&["--jobs", "4", "medium"])), Scale::Medium);
        assert_eq!(
            scale_from(args(&["large", "--store", "traces"])),
            Scale::Large
        );
        // A directory that happens to be named like a scale is a flag
        // value, not a scale.
        assert_eq!(scale_from(args(&["--store", "tiny"])), Scale::Small);
        assert_eq!(scale_from(args(&["--store=tiny"])), Scale::Small);
        assert_eq!(scale_from(args(&[])), Scale::Small);
        assert_eq!(
            scale_from(args(&["--engine", "interp", "medium"])),
            Scale::Medium
        );
    }

    #[test]
    fn engine_parsing_defaults_to_decoded() {
        assert_eq!(engine_from(args(&["tiny"])), Engine::Decoded);
        assert_eq!(engine_from(args(&["--engine", "interp"])), Engine::Interp);
        assert_eq!(engine_from(args(&["--engine=decoded"])), Engine::Decoded);
        assert_eq!(
            engine_from(args(&["tiny", "--jobs", "4", "--engine", "interp"])),
            Engine::Interp
        );
    }

    #[test]
    #[should_panic(expected = "--engine")]
    fn engine_parsing_rejects_unknown_engines() {
        engine_from(args(&["--engine", "warp"]));
    }

    #[test]
    fn suites_identical_across_engines() {
        let a = Suite::load_selected_with(Scale::Tiny, &["xlisp"], None, Engine::Interp)
            .expect("known");
        let b = Suite::load_selected_with(Scale::Tiny, &["xlisp"], None, Engine::Decoded)
            .expect("known");
        assert_eq!(a.entries[0].trace.records(), b.entries[0].trace.records());
        assert_eq!(a.entries[0].trace.output(), b.entries[0].trace.output());
    }

    #[test]
    fn chunk_records_parsing_defaults_and_forms() {
        assert_eq!(chunk_records_from(args(&["tiny"])), DEFAULT_CHUNK_RECORDS);
        assert_eq!(chunk_records_from(args(&["--chunk-records", "4093"])), 4093);
        assert_eq!(chunk_records_from(args(&["--chunk-records=7"])), 7);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn chunk_records_parsing_rejects_zero() {
        chunk_records_from(args(&["--chunk-records", "0"]));
    }

    #[test]
    fn max_rss_parsing_handles_suffixes() {
        assert_eq!(max_rss_from(args(&["tiny"])), None);
        assert_eq!(max_rss_from(args(&["--max-rss", "1048576"])), Some(1 << 20));
        assert_eq!(max_rss_from(args(&["--max-rss=512K"])), Some(512 << 10));
        assert_eq!(max_rss_from(args(&["--max-rss", "64M"])), Some(64 << 20));
        assert_eq!(max_rss_from(args(&["--max-rss", "2G"])), Some(2 << 30));
    }

    #[test]
    #[should_panic(expected = "--max-rss expects")]
    fn max_rss_parsing_rejects_garbage() {
        max_rss_from(args(&["--max-rss", "lots"]));
    }

    #[test]
    fn peak_rss_reads_and_guard_passes_under_a_huge_limit() {
        // VmHWM is Linux-specific; where present it must be sane, and the
        // guard must accept a limit far above any real peak.
        if let Some(peak) = peak_rss_bytes() {
            assert!(peak > 0);
            enforce_max_rss(Some(u64::MAX));
        }
        enforce_max_rss(None);
    }

    #[test]
    fn chunked_prepare_is_byte_identical_at_any_chunk_size() {
        let suite = Suite::load_selected(Scale::Tiny, &["compress"], None).expect("known");
        let entry = &suite.entries[0];
        let whole = entry.prepare();
        for chunk in [1usize, 4093, DEFAULT_CHUNK_RECORDS] {
            let streamed = entry.prepare_chunked(chunk);
            assert_eq!(streamed.len(), whole.len());
            assert_eq!(streamed.output(), whole.output());
            assert_eq!(streamed.num_paths(), whole.num_paths());
            assert_eq!(streamed.num_branches(), whole.num_branches());
            assert_eq!(streamed.num_mispredicts(), whole.num_mispredicts());
            assert!((streamed.accuracy() - whole.accuracy()).abs() < 1e-12);
        }
    }

    #[test]
    fn workloads_parsing_defaults_to_the_paper_five() {
        assert_eq!(workloads_from(args(&["tiny"])), PAPER_WORKLOADS.to_vec());
        assert_eq!(
            workloads_from(args(&["--workloads", "synacor,cc1"])),
            vec!["synacor", "cc1"]
        );
        assert_eq!(workloads_from(args(&["--workloads=xlisp"])), vec!["xlisp"]);
        let all = workloads_from(args(&["--workloads", "all"]));
        assert!(all.contains(&"synacor".to_string()));
        assert!(all.len() > PAPER_WORKLOADS.len());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn workloads_parsing_rejects_unknown_names() {
        workloads_from(args(&["--workloads", "gcc"]));
    }

    #[test]
    fn selected_suite_builds_registry_workloads() {
        let suite =
            Suite::load_selected(Scale::Tiny, &["synacor", "compress"], None).expect("known names");
        assert_eq!(suite.entries.len(), 2);
        assert_eq!(suite.entries[0].workload.name, "synacor");
        assert!(Suite::load_selected(Scale::Tiny, &["nope"], None).is_err());
    }

    #[test]
    fn store_parsing_finds_flag_or_returns_none() {
        assert!(store_from(args(&["tiny", "--jobs", "4"])).is_none());
        let dir = std::env::temp_dir().join(format!("dee_bench_storeflag_{}", std::process::id()));
        let store =
            store_from(args(&["tiny", "--store", dir.to_str().unwrap()])).expect("flag parsed");
        assert_eq!(store.root(), dir.as_path());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn suite_with_store_replays_identically_and_quarantines_wrong_content() {
        let dir =
            std::env::temp_dir().join(format!("dee_bench_suite_store_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let fresh = Suite::load(Scale::Tiny);
        let recorded = Suite::load_with_store(Scale::Tiny, Some(&store));
        let replayed = Suite::load_with_store(Scale::Tiny, Some(&store));
        use std::sync::atomic::Ordering;
        assert_eq!(store.stats().writes.load(Ordering::Relaxed), 5);
        assert_eq!(store.stats().disk_hits.load(Ordering::Relaxed), 5);
        for ((a, b), c) in fresh
            .entries
            .iter()
            .zip(&recorded.entries)
            .zip(&replayed.entries)
        {
            assert_eq!(a.trace.records(), b.trace.records());
            assert_eq!(a.trace.records(), c.trace.records());
            assert_eq!(a.trace.output(), c.trace.output());
            assert_eq!(a.trace.output_checksum(), c.trace.output_checksum());
        }
        // Publish a *valid* container holding the wrong trace under
        // xlisp's key: the checksums pass, but the reference-output
        // check must quarantine it and fall back to the VM.
        let xlisp = &replayed.entries[4].workload;
        assert_eq!(xlisp.name, "xlisp");
        let key = ArtifactKey::new(
            &xlisp.name,
            "tiny",
            &xlisp.program.to_listing(),
            &xlisp.initial_memory,
        );
        let wrong = &replayed.entries[0].trace;
        store.put(&key, wrong).unwrap();
        let healed = Suite::load_with_store(Scale::Tiny, Some(&store));
        assert_eq!(
            healed.entries[4].trace.output(),
            xlisp.expected_output.as_slice()
        );
        assert_eq!(store.stats().quarantined.load(Ordering::Relaxed), 1);
        // The heal republished good content: one more pass replays clean.
        let again = Suite::load_with_store(Scale::Tiny, Some(&store));
        assert_eq!(
            again.entries[4].trace.output(),
            xlisp.expected_output.as_slice()
        );
        assert_eq!(store.stats().quarantined.load(Ordering::Relaxed), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
