//! Minimal SVG line-chart emitter for regenerating the paper's Figure 5
//! panels (speedup vs branch-path resources, log-2 x axis) without any
//! plotting dependency.

use std::fmt::Write as _;

/// One curve in a panel.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (the model name).
    pub name: String,
    /// `(resources, speedup)` points.
    pub points: Vec<(f64, f64)>,
}

/// One plot panel (one benchmark, or the harmonic mean).
#[derive(Clone, Debug)]
pub struct Panel {
    /// Panel title (benchmark name).
    pub title: String,
    /// Curves, drawn in order.
    pub series: Vec<Series>,
    /// Oracle speedup shown in the caption, as in the paper.
    pub oracle: Option<f64>,
}

const PANEL_W: f64 = 420.0;
const PANEL_H: f64 = 300.0;
const MARGIN_L: f64 = 52.0;
const MARGIN_R: f64 = 14.0;
const MARGIN_T: f64 = 34.0;
const MARGIN_B: f64 = 40.0;
const COLORS: [&str; 8] = [
    "#888888", "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#000000", "#8c564b",
];

fn nice_ceiling(value: f64) -> f64 {
    if value <= 0.0 {
        return 1.0;
    }
    let magnitude = 10f64.powf(value.log10().floor());
    for mult in [1.0, 2.0, 2.5, 5.0, 10.0] {
        if magnitude * mult >= value {
            return magnitude * mult;
        }
    }
    magnitude * 10.0
}

/// Renders a grid of panels (2 columns) as a standalone SVG document.
///
/// The x axis is log-2 over `x_ticks` (the paper's 8..256 sweep); each
/// panel gets its own y scale, like Figure 5.
#[must_use]
pub fn render_panels(panels: &[Panel], x_ticks: &[u32]) -> String {
    assert!(!panels.is_empty() && !x_ticks.is_empty(), "nothing to plot");
    let cols = 2usize;
    let rows = panels.len().div_ceil(cols);
    let width = PANEL_W * cols as f64;
    let height = PANEL_H * rows as f64 + 30.0;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    let x_min = f64::from(*x_ticks.first().expect("ticks")).log2();
    let x_max = f64::from(*x_ticks.last().expect("ticks")).log2();

    for (idx, panel) in panels.iter().enumerate() {
        let ox = PANEL_W * (idx % cols) as f64;
        let oy = PANEL_H * (idx / cols) as f64;
        let plot_w = PANEL_W - MARGIN_L - MARGIN_R;
        let plot_h = PANEL_H - MARGIN_T - MARGIN_B;
        let y_peak = panel
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .fold(1.0f64, f64::max);
        let y_max = nice_ceiling(y_peak);

        let map_x = |x: f64| ox + MARGIN_L + (x.log2() - x_min) / (x_max - x_min) * plot_w;
        let map_y = |y: f64| oy + MARGIN_T + (1.0 - y / y_max) * plot_h;

        // Frame and title.
        let _ = writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##,
            ox + MARGIN_L,
            oy + MARGIN_T
        );
        let caption = match panel.oracle {
            Some(oracle) => format!("{}  (oracle: {:.2}x)", panel.title, oracle),
            None => panel.title.clone(),
        };
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-weight="bold">{}</text>"#,
            ox + MARGIN_L,
            oy + MARGIN_T - 10.0,
            caption
        );

        // X ticks.
        for &tick in x_ticks {
            let x = map_x(f64::from(tick));
            let y0 = oy + MARGIN_T + plot_h;
            let _ = writeln!(
                svg,
                r##"<line x1="{x:.1}" y1="{y0:.1}" x2="{x:.1}" y2="{:.1}" stroke="#333"/>"##,
                y0 + 4.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{tick}</text>"#,
                y0 + 16.0
            );
        }
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">resources (branch paths)</text>"#,
            ox + MARGIN_L + plot_w / 2.0,
            oy + PANEL_H - 8.0
        );

        // Y ticks: 0, 1/4, 1/2, 3/4, max.
        for k in 0..=4 {
            let value = y_max * f64::from(k) / 4.0;
            let y = map_y(value);
            let _ = writeln!(
                svg,
                r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#333"/>"##,
                ox + MARGIN_L - 4.0,
                ox + MARGIN_L
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{value:.1}</text>"#,
                ox + MARGIN_L - 7.0,
                y + 3.5
            );
        }

        // Curves.
        for (series_idx, series) in panel.series.iter().enumerate() {
            let color = COLORS[series_idx % COLORS.len()];
            let points: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", map_x(x), map_y(y.min(y_max))))
                .collect();
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.7"/>"#,
                points.join(" ")
            );
            // Legend (top-left inside the frame).
            let lx = ox + MARGIN_L + 8.0;
            let ly = oy + MARGIN_T + 14.0 + 13.0 * series_idx as f64;
            let _ = writeln!(
                svg,
                r#"<line x1="{lx:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="2"/>"#,
                ly - 3.5,
                lx + 16.0,
                ly - 3.5
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{ly:.1}">{}</text>"#,
                lx + 20.0,
                series.name
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Writes an SVG document under `results/`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_svg(name: &str, svg: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, svg)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_panel() -> Panel {
        Panel {
            title: "sample".into(),
            series: vec![
                Series {
                    name: "SP".into(),
                    points: vec![(8.0, 2.0), (256.0, 2.1)],
                },
                Series {
                    name: "DEE-CD-MF".into(),
                    points: vec![(8.0, 3.0), (256.0, 9.0)],
                },
            ],
            oracle: Some(42.0),
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_panels(&[sample_panel()], &[8, 16, 256]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("oracle: 42.00x"));
        assert!(svg.contains("DEE-CD-MF"));
    }

    #[test]
    fn panels_tile_in_two_columns() {
        let panels = vec![sample_panel(); 6];
        let svg = render_panels(&panels, &[8, 256]);
        assert_eq!(svg.matches("font-weight=\"bold\"").count(), 6);
    }

    #[test]
    fn nice_ceiling_rounds_up() {
        assert_eq!(nice_ceiling(3.4), 5.0);
        assert_eq!(nice_ceiling(9.7), 10.0);
        assert_eq!(nice_ceiling(17.0), 20.0);
        assert_eq!(nice_ceiling(0.0), 1.0);
        assert_eq!(nice_ceiling(100.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_input_rejected() {
        let _ = render_panels(&[], &[8]);
    }
}
