//! A hand-rolled, std-only work-queue thread pool with deterministic
//! result collection.
//!
//! The workspace is offline (zero external crates), so this is the repo's
//! rayon substitute for the sweep binaries: jobs carry an index, workers
//! pull the next index from a shared injector (an atomic counter over the
//! job vector), and results are reassembled in index order. Because every
//! cell of a sweep is a pure function of its inputs and the output order
//! is fixed by the index, parallel output is **byte-identical** to serial
//! output for any `--jobs N` (see DESIGN.md §8 for the determinism
//! argument).
//!
//! A panicking job is caught with [`std::panic::catch_unwind`] and
//! surfaces as that cell's [`JobError`] without poisoning the pool: the
//! worker that caught it keeps pulling jobs, and every other cell still
//! completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A job panicked; the payload message stands in for the cell's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// Index of the job that panicked.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `tasks` on up to `jobs` worker threads and returns the results in
/// task order.
///
/// Workers claim indices from a shared atomic injector, so cells are
/// load-balanced dynamically; the returned vector is indexed exactly like
/// `tasks`, independent of which worker ran which cell or in what order
/// cells finished. A panic in one task is returned as that slot's
/// [`JobError`]; the remaining tasks still run.
///
/// `jobs == 1` (or a single task) degenerates to serial execution on one
/// worker thread. Scoped threads are used, so tasks may borrow from the
/// caller's stack.
pub fn run<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let injector: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, JobError>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = jobs.max(1).min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let task = injector[index]
                    .lock()
                    .expect("injector slot poisoned")
                    .take()
                    .expect("job claimed twice");
                let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(|payload| JobError {
                    index,
                    message: panic_message(payload),
                });
                *slots[index].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("job result missing")
        })
        .collect()
}

/// Runs a named sweep through the pool, printing the
/// `dee_bench_pool_<name>` timing line, and unwraps every cell.
///
/// This is the entry point the sweep binaries use: a cell panic is a build
/// error there (workloads are validated before simulation), so it is
/// re-raised after all cells finish. The timing line goes to stderr to
/// keep stdout byte-deterministic.
///
/// # Panics
///
/// Re-raises the first cell panic, annotated with its index.
pub fn run_sweep<T, F>(name: &str, jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let cells = tasks.len();
    let start = Instant::now();
    let results = run(jobs, tasks);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!("dee_bench_pool_{name}: cells={cells} jobs={jobs} wall_ms={wall_ms:.1}");
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Parses the `--jobs N` (or `--jobs=N`) flag shared by the sweep
/// binaries, defaulting to [`std::thread::available_parallelism`].
///
/// The flag may appear anywhere after the binary name; the scale argument
/// stays positional (see [`crate::scale_from_args`]).
///
/// # Panics
///
/// Panics on a malformed or missing job count — these binaries are
/// developer tools, and a loud failure beats silently running serial.
#[must_use]
pub fn jobs_from_args() -> usize {
    jobs_from(std::env::args().skip(1))
}

fn jobs_from<I: Iterator<Item = String>>(args: I) -> usize {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let value = if arg == "--jobs" {
            args.next()
        } else if let Some(rest) = arg.strip_prefix("--jobs=") {
            Some(rest.to_string())
        } else {
            continue;
        };
        let value = value.unwrap_or_else(|| panic!("--jobs needs a count"));
        let jobs: usize = value
            .parse()
            .unwrap_or_else(|_| panic!("--jobs expects a positive integer, got {value:?}"));
        assert!(jobs >= 1, "--jobs expects a positive integer, got 0");
        return jobs;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let tasks: Vec<_> = (0..64).map(|i| move || i * 2).collect();
        let got = run(8, tasks);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial: Vec<_> = run(1, (0..40).map(|i| move || i * i).collect::<Vec<_>>());
        let parallel: Vec<_> = run(7, (0..40).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panic_is_isolated_to_its_cell() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 4, "cell four exploded");
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let got = run(3, tasks);
        for (i, r) in got.iter().enumerate() {
            if i == 4 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 4);
                assert!(err.message.contains("cell four exploded"), "{err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn tasks_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..100).collect();
        let tasks: Vec<_> = data
            .chunks(7)
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let total: u64 = run(4, tasks).into_iter().map(Result::unwrap).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn empty_task_list_is_fine() {
        let got: Vec<Result<u32, _>> = run(4, Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn jobs_flag_forms() {
        let parse = |v: &[&str]| jobs_from(v.iter().map(|s| (*s).to_string()));
        assert_eq!(parse(&["tiny", "--jobs", "3"]), 3);
        assert_eq!(parse(&["--jobs=5", "medium"]), 5);
        assert!(parse(&["small"]) >= 1);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn jobs_flag_rejects_garbage() {
        let _ = jobs_from(["--jobs", "many"].iter().map(|s| (*s).to_string()));
    }

    #[test]
    #[should_panic(expected = "got 0")]
    fn jobs_flag_rejects_zero() {
        let _ = jobs_from(["--jobs", "0"].iter().map(|s| (*s).to_string()));
    }
}
