//! Memory-system ablation — the third item of the paper's future work
//! (§1.2): evaluate the DEE models above a finite data cache instead of
//! the single-cycle ideal memory.
//!
//! Sweeps data-cache configurations (perfect 1-cycle, a classic 8 KiB
//! 2-way cache, and a small 1 KiB cache, with a 10-cycle miss penalty) and
//! reports per-benchmark hit rates plus harmonic-mean speedups of SP,
//! SP-CD-MF and DEE-CD-MF at E_T = 100. Speedups remain relative to the
//! *equally slowed* sequential machine, so they isolate the models'
//! latency tolerance.
//!
//! Usage: `ablation_memory [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use std::sync::Arc;

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pct, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};
use dee_mem::{annotate_latencies, CacheConfig, MemoryHierarchy};

const MISS_PENALTY: u32 = 10;

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("ablation_memory"));
    }
    let p = suite.characteristic_accuracy();
    let et = 100;

    let configs: [(&str, Option<CacheConfig>); 3] = [
        ("perfect (1 cycle)", None),
        (
            "8KiB 2-way x8w",
            Some(CacheConfig {
                sets: 128,
                ways: 2,
                line_words: 8,
            }),
        ),
        (
            "1KiB 1-way x4w",
            Some(CacheConfig {
                sets: 64,
                ways: 1,
                line_words: 4,
            }),
        ),
    ];

    println!("Data-cache hit rates (miss penalty {MISS_PENALTY} cycles):\n");
    // One cell per benchmark: replay both finite caches over the trace.
    let rate_cells = pool::run_sweep(
        "ablation_memory_rates",
        jobs,
        suite
            .entries
            .iter()
            .map(|entry| {
                let finite: Vec<CacheConfig> = configs
                    .iter()
                    .skip(1)
                    .map(|(_, c)| c.expect("cache config"))
                    .collect();
                move || {
                    let mut rates = Vec::new();
                    let mut refs = 0;
                    for config in finite {
                        let mut hierarchy = MemoryHierarchy::new(config, 1, MISS_PENALTY);
                        let _ = annotate_latencies(&entry.trace, &mut hierarchy);
                        rates.push(hierarchy.stats().hit_rate());
                        refs = hierarchy.stats().accesses;
                    }
                    (rates, refs)
                }
            })
            .collect(),
    );
    let mut rates = TextTable::new(&["benchmark", "8KiB 2-way", "1KiB 1-way", "mem refs"]);
    for (entry, (hit_rates, refs)) in suite.entries.iter().zip(&rate_cells) {
        let mut cells = vec![entry.workload.name.to_string()];
        cells.extend(hit_rates.iter().map(|&r| pct(r)));
        cells.push(refs.to_string());
        rates.row(cells);
    }
    println!("{}", rates.render());

    println!("Harmonic-mean speedups at E_T = {et} (p = {}):\n", f2(p));
    // Each benchmark is prepared once; a (memory system, benchmark) cell
    // clones the shared base (a cheap borrow copy), attaches that cache's
    // measured latencies, and runs all four models on it.
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "ablation_memory_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );
    let models = [Model::Sp, Model::SpCdMf, Model::DeeCdMf, Model::Oracle];
    let num_b = prepared.len();
    let mut grid: Vec<(usize, usize)> = Vec::new();
    for ci in 0..configs.len() {
        for b in 0..num_b {
            grid.push((ci, b));
        }
    }
    let flat = pool::run_sweep(
        "ablation_memory",
        jobs,
        grid.iter()
            .map(|&(ci, b)| {
                let cache = configs[ci].1;
                let entry = &suite.entries[b];
                let base = Arc::clone(&prepared[b]);
                move || {
                    let mut prepared = (*base).clone();
                    if let Some(config) = cache {
                        let mut hierarchy = MemoryHierarchy::new(config, 1, MISS_PENALTY);
                        let lats = annotate_latencies(&entry.trace, &mut hierarchy);
                        prepared = prepared.with_mem_latencies(lats);
                    }
                    models.map(|model| {
                        simulate(&prepared, &SimConfig::new(model, et).with_p(p)).speedup()
                    })
                }
            })
            .collect(),
    );
    let mut t = TextTable::new(&["memory system", "SP", "SP-CD-MF", "DEE-CD-MF", "Oracle"]);
    for (ci, (name, _)) in configs.iter().enumerate() {
        let group = &flat[ci * num_b..(ci + 1) * num_b];
        let mut cells = vec![(*name).to_string()];
        for mi in 0..models.len() {
            let values: Vec<f64> = group.iter().map(|c| c[mi]).collect();
            cells.push(f2(harmonic_mean(&values)));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    let path = t
        .write_csv(&format!("ablation_memory_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    enforce_max_rss(max_rss);
}
