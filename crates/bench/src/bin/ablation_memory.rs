//! Memory-system ablation — the third item of the paper's future work
//! (§1.2): evaluate the DEE models above a finite data cache instead of
//! the single-cycle ideal memory.
//!
//! Sweeps data-cache configurations (perfect 1-cycle, a classic 8 KiB
//! 2-way cache, and a small 1 KiB cache, with a 10-cycle miss penalty) and
//! reports per-benchmark hit rates plus harmonic-mean speedups of SP,
//! SP-CD-MF and DEE-CD-MF at E_T = 100. Speedups remain relative to the
//! *equally slowed* sequential machine, so they isolate the models'
//! latency tolerance.
//!
//! Usage: `ablation_memory [tiny|small|medium|large]`.

use dee_bench::{f2, pct, scale_from_args, Suite, TextTable};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};
use dee_mem::{annotate_latencies, CacheConfig, MemoryHierarchy};

const MISS_PENALTY: u32 = 10;

fn main() {
    let scale = scale_from_args();
    eprintln!("loading suite at {scale:?}...");
    let suite = Suite::load(scale);
    let p = suite.characteristic_accuracy();
    let et = 100;

    let configs: [(&str, Option<CacheConfig>); 3] = [
        ("perfect (1 cycle)", None),
        (
            "8KiB 2-way x8w",
            Some(CacheConfig {
                sets: 128,
                ways: 2,
                line_words: 8,
            }),
        ),
        (
            "1KiB 1-way x4w",
            Some(CacheConfig {
                sets: 64,
                ways: 1,
                line_words: 4,
            }),
        ),
    ];

    println!("Data-cache hit rates (miss penalty {MISS_PENALTY} cycles):\n");
    let mut rates = TextTable::new(&["benchmark", "8KiB 2-way", "1KiB 1-way", "mem refs"]);
    for entry in &suite.entries {
        let mut cells = vec![entry.workload.name.to_string()];
        let mut refs = 0;
        for (_, config) in configs.iter().skip(1) {
            let mut hierarchy =
                MemoryHierarchy::new(config.expect("cache config"), 1, MISS_PENALTY);
            let _ = annotate_latencies(&entry.trace, &mut hierarchy);
            cells.push(pct(hierarchy.stats().hit_rate()));
            refs = hierarchy.stats().accesses;
        }
        cells.push(refs.to_string());
        rates.row(cells);
    }
    println!("{}", rates.render());

    println!("Harmonic-mean speedups at E_T = {et} (p = {}):\n", f2(p));
    let mut t = TextTable::new(&["memory system", "SP", "SP-CD-MF", "DEE-CD-MF", "Oracle"]);
    for (name, cache) in configs {
        let mut cells = vec![name.to_string()];
        for model in [Model::Sp, Model::SpCdMf, Model::DeeCdMf, Model::Oracle] {
            let values: Vec<f64> = suite
                .entries
                .iter()
                .map(|entry| {
                    let mut prepared = entry.prepare();
                    if let Some(config) = cache {
                        let mut hierarchy = MemoryHierarchy::new(config, 1, MISS_PENALTY);
                        let lats = annotate_latencies(&entry.trace, &mut hierarchy);
                        prepared = prepared.with_mem_latencies(lats);
                    }
                    simulate(&prepared, &SimConfig::new(model, et).with_p(p)).speedup()
                })
                .collect();
            cells.push(f2(harmonic_mean(&values)));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    let path = t
        .write_csv(&format!("ablation_memory_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
}
