//! Workload-space sweep: speedup vs *measured* predictor accuracy over a
//! seeded grid of generated programs.
//!
//! The paper evaluates DEE where its five benchmarks happen to sit — a
//! measured 2-bit-counter accuracy band of roughly 85–95% — which is also
//! where the scheme's advantage over single-path speculation is claimed
//! to peak. This binary scans the *predictability axis itself*: a grid of
//! `dee-gen` programs whose `pred` knob steps from coin-flip branches to
//! fully determined ones (measured accuracy ≈ 70–99%, extending the
//! paper's band on both sides), with every other knob held fixed. For
//! each grid point it measures the real 2-bit-counter accuracy on the
//! generated trace, then simulates SP, EE, DEE-CD-MF, and the oracle at
//! `E_T = 32` — the DEE tree shaped by that point's own measured
//! accuracy, exactly as the paper shapes its trees from the suite's
//! characteristic accuracy.
//!
//! Every CSV row echoes the full `GenSpec` knob columns plus the seed, so
//! any row is regenerable from the file alone (`dee gen <knobs> --seed N`
//! reproduces the program). Output is byte-identical for any `--jobs`;
//! `results/genspace_tiny.csv` is a committed golden.
//!
//! Usage: `genspace [tiny|small|medium|large] [--jobs N] [--store DIR] [--engine decoded|interp]`.

use dee_bench::{engine_from_args, f2, pct, pool, scale_from_args, store_from_args, TextTable};
use dee_gen::{generate_with, GenSpec};
use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee_store::{ArtifactKey, StoreSource};
use dee_workloads::Scale;

/// The predictability-knob grid: pred=0 is a coin flip per branch site,
/// pred=1 fully determined. Dense at the top where the paper lives.
const PREDS: [f64; 8] = [0.0, 0.15, 0.30, 0.45, 0.60, 0.75, 0.90, 1.0];

/// Seeds per grid point: enough to expose stream variance without
/// drowning the table.
const SEEDS: [u64; 2] = [1, 2];

/// Branch-path resources for the model comparison.
const ET: u32 = 32;

/// The models compared at each point.
const MODELS: [Model; 4] = [Model::Sp, Model::Ee, Model::DeeCdMf, Model::Oracle];

/// Outer-loop trip count per scale — the dynamic-length dial.
fn iters(scale: Scale) -> u32 {
    match scale {
        Scale::Tiny => 48,
        Scale::Small => 256,
        Scale::Medium => 1024,
        Scale::Large => 4096,
    }
}

/// The spec at one grid point: only `pred` moves across the grid.
fn spec_at(pred: f64, scale: Scale) -> GenSpec {
    GenSpec {
        pred,
        spread: 0.02,
        depth: 2,
        calls: 0.2,
        jr: 0.1,
        alias: 0.5,
        blocks: 12,
        iters: iters(scale),
    }
}

struct Cell {
    spec: GenSpec,
    seed: u64,
    name: String,
    accuracy: f64,
    /// Speedups in `MODELS` order.
    speedups: Vec<f64>,
}

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let store = store_from_args();
    let engine = engine_from_args();
    let scale_tag = format!("{scale:?}").to_ascii_lowercase();

    let points: Vec<(f64, u64)> = PREDS
        .iter()
        .flat_map(|&pred| SEEDS.iter().map(move |&seed| (pred, seed)))
        .collect();
    eprintln!(
        "generating and simulating {} grid points at {scale:?}...",
        points.len()
    );

    let store_ref = store.as_ref();
    let cells: Vec<Cell> = pool::run_sweep(
        "genspace",
        jobs,
        points
            .iter()
            .map(|&(pred, seed)| {
                let scale_tag = scale_tag.clone();
                move || {
                    let spec = spec_at(pred, scale);
                    let g = generate_with(&spec, seed, engine)
                        .unwrap_or_else(|e| panic!("pred={pred} seed={seed}: {e}"));
                    // Same record-once/replay-many contract as the suite:
                    // the artifact key binds name, scale tag, listing, and
                    // memory image, so a knob change can never replay a
                    // stale trace.
                    let trace = match store_ref {
                        None => g.trace,
                        Some(store) => {
                            let key = ArtifactKey::new(
                                g.workload.name.as_str(),
                                &scale_tag,
                                &g.workload.program.to_listing(),
                                &g.workload.initial_memory,
                            );
                            let (trace, source) = store
                                .get_or_record(&key, || Ok::<_, String>(g.trace.clone()))
                                .unwrap_or_else(|e| panic!("{}: {e}", g.workload.name));
                            if source == StoreSource::Disk
                                && trace.output() != g.workload.expected_output
                            {
                                store.quarantine_key(&key);
                                let _ = store.put(&key, &g.trace);
                                g.trace
                            } else {
                                trace
                            }
                        }
                    };
                    let prepared = PreparedTrace::new(&g.workload.program, &trace);
                    let accuracy = prepared.accuracy();
                    // The static-tree builder requires p in [0.5, 1); at
                    // the coin-flip end of the grid the measured accuracy
                    // can brush 0.5, and at the top it can brush 1.
                    let shape_p = accuracy.clamp(0.5, 0.9999);
                    let speedups = MODELS
                        .iter()
                        .map(|&model| {
                            simulate(&prepared, &SimConfig::new(model, ET).with_p(shape_p))
                                .speedup()
                        })
                        .collect();
                    Cell {
                        spec,
                        seed,
                        name: g.workload.name,
                        accuracy,
                        speedups,
                    }
                }
            })
            .collect(),
    );
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("genspace"));
    }

    let mut header = vec!["name", "seed"];
    header.extend(GenSpec::csv_columns());
    header.extend(["accuracy", "model", "et", "speedup"]);
    let mut csv = TextTable::new(&header);
    for cell in &cells {
        for (model, speedup) in MODELS.iter().zip(&cell.speedups) {
            let mut row = vec![cell.name.clone(), cell.seed.to_string()];
            row.extend(cell.spec.csv_cells());
            row.extend([
                format!("{:.6}", cell.accuracy),
                model.name().to_string(),
                ET.to_string(),
                format!("{speedup:.4}"),
            ]);
            csv.row(row);
        }
    }

    println!(
        "Workload-space sweep at {scale:?}: E_T = {ET}, {} seeds per pred\n",
        SEEDS.len()
    );
    let mut table = TextTable::new(&[
        "pred",
        "seed",
        "accuracy",
        "SP",
        "EE",
        "DEE-CD-MF",
        "Oracle",
        "DEE/SP",
    ]);
    for cell in &cells {
        table.row(vec![
            format!("{}", cell.spec.pred),
            cell.seed.to_string(),
            pct(cell.accuracy),
            f2(cell.speedups[0]),
            f2(cell.speedups[1]),
            f2(cell.speedups[2]),
            f2(cell.speedups[3]),
            f2(cell.speedups[2] / cell.speedups[0]),
        ]);
    }
    println!("{}", table.render());

    // The axis check: mean measured accuracy per pred step, which must
    // climb monotonically for the knob to be the axis it claims to be.
    println!("Measured 2-bit accuracy along the pred knob (mean over seeds):");
    let mut axis = TextTable::new(&["pred", "accuracy", "DEE/SP advantage"]);
    for &pred in &PREDS {
        let at: Vec<&Cell> = cells.iter().filter(|c| c.spec.pred == pred).collect();
        let mean = at.iter().map(|c| c.accuracy).sum::<f64>() / at.len() as f64;
        let advantage = at
            .iter()
            .map(|c| c.speedups[2] / c.speedups[0])
            .sum::<f64>()
            / at.len() as f64;
        axis.row(vec![format!("{pred}"), pct(mean), f2(advantage)]);
    }
    println!("{}", axis.render());

    let path = csv
        .write_csv(&format!("genspace_{scale_tag}.csv"))
        .expect("csv");
    println!("wrote {}", path.display());
}
