//! Prints dynamic statistics for every workload at a given scale:
//! trace length, branch density, taken rate, mean branch-path length, and
//! 2-bit-counter prediction accuracy (the paper's characteristic `p`).
//!
//! Usage: `workload_stats [tiny|small|medium|large] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--max-rss BYTES]`
//! (default: small).

use dee_bench::{
    enforce_max_rss, engine_from_args, max_rss_from_args, scale_from_args, store_from_args,
    workloads_from_args, Suite,
};
use dee_predict::{measure_accuracy, TwoBitCounter};

fn main() {
    let scale = scale_from_args();
    let max_rss = max_rss_from_args();
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("workload_stats"));
    }
    println!(
        "{:<10} {:>12} {:>10} {:>8} {:>10} {:>8}",
        "workload", "dyn instrs", "branches", "taken%", "path len", "2bc acc%"
    );
    let mut acc_sum_recip = 0.0;
    let mut count = 0.0;
    for entry in &suite.entries {
        let (w, trace) = (&entry.workload, &entry.trace);
        let mut predictor = TwoBitCounter::new();
        let report = measure_accuracy(&mut predictor, trace);
        let acc = report.accuracy();
        acc_sum_recip += 1.0 / acc;
        count += 1.0;
        println!(
            "{:<10} {:>12} {:>10} {:>7.1}% {:>10.2} {:>7.2}%",
            w.name,
            trace.len(),
            trace.num_cond_branches(),
            trace.taken_rate().unwrap_or(0.0) * 100.0,
            trace.mean_path_len(),
            acc * 100.0,
        );
    }
    println!(
        "harmonic-mean accuracy: {:.2}%",
        100.0 * count / acc_sum_recip
    );
    enforce_max_rss(max_rss);
}
