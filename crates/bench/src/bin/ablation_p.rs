//! Ablation: how the DEE tree shape and the model speedups depend on the
//! characteristic prediction accuracy `p`.
//!
//! Theory (§2): "DEE becomes the same as SP as the branch prediction
//! accuracy approaches 1, and DEE becomes the same as eager execution as p
//! approaches 0.5, for finite resources." The first table shows the static
//! tree dimensions across `p` at E_T = 100: the main line lengthens and
//! the DEE region shrinks (to empty) as p → 1, and the tree flattens
//! toward the eager shape as p → 0.5.
//!
//! The second table is a design-sensitivity experiment the paper's
//! heuristic motivates: simulate DEE-CD-MF with *assumed* tree accuracies
//! that differ from the trace's measured accuracy, showing how mis-sizing
//! the static tree costs performance.
//!
//! Usage: `ablation_p [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use std::sync::Arc;

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_core::{SpecTree, StaticTree, Strategy, TreeParams};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};

fn main() {
    let et = 100;
    println!("Static DEE tree shape vs characteristic accuracy (E_T = {et})\n");
    let mut shape = TextTable::new(&["p", "l (main line)", "h_DEE", "DEE paths", "depth vs EE/SP"]);
    for p in [0.55, 0.60, 0.70, 0.80, 0.90, 0.95, 0.97, 0.99] {
        let tree = StaticTree::build(TreeParams { p, et });
        let greedy = SpecTree::build(Strategy::Disjoint, p, et);
        let ee = SpecTree::build(Strategy::Eager, p, et);
        let shape_note = if tree.is_single_path() {
            "= SP chain".to_string()
        } else if greedy.depth() <= ee.depth() + 1 {
            "~ EE tree".to_string()
        } else {
            format!("depth {}", greedy.depth())
        };
        shape.row(vec![
            f2(p),
            tree.mainline_len().to_string(),
            tree.h_dee().to_string(),
            tree.dee_region_paths().to_string(),
            shape_note,
        ]);
    }
    println!("{}", shape.render());

    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("ablation_p"));
    }
    let measured = suite.characteristic_accuracy();
    println!(
        "DEE-CD-MF sensitivity to the assumed tree accuracy (measured p = {}):\n",
        f2(measured)
    );

    // The serial version re-prepared every trace once per assumed p;
    // preparation is p-independent, so hoist it and share per workload.
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "ablation_p_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );
    let assumed_ps = [0.60, 0.75, measured, 0.95, 0.99];
    let num_b = prepared.len();
    let mut cells: Vec<(f64, usize)> = Vec::new();
    for &assumed in &assumed_ps {
        for b in 0..num_b {
            cells.push((assumed, b));
        }
    }
    let flat = pool::run_sweep(
        "ablation_p",
        jobs,
        cells
            .iter()
            .map(|&(assumed, b)| {
                let prepared = Arc::clone(&prepared[b]);
                move || {
                    simulate(
                        &prepared,
                        &SimConfig::new(Model::DeeCdMf, et).with_p(assumed),
                    )
                    .speedup()
                }
            })
            .collect(),
    );

    let mut sens = TextTable::new(&["assumed p", "HM speedup @100"]);
    for (ai, &assumed) in assumed_ps.iter().enumerate() {
        let label = if (assumed - measured).abs() < 1e-9 {
            format!("{} (measured)", f2(assumed))
        } else {
            f2(assumed)
        };
        let hm = harmonic_mean(&flat[ai * num_b..(ai + 1) * num_b]);
        sens.row(vec![label, f2(hm)]);
    }
    println!("{}", sens.render());
    let path = shape.write_csv("ablation_p_shape.csv").expect("csv");
    let spath = sens
        .write_csv(&format!("ablation_p_sensitivity_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {} and {}", path.display(), spath.display());
    enforce_max_rss(max_rss);
}
