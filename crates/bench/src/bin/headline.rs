//! §5.3 headline numbers at the Levo operating point, E_T = 100:
//!
//! * DEE-CD-MF over SP — paper: 5.8×;
//! * DEE-CD-MF over EE — paper: 4.0×;
//! * DEE-CD-MF over sequential — paper: 31.9×;
//! * DEE-CD-MF as a fraction of oracle — paper: ≈59%;
//! * DEE-CD-MF @ 8 paths vs EE @ 256 paths — paper: equal;
//! * SP stops improving at 16 paths;
//! * DEE-CD-MF @ 32 stays high (paper: 26×, the "Levo could be built with
//!   only 32 branch paths" observation).
//!
//! Usage: `headline [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.
//!
//! Each benchmark is prepared once and shared across all nine statistic
//! points via [`dee_bench::pool`]; output is byte-identical for any
//! `--jobs` count.

use std::sync::Arc;

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};

/// The nine (model, E_T) statistic points, in reporting order. The oracle
/// is encoded as `(Oracle, 0)`.
const POINTS: [(Model, u32); 9] = [
    (Model::DeeCdMf, 100),
    (Model::Sp, 100),
    (Model::Ee, 100),
    (Model::DeeCdMf, 32),
    (Model::DeeCdMf, 8),
    (Model::Ee, 256),
    (Model::Sp, 16),
    (Model::Sp, 256),
    (Model::Oracle, 0),
];

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("headline"));
    }
    let p = suite.characteristic_accuracy();

    eprintln!("simulating...");
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "headline_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );

    let num_b = prepared.len();
    let mut cells: Vec<(usize, Model, u32)> = Vec::new();
    for (model, et) in POINTS {
        for b in 0..num_b {
            cells.push((b, model, et));
        }
    }
    let tasks: Vec<_> = cells
        .iter()
        .map(|&(b, model, et)| {
            let prepared = Arc::clone(&prepared[b]);
            move || {
                let config = if model == Model::Oracle {
                    SimConfig::new(Model::Oracle, 0)
                } else {
                    SimConfig::new(model, et).with_p(p)
                };
                simulate(&prepared, &config).speedup()
            }
        })
        .collect();
    let flat = pool::run_sweep("headline", jobs, tasks);
    let hm_at = |point: usize| harmonic_mean(&flat[point * num_b..(point + 1) * num_b]);

    let dee100 = hm_at(0);
    let sp100 = hm_at(1);
    let ee100 = hm_at(2);
    let dee32 = hm_at(3);
    let dee8 = hm_at(4);
    let ee256 = hm_at(5);
    let sp16 = hm_at(6);
    let sp256 = hm_at(7);
    let oracle = hm_at(8);

    println!(
        "§5.3 headline statistics (harmonic means, {scale:?} scale, p = {})\n",
        f2(p)
    );
    let mut t = TextTable::new(&["statistic", "measured", "paper"]);
    t.row(vec![
        "DEE-CD-MF @100 / SP @100".into(),
        f2(dee100 / sp100),
        "5.8".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @100 / EE @100".into(),
        f2(dee100 / ee100),
        "4.0".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @100 x sequential".into(),
        f2(dee100),
        "31.9".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @100 / oracle".into(),
        f2(dee100 / oracle),
        "0.59".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @32 x sequential".into(),
        f2(dee32),
        "26".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @8 vs EE @256".into(),
        format!("{} vs {}", f2(dee8), f2(ee256)),
        "equal".into(),
    ]);
    t.row(vec![
        "SP @256 / SP @16 (plateau)".into(),
        f2(sp256 / sp16),
        "~1.0".into(),
    ]);
    println!("{}", t.render());
    let path = t
        .write_csv(&format!("headline_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    enforce_max_rss(max_rss);
}
