//! §5.3 headline numbers at the Levo operating point, E_T = 100:
//!
//! * DEE-CD-MF over SP — paper: 5.8×;
//! * DEE-CD-MF over EE — paper: 4.0×;
//! * DEE-CD-MF over sequential — paper: 31.9×;
//! * DEE-CD-MF as a fraction of oracle — paper: ≈59%;
//! * DEE-CD-MF @ 8 paths vs EE @ 256 paths — paper: equal;
//! * SP stops improving at 16 paths;
//! * DEE-CD-MF @ 32 stays high (paper: 26×, the "Levo could be built with
//!   only 32 branch paths" observation).
//!
//! Usage: `headline [tiny|small|medium|large]`.

use dee_bench::{f2, scale_from_args, Suite, TextTable};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};

fn hm_at(suite: &Suite, model: Model, et: u32, p: f64) -> f64 {
    let values: Vec<f64> = suite
        .entries
        .iter()
        .map(|e| {
            let prepared = e.prepare();
            simulate(&prepared, &SimConfig::new(model, et).with_p(p)).speedup()
        })
        .collect();
    harmonic_mean(&values)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("loading suite at {scale:?}...");
    let suite = Suite::load(scale);
    let p = suite.characteristic_accuracy();

    eprintln!("simulating...");
    let dee100 = hm_at(&suite, Model::DeeCdMf, 100, p);
    let sp100 = hm_at(&suite, Model::Sp, 100, p);
    let ee100 = hm_at(&suite, Model::Ee, 100, p);
    let dee32 = hm_at(&suite, Model::DeeCdMf, 32, p);
    let dee8 = hm_at(&suite, Model::DeeCdMf, 8, p);
    let ee256 = hm_at(&suite, Model::Ee, 256, p);
    let sp16 = hm_at(&suite, Model::Sp, 16, p);
    let sp256 = hm_at(&suite, Model::Sp, 256, p);
    let oracle = harmonic_mean(
        &suite
            .entries
            .iter()
            .map(|e| simulate(&e.prepare(), &SimConfig::new(Model::Oracle, 0)).speedup())
            .collect::<Vec<f64>>(),
    );

    println!(
        "§5.3 headline statistics (harmonic means, {scale:?} scale, p = {})\n",
        f2(p)
    );
    let mut t = TextTable::new(&["statistic", "measured", "paper"]);
    t.row(vec![
        "DEE-CD-MF @100 / SP @100".into(),
        f2(dee100 / sp100),
        "5.8".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @100 / EE @100".into(),
        f2(dee100 / ee100),
        "4.0".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @100 x sequential".into(),
        f2(dee100),
        "31.9".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @100 / oracle".into(),
        f2(dee100 / oracle),
        "0.59".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @32 x sequential".into(),
        f2(dee32),
        "26".into(),
    ]);
    t.row(vec![
        "DEE-CD-MF @8 vs EE @256".into(),
        format!("{} vs {}", f2(dee8), f2(ee256)),
        "equal".into(),
    ]);
    t.row(vec![
        "SP @256 / SP @16 (plateau)".into(),
        f2(sp256 / sp16),
        "~1.0".into(),
    ]);
    println!("{}", t.render());
    let path = t
        .write_csv(&format!("headline_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
}
