//! Engine and replay timings for the trace path: for every workload,
//! time a fresh interpreter capture against the pre-decoded engine and
//! against a streaming replay of the same trace from a `dee-store`
//! container, verifying all three are byte-identical while at it.
//!
//! Usage: `store_replay [tiny|small|medium|large ...] [--store DIR]`.
//! Scale arguments accumulate; without any, the paper-relevant pair
//! (tiny *and* small) is measured. Without `--store` a scratch store
//! under the system temp directory is used and removed at exit.
//!
//! Writes `results/store_replay.csv`. The committed copy of that file
//! carries the speedup numbers measured for the PR that introduced the
//! decoded engine — including the `fig5_sweep` rows, whose `interp_ms`
//! column holds the pre-decoded-engine build's wall clock (see
//! EXPERIMENTS.md §"Engine speedups"). Timings are machine-dependent:
//! regenerating locally overwrites the measured numbers, and CI runs
//! this binary only *after* its golden no-op diff, restoring the
//! committed file afterwards.

use std::sync::atomic::Ordering;
use std::time::Instant;

use dee_bench::{store_from_args, TextTable};
use dee_store::{ArtifactKey, Store};
use dee_vm::{output_checksum, Engine, Trace};
use dee_workloads::{all_workloads, Scale, Workload};

/// Best-of-5 wall-clock time of `f`, in milliseconds, along with the
/// last value it produced.
fn best_ms<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..5 {
        let start = Instant::now();
        last = Some(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, last.expect("ran at least once"))
}

fn capture(workload: &Workload, engine: Engine) -> Trace {
    workload
        .capture_trace_with(engine)
        .unwrap_or_else(|e| panic!("{}: capture failed: {e}", workload.name))
}

fn main() {
    let mut scales: Vec<Scale> = std::env::args()
        .skip(1)
        .filter_map(|a| match a.as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        })
        .collect();
    if scales.is_empty() {
        scales = vec![Scale::Tiny, Scale::Small];
    }
    let (store, scratch) = match store_from_args() {
        Some(store) => (store, None),
        None => {
            let dir = std::env::temp_dir().join(format!("dee_store_replay_{}", std::process::id()));
            (Store::open(&dir).expect("open scratch store"), Some(dir))
        }
    };

    let mut table = TextTable::new(&[
        "scale",
        "workload",
        "records",
        "bytes",
        "interp_ms",
        "decoded_ms",
        "engine_speedup",
        "replay_ms",
        "replay_speedup",
    ]);
    for &scale in &scales {
        let tag = format!("{scale:?}").to_ascii_lowercase();
        let mut totals = [0.0f64; 3]; // interp, decoded, replay
        let mut total_records = 0usize;
        let mut total_bytes = 0u64;
        for workload in all_workloads(scale) {
            let (interp_ms, interp) = best_ms(|| capture(&workload, Engine::Interp));
            let (decoded_ms, fresh) = best_ms(|| capture(&workload, Engine::Decoded));

            let key = ArtifactKey::new(
                &workload.name,
                &tag,
                &workload.program.to_listing(),
                &workload.initial_memory,
            );
            let path = store.put(&key, &fresh).expect("publish artifact");
            let bytes = std::fs::metadata(&path).expect("artifact metadata").len();

            let (replay_ms, replayed) = best_ms(|| {
                store
                    .load(&key)
                    .expect("replay artifact")
                    .expect("artifact published")
            });
            // put/load are called directly (not via get_or_record), so
            // feed the timing counters the summary line reports.
            let stats = store.stats();
            stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            stats
                .trace_nanos
                .fetch_add((decoded_ms * 1e6) as u64, Ordering::Relaxed);
            stats
                .replay_nanos
                .fetch_add((replay_ms * 1e6) as u64, Ordering::Relaxed);

            // The invariant the whole path is built on: the decoded
            // engine and a store replay are both byte-identical to the
            // reference interpreter's capture.
            assert_eq!(
                fresh.records(),
                interp.records(),
                "{key}: engines diverge on records"
            );
            assert_eq!(
                fresh.output(),
                interp.output(),
                "{key}: engines diverge on output"
            );
            assert_eq!(
                replayed.records(),
                interp.records(),
                "{key}: records drifted"
            );
            assert_eq!(replayed.output(), interp.output(), "{key}: output drifted");
            assert_eq!(
                output_checksum(replayed.output()),
                output_checksum(fresh.output()),
                "{key}: checksum drifted"
            );

            totals[0] += interp_ms;
            totals[1] += decoded_ms;
            totals[2] += replay_ms;
            total_records += fresh.len();
            total_bytes += bytes;
            table.row(vec![
                tag.clone(),
                workload.name.to_string(),
                fresh.len().to_string(),
                bytes.to_string(),
                format!("{interp_ms:.2}"),
                format!("{decoded_ms:.2}"),
                format!("{:.1}x", interp_ms / decoded_ms.max(1e-6)),
                format!("{replay_ms:.2}"),
                format!("{:.1}x", interp_ms / replay_ms.max(1e-6)),
            ]);
        }
        table.row(vec![
            tag.clone(),
            "(total)".to_string(),
            total_records.to_string(),
            total_bytes.to_string(),
            format!("{:.2}", totals[0]),
            format!("{:.2}", totals[1]),
            format!("{:.1}x", totals[0] / totals[1].max(1e-6)),
            format!("{:.2}", totals[2]),
            format!("{:.1}x", totals[0] / totals[2].max(1e-6)),
        ]);
    }
    println!("Trace path: interpreter vs decoded engine vs store replay");
    println!("{}", table.render());
    let path = table.write_csv("store_replay.csv").expect("csv");
    println!("wrote {}", path.display());
    eprintln!("{}", store.stats().timing_line("store_replay"));
    if let Some(dir) = scratch {
        std::fs::remove_dir_all(dir).ok();
    }
}
