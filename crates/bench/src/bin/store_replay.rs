//! Replay-vs-retrace timing for the trace-artifact store: for every
//! workload, time a fresh VM trace against a streaming replay of the
//! same trace from a `dee-store` container, and verify the two are
//! byte-identical while at it.
//!
//! Usage: `store_replay [tiny|small|medium|large] [--store DIR]`.
//! Without a scale the paper-relevant pair (tiny *and* small) is
//! measured; without `--store` a scratch store under the system temp
//! directory is used and removed at exit. Writes
//! `results/store_replay.csv` — timings are machine-dependent, so the
//! file is not a committed golden and CI must not diff it.

use std::sync::atomic::Ordering;
use std::time::Instant;

use dee_bench::{store_from_args, TextTable};
use dee_store::{ArtifactKey, Store};
use dee_vm::output_checksum;
use dee_workloads::{all_workloads, Scale};

fn main() {
    let scales: Vec<Scale> = match std::env::args().skip(1).find_map(|a| match a.as_str() {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        "large" => Some(Scale::Large),
        _ => None,
    }) {
        Some(scale) => vec![scale],
        None => vec![Scale::Tiny, Scale::Small],
    };
    let (store, scratch) = match store_from_args() {
        Some(store) => (store, None),
        None => {
            let dir = std::env::temp_dir().join(format!("dee_store_replay_{}", std::process::id()));
            (Store::open(&dir).expect("open scratch store"), Some(dir))
        }
    };

    let mut table = TextTable::new(&[
        "scale",
        "workload",
        "records",
        "bytes",
        "trace_ms",
        "replay_ms",
        "speedup",
    ]);
    for &scale in &scales {
        let tag = format!("{scale:?}").to_ascii_lowercase();
        for workload in all_workloads(scale) {
            let trace_start = Instant::now();
            let fresh = workload
                .validate()
                .unwrap_or_else(|e| panic!("workload validation failed: {e}"));
            let trace_ms = trace_start.elapsed().as_secs_f64() * 1e3;

            let key = ArtifactKey::new(
                &workload.name,
                &tag,
                &workload.program.to_listing(),
                &workload.initial_memory,
            );
            let path = store.put(&key, &fresh).expect("publish artifact");
            let bytes = std::fs::metadata(&path).expect("artifact metadata").len();

            let replay_start = Instant::now();
            let replayed = store
                .load(&key)
                .expect("replay artifact")
                .expect("artifact published");
            let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;
            // put/load are called directly (not via get_or_record), so
            // feed the timing counters the summary line reports.
            let stats = store.stats();
            stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            stats
                .trace_nanos
                .fetch_add((trace_ms * 1e6) as u64, Ordering::Relaxed);
            stats
                .replay_nanos
                .fetch_add((replay_ms * 1e6) as u64, Ordering::Relaxed);

            // The invariant the whole store is built on: replay is
            // byte-identical to re-tracing.
            assert_eq!(
                replayed.records(),
                fresh.records(),
                "{key}: records drifted"
            );
            assert_eq!(replayed.output(), fresh.output(), "{key}: output drifted");
            assert_eq!(
                output_checksum(replayed.output()),
                output_checksum(fresh.output()),
                "{key}: checksum drifted"
            );

            table.row(vec![
                tag.clone(),
                workload.name.to_string(),
                fresh.len().to_string(),
                bytes.to_string(),
                format!("{trace_ms:.2}"),
                format!("{replay_ms:.2}"),
                format!("{:.1}x", trace_ms / replay_ms.max(1e-6)),
            ]);
        }
    }
    println!("Record-once / replay-many: VM trace vs store replay");
    println!("{}", table.render());
    let path = table.write_csv("store_replay.csv").expect("csv");
    println!("wrote {}", path.display());
    eprintln!("{}", store.stats().timing_line("store_replay"));
    if let Some(dir) = scratch {
        std::fs::remove_dir_all(dir).ok();
    }
}
