//! The classic Riseman & Foster (1972) experiment the paper opens with
//! (§1.2): "demonstrating speedups of general purpose code of a factor of
//! 25.65 (harmonic mean, infinitely many branches eagerly executed)."
//!
//! Sweeps the number of conditional branches that may be bypassed
//! (outstanding) at once, from 0 to effectively infinite, and reports the
//! harmonic-mean speedup — reproducing the study's signature curve: near-
//! sequential performance with few bypassed jumps, an order of magnitude
//! only with unbounded eager execution. This is exactly the cost explosion
//! DEE's disjointness is designed to avoid.
//!
//! Usage: `riseman_foster [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use std::sync::Arc;

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_ilpsim::{harmonic_mean, riseman_foster};

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("riseman_foster"));
    }

    println!("Riseman-Foster sweep: branches bypassed vs harmonic-mean speedup");
    println!("(paper cites 25.65x at infinity for their benchmarks)\n");

    // Each benchmark is prepared once (the serial version re-prepared per
    // bypassed count); every (bypassed, benchmark) cell shares it.
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "riseman_foster_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );
    let caps = [0u32, 1, 2, 4, 8, 16, 64, 256, 4096, u32::MAX];
    let num_b = prepared.len();
    let mut cells: Vec<(u32, usize)> = Vec::new();
    for &cap in &caps {
        for b in 0..num_b {
            cells.push((cap, b));
        }
    }
    let flat = pool::run_sweep(
        "riseman_foster",
        jobs,
        cells
            .iter()
            .map(|&(cap, b)| {
                let prepared = Arc::clone(&prepared[b]);
                move || riseman_foster(&prepared, cap).speedup()
            })
            .collect(),
    );

    let mut t = TextTable::new(&["branches bypassed", "HM speedup"]);
    for (ci, &cap) in caps.iter().enumerate() {
        let label = if cap == u32::MAX {
            "unlimited".to_string()
        } else {
            cap.to_string()
        };
        let hm = harmonic_mean(&flat[ci * num_b..(ci + 1) * num_b]);
        t.row(vec![label, f2(hm)]);
    }
    println!("{}", t.render());
    let path = t
        .write_csv(&format!("riseman_foster_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    enforce_max_rss(max_rss);
}
