//! The classic Riseman & Foster (1972) experiment the paper opens with
//! (§1.2): "demonstrating speedups of general purpose code of a factor of
//! 25.65 (harmonic mean, infinitely many branches eagerly executed)."
//!
//! Sweeps the number of conditional branches that may be bypassed
//! (outstanding) at once, from 0 to effectively infinite, and reports the
//! harmonic-mean speedup — reproducing the study's signature curve: near-
//! sequential performance with few bypassed jumps, an order of magnitude
//! only with unbounded eager execution. This is exactly the cost explosion
//! DEE's disjointness is designed to avoid.
//!
//! Usage: `riseman_foster [tiny|small|medium|large]`.

use dee_bench::{f2, scale_from_args, Suite, TextTable};
use dee_ilpsim::{harmonic_mean, riseman_foster};

fn main() {
    let scale = scale_from_args();
    eprintln!("loading suite at {scale:?}...");
    let suite = Suite::load(scale);

    println!("Riseman-Foster sweep: branches bypassed vs harmonic-mean speedup");
    println!("(paper cites 25.65x at infinity for their benchmarks)\n");
    let mut t = TextTable::new(&["branches bypassed", "HM speedup"]);
    for bypassed in [0u32, 1, 2, 4, 8, 16, 64, 256, 4096] {
        let values: Vec<f64> = suite
            .entries
            .iter()
            .map(|e| riseman_foster(&e.prepare(), bypassed).speedup())
            .collect();
        t.row(vec![bypassed.to_string(), f2(harmonic_mean(&values))]);
    }
    let unlimited: Vec<f64> = suite
        .entries
        .iter()
        .map(|e| riseman_foster(&e.prepare(), u32::MAX).speedup())
        .collect();
    t.row(vec!["unlimited".into(), f2(harmonic_mean(&unlimited))]);
    println!("{}", t.render());
    let path = t
        .write_csv(&format!("riseman_foster_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
}
