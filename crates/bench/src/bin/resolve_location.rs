//! §5.3 misprediction-resolution-location statistic.
//!
//! The paper: "statistics were gathered of the locations in the DEE static
//! tree where mispredicted branches resolve. Most of the resolving is done
//! at the root of the tree, accounting for around 70-80% of the resolved
//! mispredictions."
//!
//! This binary reports, for DEE-CD-MF at E_T = 100, the distribution of
//! resolution levels (level 1 = root = no older branch still unresolved)
//! per benchmark, plus the fraction resolved at the root and within DEE
//! coverage (level ≤ h_DEE). In the serialized models (SP, DEE, -CD)
//! branches resolve in order, so 100% resolve at the root by construction;
//! the -MF models spread slightly deeper but stay concentrated at the top
//! of the tree, which is what makes the DEE paths effective.
//!
//! Usage: `resolve_location [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pct, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_core::{StaticTree, TreeParams};
use dee_ilpsim::{simulate, Model, SimConfig};

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("resolve_location"));
    }
    let p = suite.characteristic_accuracy();
    let et = 100;
    let tree = StaticTree::build(TreeParams {
        p: p.clamp(0.5, 0.9999),
        et,
    });
    let h = tree.h_dee();

    println!(
        "Misprediction resolution locations — DEE-CD-MF @ E_T = {et}, p = {}",
        f2(p)
    );
    println!("(paper: ~70-80% at the root; DEE tree h_DEE = {h})\n");

    let mut t = TextTable::new(&[
        "benchmark",
        "mispredicts",
        "at root",
        "level<=3",
        &format!("covered (<= h={h})"),
        "mean level",
    ]);
    let mut agg = vec![0u64; 64];
    // One cell per benchmark: prepare and simulate DEE-CD-MF @ E_T = 100.
    let hists = pool::run_sweep(
        "resolve_location",
        jobs,
        suite
            .entries
            .iter()
            .map(|entry| {
                move || {
                    let prepared = entry.prepare_chunked(chunk);
                    simulate(&prepared, &SimConfig::new(Model::DeeCdMf, et).with_p(p))
                        .resolve_level_histogram
                }
            })
            .collect(),
    );
    for (entry, hist) in suite.entries.iter().zip(&hists) {
        for (k, &c) in hist.iter().enumerate() {
            agg[k] += c;
        }
        t.row(stat_row(&entry.workload.name, hist, h));
    }
    t.row(stat_row("ALL", &agg, h));
    println!("{}", t.render());

    println!("Aggregate level histogram (level: count):");
    let total: u64 = agg.iter().sum();
    for (k, &c) in agg.iter().enumerate() {
        if c > 0 {
            println!(
                "  level {:>2}: {:>8}  ({})",
                k + 1,
                c,
                pct(c as f64 / total.max(1) as f64)
            );
        }
    }
    let path = t
        .write_csv(&format!("resolve_location_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("\nwrote {}", path.display());
    enforce_max_rss(max_rss);
}

fn stat_row(name: &str, hist: &[u64], h: u32) -> Vec<String> {
    let total: u64 = hist.iter().sum();
    let at_root = hist.first().copied().unwrap_or(0);
    let top3: u64 = hist.iter().take(3).sum();
    let covered: u64 = hist.iter().take(h as usize).sum();
    let mean = if total == 0 {
        0.0
    } else {
        hist.iter()
            .enumerate()
            .map(|(k, &c)| (k as f64 + 1.0) * c as f64)
            .sum::<f64>()
            / total as f64
    };
    let frac = |n: u64| {
        if total == 0 {
            "-".to_string()
        } else {
            pct(n as f64 / total as f64)
        }
    };
    vec![
        name.into(),
        total.to_string(),
        frac(at_root),
        frac(top3),
        frac(covered),
        f2(mean),
    ]
}
