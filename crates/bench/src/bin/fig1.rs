//! Figure 1: comparison of the three speculative execution strategies at
//! p = 0.7 with 6 branch-path resources.
//!
//! Regenerates the trees of the paper's Figure 1: the cumulative
//! probabilities, the assignment order, and the depths of speculation
//! (l_SP = 6, l_EE = 2, l_DEE = 4), and checks the famous disjoint choice:
//! DEE assigns its fourth resource to the not-predicted root path
//! (cp 0.3) instead of the deeper main-line path (cp 0.24).

use dee_bench::{f2, TextTable};
use dee_core::{SpecTree, Strategy};

fn main() {
    let p = 0.7;
    let et = 6;
    println!("Figure 1 — speculative execution strategies, p = {p}, E_T = {et}\n");

    let mut depth_table = TextTable::new(&["strategy", "depth l", "paper", "total cp (P_tot)"]);
    for (strategy, paper_depth) in [
        (Strategy::SinglePath, 6),
        (Strategy::Eager, 2),
        (Strategy::Disjoint, 4),
    ] {
        let tree = SpecTree::build(strategy, p, et);
        depth_table.row(vec![
            format!("{strategy:?}"),
            tree.depth().to_string(),
            paper_depth.to_string(),
            f2(tree.total_cp()),
        ]);

        println!("{strategy:?} tree (assignment order, cp, orientation):");
        let mut paths = TextTable::new(&["order", "depth", "cp", "direction"]);
        for path in tree.paths() {
            paths.row(vec![
                (path.order + 1).to_string(),
                path.depth.to_string(),
                f2(path.cp),
                if path.predicted {
                    "predicted".into()
                } else {
                    "NOT predicted".into()
                },
            ]);
        }
        println!("{}", paths.render());
    }

    println!("Depth of speculation per strategy (paper: l_SP=6, l_EE=2, l_DEE=4):");
    println!("{}", depth_table.render());

    let dee = SpecTree::build(Strategy::Disjoint, p, et);
    let fourth = dee.paths().iter().find(|x| x.order == 3).expect("6 paths");
    println!(
        "Disjoint choice: 4th resource goes to the not-predicted root path \
         (cp {:.2}) before the deeper main-line path (cp 0.24) — {}",
        fourth.cp,
        if !fourth.predicted && (fourth.cp - 0.3).abs() < 1e-9 {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    let path = depth_table.write_csv("fig1_depths.csv").expect("csv");
    println!("\nwrote {}", path.display());
}
