//! Load generator for `dee serve`.
//!
//! Drives a parameter sweep — the service's intended workload — against a
//! running server (`--addr HOST:PORT`) or an in-process one it spawns
//! itself, then reports throughput, latency percentiles, and the
//! prepared-trace cache hit rate scraped from `/metrics`.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--concurrency C]
//!         [--workers W] [--retries R] [--seed S] [--csv] [--gateway NODES]
//!         [--range]
//! ```
//!
//! `--gateway NODES` drives the sweep through a `dee-cluster` gateway
//! instead of a bare server: an in-process `LocalCluster` of NODES nodes
//! is spawned (or `--addr` points at a running gateway), and the summary
//! reports the cluster-tier health counters — hedge rate, retry-budget
//! exhaustions, and shed rate — alongside the latency percentiles. With
//! `--csv` the row lands in `results/cluster_soak.csv`; those numbers are
//! machine-dependent, so the file is a report, not a golden.
//!
//! The sweep cycles models and `E_T` values over two tiny workloads, so
//! after the two cold preparations every request hits the cache; with the
//! default 100 requests the steady-state hit rate is 98%.
//!
//! `--range` switches the sweep to seeded `POST /simulate_range` requests
//! over the `compress`/tiny trace. Unless `--addr` points at a running
//! server, an in-process one is spawned over a temporary store
//! pre-populated with `DEESNAP1` checkpoints, so most requests warm-start
//! from a snapshot; the summary reports the snapshot-seek hit rate
//! scraped from the `dee_snap_*` metrics next to the latency percentiles,
//! and the row lands in `results/snap_range.csv` (machine-dependent
//! numbers — a report, not a golden).
//!
//! Transient `503`/`504` responses (queue full, open breaker, deadline
//! slip) are retried with seeded jittered exponential backoff, so a burst
//! of shed load shows up as `retried` in the summary instead of hard
//! errors; requests that stay unlucky through every attempt count as
//! `abandoned`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dee_bench::TextTable;
use dee_cluster::{ClusterConfig, LocalCluster};
use dee_serve::{Server, ServerConfig};

const MODELS: [&str; 4] = ["SP", "DEE", "SP-CD-MF", "DEE-CD-MF"];
const WORKLOADS: [&str; 2] = ["compress", "xlisp"];

/// First-retry backoff; doubles per attempt before jitter.
const BACKOFF_BASE_MS: u64 = 10;

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    workers: usize,
    retries: u32,
    seed: u64,
    csv: bool,
    gateway: Option<usize>,
    range: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        requests: 100,
        concurrency: 4,
        workers: 0,
        retries: 3,
        seed: 1,
        csv: false,
        gateway: None,
        range: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().ok_or_else(|| format!("`{flag}` needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value()?.clone()),
            "--requests" => {
                args.requests = value()?.parse().map_err(|_| "bad --requests".to_string())?;
            }
            "--concurrency" => {
                args.concurrency = value()?
                    .parse()
                    .map_err(|_| "bad --concurrency".to_string())?;
            }
            "--workers" => {
                args.workers = value()?.parse().map_err(|_| "bad --workers".to_string())?;
            }
            "--retries" => {
                args.retries = value()?.parse().map_err(|_| "bad --retries".to_string())?;
            }
            "--seed" => {
                args.seed = value()?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--csv" => args.csv = true,
            "--gateway" => {
                args.gateway = Some(value()?.parse().map_err(|_| "bad --gateway".to_string())?);
            }
            "--range" => args.range = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.requests == 0 || args.concurrency == 0 {
        return Err("--requests and --concurrency must be positive".into());
    }
    if args.gateway == Some(0) {
        return Err("--gateway needs at least one node".into());
    }
    if args.range && args.gateway.is_some() {
        return Err("--range drives a single node; drop --gateway".into());
    }
    Ok(args)
}

/// xorshift64* — the same tiny generator the fault plan uses, so backoff
/// jitter is reproducible from `--seed`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Backoff before retry `attempt` (1-based): exponential base with full
/// jitter, `uniform(0, BASE << (attempt-1))`, capped at one second.
fn backoff(rng: &mut Rng, attempt: u32) -> Duration {
    let ceiling_ms = (BACKOFF_BASE_MS << (attempt - 1).min(10)).min(1_000);
    Duration::from_millis(rng.next() % ceiling_ms.max(1))
}

/// One `Connection: close` HTTP exchange. Returns (status, body).
fn exchange(addr: &str, request: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad response: {raw:.60}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn post(addr: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, &request)
}

fn get(addr: &str, path: &str) -> Result<(u16, String), String> {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n"),
    )
}

/// Whether a status is worth retrying: shed load (`503`) and deadline
/// slips (`504`) are transient by design; everything else is not.
fn transient(status: u16) -> bool {
    status == 503 || status == 504
}

/// The i-th request body of the sweep: cycle workloads slowest, so every
/// distinct prepared trace is requested early and re-hit often.
fn sweep_body(i: usize) -> String {
    let workload = WORKLOADS[i % WORKLOADS.len()];
    let model = MODELS[(i / WORKLOADS.len()) % MODELS.len()];
    let et = 4 + 8 * u32::try_from((i / (WORKLOADS.len() * MODELS.len())) % 16).unwrap_or(0);
    format!(r#"{{"workload":"{workload}","scale":"tiny","model":"{model}","et":{et}}}"#)
}

/// The `--range` mode's fixed workload and checkpoint stride. One tiny
/// trace is enough to exercise the seek/replay path; the stride is small
/// relative to the trace so most seeded ranges find a snapshot below
/// their start.
const RANGE_WORKLOAD: &str = "compress";
const RANGE_STRIDE: u64 = 1024;

/// Records the `--range` workload's trace into `dir` and cuts `DEESNAP1`
/// checkpoints at [`RANGE_STRIDE`], so a server spawned over the
/// directory can warm-start `/simulate_range` requests. Returns the
/// trace length (the bound for seeded ranges).
fn publish_range_fixture(dir: &std::path::Path) -> u64 {
    let store = dee_store::Store::open(dir).expect("open fixture store");
    let workload = dee_workloads::WorkloadRegistry::builtin()
        .build_many(&[RANGE_WORKLOAD], dee_workloads::Scale::Tiny)
        .expect("known workload")
        .remove(0);
    let trace = workload
        .validate_with(dee_vm::Engine::default())
        .expect("workload validates");
    let key = dee_store::ArtifactKey::new(
        &workload.name,
        "tiny",
        &workload.program.to_listing(),
        &workload.initial_memory,
    );
    store.put(&key, &trace).expect("publish trace");
    dee_snap::publish_checkpoints(
        &store,
        &key,
        &workload.program,
        &workload.initial_memory,
        RANGE_STRIDE,
    )
    .expect("publish checkpoints");
    trace.len() as u64
}

/// The i-th seeded `/simulate_range` body: a deterministic (start, end)
/// window over the fixture trace, cycling the four request predictors so
/// every snapshot blob gets restored.
fn range_body(i: usize, seed: u64, trace_len: u64) -> String {
    let mut rng = Rng::new(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let start = rng.next() % trace_len.saturating_sub(1).max(1);
    let end = (start + 1 + rng.next() % 512).min(trace_len);
    let predictor = ["twobit", "gshare", "pap", "taken"][i % 4];
    format!(
        r#"{{"workload":"{RANGE_WORKLOAD}","scale":"tiny","model":"SP","et":8,"predictor":"{predictor}","start":{start},"end":{end}}}"#
    )
}

/// Pulls one counter value out of the Prometheus text exposition.
fn scrape(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Per-thread tally of how the sweep's requests ended.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    /// Requests that needed at least one retry before succeeding.
    retried: usize,
    /// Requests abandoned after exhausting every retry on 503/504.
    abandoned: usize,
    /// Non-transient failures (unexpected status or transport error).
    errors: usize,
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    // Spawn an in-process server (or cluster) unless one was pointed at.
    let mut spawned: Option<Server> = None;
    let mut spawned_cluster: Option<(LocalCluster, std::path::PathBuf)> = None;
    let mut spawned_store: Option<std::path::PathBuf> = None;
    let addr = match (&args.addr, args.gateway) {
        (Some(addr), _) => addr.clone(),
        (None, Some(nodes)) => {
            let store_root =
                std::env::temp_dir().join(format!("dee_loadgen_cluster_{}", std::process::id()));
            std::fs::remove_dir_all(&store_root).ok();
            let cluster = LocalCluster::launch(ClusterConfig {
                nodes,
                store_root: store_root.clone(),
                node_workers: if args.workers > 0 { args.workers } else { 2 },
                ..ClusterConfig::default()
            })
            .expect("launch cluster");
            let addr = cluster.gateway_addr().to_string();
            spawned_cluster = Some((cluster, store_root));
            addr
        }
        (None, None) => {
            let mut config = ServerConfig::default();
            if args.workers > 0 {
                config.workers = args.workers;
            }
            config.queue_capacity = config.queue_capacity.max(args.concurrency * 4);
            if args.range {
                let dir =
                    std::env::temp_dir().join(format!("dee_loadgen_range_{}", std::process::id()));
                std::fs::remove_dir_all(&dir).ok();
                publish_range_fixture(&dir);
                config.store_dir = Some(dir.clone());
                spawned_store = Some(dir);
            }
            let server = Server::spawn(config).expect("spawn server");
            let addr = server.addr().to_string();
            spawned = Some(server);
            addr
        }
    };

    let (status, _) = get(&addr, "/healthz").expect("healthz");
    assert_eq!(status, 200, "server not healthy");

    // Range windows are seeded off the fixture trace's length; a local
    // capture is authoritative for a remote server too, since traces are
    // deterministic.
    let range_len = if args.range {
        dee_workloads::WorkloadRegistry::builtin()
            .build_many(&[RANGE_WORKLOAD], dee_workloads::Scale::Tiny)
            .expect("known workload")
            .remove(0)
            .validate_with(dee_vm::Engine::default())
            .expect("workload validates")
            .len() as u64
    } else {
        0
    };

    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..args.concurrency)
        .map(|client| {
            let addr = addr.clone();
            let next = Arc::clone(&next);
            let total = args.requests;
            let retries = args.retries;
            let range = args.range;
            let seed = args.seed;
            // Distinct deterministic jitter stream per client thread.
            let mut rng = Rng::new(args.seed.wrapping_add(client as u64 * 0x9E37_79B9));
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                let path = if range {
                    "/simulate_range"
                } else {
                    "/simulate"
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return tally;
                    }
                    let body = if range {
                        range_body(i, seed, range_len)
                    } else {
                        sweep_body(i)
                    };
                    let begin = Instant::now();
                    let mut attempt = 0u32;
                    loop {
                        match post(&addr, path, &body) {
                            Ok((200, _)) => {
                                tally.latencies_us.push(
                                    u64::try_from(begin.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                                if attempt > 0 {
                                    tally.retried += 1;
                                }
                                break;
                            }
                            Ok((status, body)) if transient(status) => {
                                if attempt >= retries {
                                    eprintln!(
                                        "request {i}: abandoned after {attempt} retries \
                                         (HTTP {status}: {body})"
                                    );
                                    tally.abandoned += 1;
                                    break;
                                }
                                attempt += 1;
                                std::thread::sleep(backoff(&mut rng, attempt));
                            }
                            Ok((status, body)) => {
                                eprintln!("request {i}: HTTP {status}: {body}");
                                tally.errors += 1;
                                break;
                            }
                            Err(message) => {
                                eprintln!("request {i}: {message}");
                                tally.errors += 1;
                                break;
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let mut latencies_us = Vec::new();
    let (mut retried, mut abandoned, mut errors) = (0usize, 0usize, 0usize);
    for handle in handles {
        let tally = handle.join().expect("client thread");
        latencies_us.extend(tally.latencies_us);
        retried += tally.retried;
        abandoned += tally.abandoned;
        errors += tally.errors;
    }
    let wall = started.elapsed();
    latencies_us.sort_unstable();

    let (status, metrics) = get(&addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);

    let ok = latencies_us.len();
    let rps = ok as f64 / wall.as_secs_f64();

    // Gateway mode: report the cluster-tier health counters the gateway
    // exports instead of the node-local cache counters.
    if args.gateway.is_some() {
        let forwards = scrape(&metrics, "dee_gateway_forwards_total");
        let hedges = scrape(&metrics, "dee_gateway_hedges_total");
        let retry_exhausted = scrape(&metrics, "dee_gateway_retry_exhausted_total");
        let shed = scrape(&metrics, "dee_gateway_shed_total");
        let seen = scrape(&metrics, "dee_gateway_requests_total");
        let rate = |part: u64, whole: u64| {
            if whole > 0 {
                format!("{:.2}%", 100.0 * part as f64 / whole as f64)
            } else {
                "0.00%".to_string()
            }
        };
        let mut table = TextTable::new(&[
            "requests",
            "ok",
            "retried",
            "abandoned",
            "errors",
            "rps",
            "p50_us",
            "p99_us",
            "hedges",
            "hedge_rate",
            "retry_exhausted",
            "shed",
            "shed_rate",
        ]);
        table.row(vec![
            args.requests.to_string(),
            ok.to_string(),
            retried.to_string(),
            abandoned.to_string(),
            errors.to_string(),
            format!("{rps:.1}"),
            percentile(&latencies_us, 0.50).to_string(),
            percentile(&latencies_us, 0.99).to_string(),
            hedges.to_string(),
            rate(hedges, forwards),
            retry_exhausted.to_string(),
            shed.to_string(),
            rate(shed, seen),
        ]);
        println!(
            "{} requests ({} concurrent clients) through gateway {addr} in {:.2}s",
            args.requests,
            args.concurrency,
            wall.as_secs_f64()
        );
        print!("{}", table.render());
        if args.csv {
            let path = table.write_csv("cluster_soak.csv").expect("write csv");
            println!("wrote {} (machine-dependent; not a golden)", path.display());
        }
        if let Some((cluster, store_root)) = spawned_cluster {
            cluster.shutdown();
            std::fs::remove_dir_all(&store_root).ok();
        }
        if errors + abandoned > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Range mode: report the snapshot-seek counters instead of the
    // prepared-cache ones, and land the machine-dependent sample in
    // `results/snap_range.csv`.
    if args.range {
        let seek_hits = scrape(&metrics, "dee_snap_seek_hits_total");
        let seek_misses = scrape(&metrics, "dee_snap_seek_misses_total");
        let decode_failures = scrape(&metrics, "dee_snap_decode_failures_total");
        let seeks = seek_hits + seek_misses;
        let seek_hit_rate = if seeks > 0 {
            seek_hits as f64 / seeks as f64
        } else {
            0.0
        };
        let mut table = TextTable::new(&[
            "requests",
            "ok",
            "retried",
            "abandoned",
            "errors",
            "rps",
            "p50_us",
            "p99_us",
            "seek_hits",
            "seek_misses",
            "seek_hit_rate",
            "decode_failures",
        ]);
        table.row(vec![
            args.requests.to_string(),
            ok.to_string(),
            retried.to_string(),
            abandoned.to_string(),
            errors.to_string(),
            format!("{rps:.1}"),
            percentile(&latencies_us, 0.50).to_string(),
            percentile(&latencies_us, 0.99).to_string(),
            seek_hits.to_string(),
            seek_misses.to_string(),
            format!("{:.1}%", 100.0 * seek_hit_rate),
            decode_failures.to_string(),
        ]);
        println!(
            "{} /simulate_range requests ({} concurrent clients, seed {}) against {addr} in {:.2}s",
            args.requests,
            args.concurrency,
            args.seed,
            wall.as_secs_f64()
        );
        print!("{}", table.render());
        let path = table.write_csv("snap_range.csv").expect("write csv");
        println!("wrote {} (machine-dependent; not a golden)", path.display());
        if let Some(server) = spawned {
            server.shutdown();
        }
        if let Some(dir) = spawned_store {
            std::fs::remove_dir_all(&dir).ok();
        }
        if errors + abandoned > 0 {
            std::process::exit(1);
        }
        return;
    }

    let hits = scrape(&metrics, "dee_prepared_cache_hits_total");
    let misses = scrape(&metrics, "dee_prepared_cache_misses_total");
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    let mut table = TextTable::new(&[
        "requests",
        "ok",
        "retried",
        "abandoned",
        "errors",
        "rps",
        "p50_us",
        "p90_us",
        "p99_us",
        "max_us",
        "cache_hits",
        "cache_misses",
        "hit_rate",
    ]);
    table.row(vec![
        args.requests.to_string(),
        ok.to_string(),
        retried.to_string(),
        abandoned.to_string(),
        errors.to_string(),
        format!("{rps:.1}"),
        percentile(&latencies_us, 0.50).to_string(),
        percentile(&latencies_us, 0.90).to_string(),
        percentile(&latencies_us, 0.99).to_string(),
        latencies_us.last().copied().unwrap_or(0).to_string(),
        hits.to_string(),
        misses.to_string(),
        format!("{:.1}%", 100.0 * hit_rate),
    ]);
    println!(
        "{} requests ({} concurrent clients, {} retries max) against {addr} in {:.2}s",
        args.requests,
        args.concurrency,
        args.retries,
        wall.as_secs_f64()
    );
    print!("{}", table.render());
    if args.csv {
        let path = table.write_csv("serve_baseline.csv").expect("write csv");
        println!("wrote {}", path.display());
    }

    if let Some(server) = spawned {
        server.shutdown();
    }
    if errors + abandoned > 0 {
        std::process::exit(1);
    }
}
