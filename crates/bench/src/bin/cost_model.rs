//! §4.3 hardware cost estimates.
//!
//! Reproduces the paper's transistor-budget shares for the Levo
//! configurations: the ~40% concurrency/scheduling overhead, the DEE share
//! for 11 two-column DEE paths (paper: ~18%) and 3 one-column paths
//! (paper: ~3%), and the ~1M-transistor marginal cost of a one-column DEE
//! path — the basis of the conclusion "the marginal cost of DEE is low".

use dee_bench::{f2, pct, TextTable};
use dee_levo::cost::CostModel;
use dee_levo::LevoConfig;

fn main() {
    let model = CostModel::default();
    println!(
        "Hardware cost model: {:.0}M transistor budget, {:.1}M per DEE column, {:.0}% concurrency overhead\n",
        model.total_transistors / 1e6,
        model.per_dee_column / 1e6,
        model.concurrency_overhead_fraction * 100.0
    );

    let configs: [(&str, LevoConfig, &str); 3] = [
        ("CONDEL-2 (no DEE)", LevoConfig::condel2(), "-"),
        ("3 x 1-col (E_T=32)", LevoConfig::default(), "~3%"),
        ("11 x 2-col (E_T=100)", LevoConfig::levo_100(), "~18%"),
    ];

    let mut t = TextTable::new(&[
        "configuration",
        "DEE columns",
        "DEE transistors",
        "DEE share",
        "paper share",
        "concurrency hw",
        "base hw",
    ]);
    for (name, config, paper) in configs {
        let c = model.breakdown(&config);
        t.row(vec![
            name.into(),
            c.dee_columns.to_string(),
            format!("{:.1}M", c.dee_transistors / 1e6),
            pct(c.dee_fraction),
            paper.into(),
            format!("{:.1}M", c.concurrency_transistors / 1e6),
            format!("{:.1}M", c.base_transistors / 1e6),
        ]);
    }
    println!("{}", t.render());

    // Marginal cost check.
    let mut with_extra = LevoConfig::default();
    with_extra.dee_paths += 1;
    let marginal = model.breakdown(&with_extra).dee_transistors
        - model.breakdown(&LevoConfig::default()).dee_transistors;
    println!(
        "marginal cost of one additional 1-column DEE path: {}M transistors (paper: ~1M)",
        f2(marginal / 1e6)
    );
    println!(
        "note: the paper's 18% share implies a ~{:.0}M-transistor E_T=100 part; with the\n\
         default 75M budget the 22 columns are {} of the chip — the same conclusion, the\n\
         marginal cost of DEE is low.",
        model.breakdown(&LevoConfig::levo_100()).dee_transistors / 0.18 / 1e6,
        pct(model.breakdown(&LevoConfig::levo_100()).dee_fraction)
    );
    let path = t.write_csv("cost_model.csv").expect("csv");
    println!("\nwrote {}", path.display());
}
