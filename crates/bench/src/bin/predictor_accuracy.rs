//! Branch-predictor accuracy study.
//!
//! Reproduces two of the paper's predictor claims:
//!
//! * §3.1/§5.1 — the characteristic accuracy of the 2-bit saturating
//!   counter scheme (one counter per static branch, initialized weakly
//!   taken) over the benchmark suite; the paper measured an average of
//!   90.53% on SPECint92 and notes "the current best methods have
//!   prediction accuracies of 90 to 96%".
//! * §4.3 — with many unresolved branches per static branch, a counter
//!   that needs each outcome before the next prediction degrades, while
//!   PAp with *speculative* history update holds its accuracy.
//!
//! Usage: `predictor_accuracy [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--max-rss BYTES]`.

use dee_bench::{
    enforce_max_rss, engine_from_args, max_rss_from_args, pct, pool, scale_from_args,
    store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_isa::Program;
use dee_predict::{
    measure_accuracy, measure_accuracy_delayed, AlwaysTaken, BranchPredictor, Btfn, Gshare,
    PapAdaptive, TwoBitCounter,
};
use dee_vm::Trace;

/// The predictor column order of the accuracy table.
const KINDS: [&str; 6] = ["always", "btfn", "2bc", "pap", "pap-spec", "gshare"];

fn make_predictor(kind: &str, program: &Program) -> Box<dyn BranchPredictor> {
    match kind {
        "always" => Box::new(AlwaysTaken::new()),
        "btfn" => {
            let branch_targets: Vec<(u32, u32)> = program
                .iter()
                .filter_map(|(pc, i)| {
                    i.static_target()
                        .filter(|_| i.is_cond_branch())
                        .map(|t| (pc, t))
                })
                .collect();
            Box::new(Btfn::new(&branch_targets))
        }
        "2bc" => Box::new(TwoBitCounter::new()),
        "pap" => Box::new(PapAdaptive::with_config(2, false)),
        "pap-spec" => Box::new(PapAdaptive::with_config(2, true)),
        _ => Box::new(Gshare::default()),
    }
}

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("predictor_accuracy"));
    }

    println!("Predictor accuracy per benchmark ({scale:?} scale)\n");
    // The sixth SPECint92 benchmark, excluded by the paper as "more
    // predictable than the others" — shown to reproduce the rationale.
    let sc = dee_workloads::sc::build(suite.scale);
    let sc_trace = sc.validate().unwrap_or_else(|e| panic!("{e}"));
    let mut rows: Vec<(String, &Program, &Trace)> = suite
        .entries
        .iter()
        .map(|e| (e.workload.name.to_string(), &e.workload.program, &e.trace))
        .collect();
    rows.push(("sc (excluded)".to_string(), &sc.program, &sc_trace));

    // One cell per (benchmark, predictor).
    let mut cells: Vec<(usize, &str)> = Vec::new();
    for b in 0..rows.len() {
        for kind in KINDS {
            cells.push((b, kind));
        }
    }
    let flat = pool::run_sweep(
        "predictor_accuracy",
        jobs,
        cells
            .iter()
            .map(|&(b, kind)| {
                let program = rows[b].1;
                let trace = rows[b].2;
                move || measure_accuracy(make_predictor(kind, program).as_mut(), trace).accuracy()
            })
            .collect(),
    );

    let mut header = vec!["benchmark"];
    header.extend(KINDS);
    let mut t = TextTable::new(&header);
    for (b, (name, _, _)) in rows.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(
            flat[b * KINDS.len()..(b + 1) * KINDS.len()]
                .iter()
                .map(|&a| pct(a)),
        );
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "characteristic 2bc accuracy of the evaluated five (harmonic mean): {}  (paper: 90.53%)\n",
        pct(suite.characteristic_accuracy())
    );

    println!("Delayed-resolution accuracy (2bc vs speculative PAp), §4.3:");
    let delays = [0usize, 2, 4, 8, 16, 32];
    let mut delay_cells: Vec<(usize, usize)> = Vec::new();
    for &delay in &delays {
        for b in 0..suite.entries.len() {
            delay_cells.push((delay, b));
        }
    }
    let delay_flat = pool::run_sweep(
        "predictor_delay",
        jobs,
        delay_cells
            .iter()
            .map(|&(delay, b)| {
                let trace = &suite.entries[b].trace;
                move || {
                    let c = measure_accuracy_delayed(&mut TwoBitCounter::new(), trace, delay);
                    let s = measure_accuracy_delayed(
                        &mut PapAdaptive::with_config(2, true),
                        trace,
                        delay,
                    );
                    (c.hits, c.branches, s.hits)
                }
            })
            .collect(),
    );
    let num_b = suite.entries.len();
    let mut d = TextTable::new(&["delay (branches)", "2bc", "pap-spec"]);
    for (di, &delay) in delays.iter().enumerate() {
        let group = &delay_flat[di * num_b..(di + 1) * num_b];
        let counter_hits: u64 = group.iter().map(|c| c.0).sum();
        let counter_total: u64 = group.iter().map(|c| c.1).sum();
        let pap_hits: u64 = group.iter().map(|c| c.2).sum();
        d.row(vec![
            delay.to_string(),
            pct(counter_hits as f64 / counter_total.max(1) as f64),
            pct(pap_hits as f64 / counter_total.max(1) as f64),
        ]);
    }
    println!("{}", d.render());

    let path = t
        .write_csv(&format!("predictor_accuracy_{scale:?}.csv").to_lowercase())
        .expect("csv");
    let dpath = d
        .write_csv(&format!("predictor_delay_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {} and {}", path.display(), dpath.display());
    enforce_max_rss(max_rss);
}
