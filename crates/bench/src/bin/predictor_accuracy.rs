//! Branch-predictor accuracy study.
//!
//! Reproduces two of the paper's predictor claims:
//!
//! * §3.1/§5.1 — the characteristic accuracy of the 2-bit saturating
//!   counter scheme (one counter per static branch, initialized weakly
//!   taken) over the benchmark suite; the paper measured an average of
//!   90.53% on SPECint92 and notes "the current best methods have
//!   prediction accuracies of 90 to 96%".
//! * §4.3 — with many unresolved branches per static branch, a counter
//!   that needs each outcome before the next prediction degrades, while
//!   PAp with *speculative* history update holds its accuracy.
//!
//! Usage: `predictor_accuracy [tiny|small|medium|large]`.

use dee_bench::{pct, scale_from_args, Suite, TextTable};
use dee_predict::{
    measure_accuracy, measure_accuracy_delayed, AlwaysTaken, BranchPredictor, Btfn, Gshare,
    PapAdaptive, TwoBitCounter,
};

fn main() {
    let scale = scale_from_args();
    eprintln!("loading suite at {scale:?}...");
    let suite = Suite::load(scale);

    println!("Predictor accuracy per benchmark ({scale:?} scale)\n");
    let mut t = TextTable::new(&[
        "benchmark",
        "always",
        "btfn",
        "2bc",
        "pap",
        "pap-spec",
        "gshare",
    ]);
    for entry in &suite.entries {
        let trace = &entry.trace;
        let branch_targets: Vec<(u32, u32)> = entry
            .workload
            .program
            .iter()
            .filter_map(|(pc, i)| {
                i.static_target()
                    .filter(|_| i.is_cond_branch())
                    .map(|t| (pc, t))
            })
            .collect();
        let mut predictors: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(AlwaysTaken::new()),
            Box::new(Btfn::new(&branch_targets)),
            Box::new(TwoBitCounter::new()),
            Box::new(PapAdaptive::with_config(2, false)),
            Box::new(PapAdaptive::with_config(2, true)),
            Box::new(Gshare::default()),
        ];
        let mut cells = vec![entry.workload.name.to_string()];
        for predictor in &mut predictors {
            let report = measure_accuracy(predictor.as_mut(), trace);
            cells.push(pct(report.accuracy()));
        }
        t.row(cells);
    }
    // The sixth SPECint92 benchmark, excluded by the paper as "more
    // predictable than the others" — shown here to reproduce the rationale.
    {
        let sc = dee_workloads::sc::build(suite.scale);
        let trace = sc.validate().unwrap_or_else(|e| panic!("{e}"));
        let branch_targets: Vec<(u32, u32)> = sc
            .program
            .iter()
            .filter_map(|(pc, i)| {
                i.static_target()
                    .filter(|_| i.is_cond_branch())
                    .map(|t| (pc, t))
            })
            .collect();
        let mut predictors: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(AlwaysTaken::new()),
            Box::new(Btfn::new(&branch_targets)),
            Box::new(TwoBitCounter::new()),
            Box::new(PapAdaptive::with_config(2, false)),
            Box::new(PapAdaptive::with_config(2, true)),
            Box::new(Gshare::default()),
        ];
        let mut cells = vec!["sc (excluded)".to_string()];
        for predictor in &mut predictors {
            cells.push(pct(measure_accuracy(predictor.as_mut(), &trace).accuracy()));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "characteristic 2bc accuracy of the evaluated five (harmonic mean): {}  (paper: 90.53%)\n",
        pct(suite.characteristic_accuracy())
    );

    println!("Delayed-resolution accuracy (2bc vs speculative PAp), §4.3:");
    let mut d = TextTable::new(&["delay (branches)", "2bc", "pap-spec"]);
    for delay in [0usize, 2, 4, 8, 16, 32] {
        let mut counter_hits = 0u64;
        let mut counter_total = 0u64;
        let mut pap_hits = 0u64;
        for entry in &suite.entries {
            let c = measure_accuracy_delayed(&mut TwoBitCounter::new(), &entry.trace, delay);
            counter_hits += c.hits;
            counter_total += c.branches;
            let s = measure_accuracy_delayed(
                &mut PapAdaptive::with_config(2, true),
                &entry.trace,
                delay,
            );
            pap_hits += s.hits;
        }
        d.row(vec![
            delay.to_string(),
            pct(counter_hits as f64 / counter_total.max(1) as f64),
            pct(pap_hits as f64 / counter_total.max(1) as f64),
        ]);
    }
    println!("{}", d.render());

    let path = t
        .write_csv(&format!("predictor_accuracy_{scale:?}.csv").to_lowercase())
        .expect("csv");
    let dpath = d
        .write_csv(&format!("predictor_delay_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {} and {}", path.display(), dpath.display());
}
