//! Static-analysis census of the benchmark suite: proves the shipped
//! workloads are lint-clean and publishes their static branch taxonomy.
//!
//! For each workload this runs the full `dee-analyze` lint battery and the
//! static branch census, then emits `results/workload_lint.csv` with one
//! row per workload: diagnostic counts (which must be zero — the binary
//! exits nonzero otherwise, making it a CI gate), program size, conditional
//! branch census (loop-back vs forward), reducibility, and the mean static
//! path length between branches — the static half of the paper's §4 DEE
//! tree inputs.
//!
//! Covers every registered workload — the paper five plus `synacor` and
//! `sc` — not just the default suite.
//!
//! Usage: `workload_lint [tiny|small|medium|large]`.

use dee_analyze::{analyze, BranchCensus};
use dee_bench::{f2, scale_from_args, TextTable};
use dee_workloads::WorkloadRegistry;

fn main() {
    let scale = scale_from_args();
    let scale_tag = format!("{scale:?}").to_ascii_lowercase();
    let mut table = TextTable::new(&[
        "workload",
        "scale",
        "instrs",
        "errors",
        "warnings",
        "branches",
        "loop_back",
        "forward",
        "reducible",
        "mean_static_path",
    ]);
    let mut dirty = 0usize;
    for w in WorkloadRegistry::builtin().build_all(scale) {
        let report = analyze(&w.program);
        if !report.is_clean() {
            eprint!("{}", report.render_text(&w.name));
            dirty += report.diagnostics().len();
        }
        let census = BranchCensus::build(&w.program);
        let loop_back = census.num_loop_back();
        table.row(vec![
            w.name.to_string(),
            scale_tag.clone(),
            w.program.len().to_string(),
            report.error_count().to_string(),
            report.warning_count().to_string(),
            census.num_branches().to_string(),
            loop_back.to_string(),
            (census.num_branches() - loop_back).to_string(),
            // All shipped workloads are structured, but record it rather
            // than assume it.
            {
                use dee_analyze::{flow::Flow, structure};
                let flow = Flow::new(w.program.instrs());
                let doms = structure::Doms::compute(&flow);
                u32::from(structure::find_loops(&flow, &doms).is_reducible()).to_string()
            },
            f2(census.mean_static_path_len()),
        ]);
    }
    println!("Static lint/census over the suite at {scale:?}:\n");
    println!("{}", table.render());
    match table.write_csv("workload_lint.csv") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    if dirty > 0 {
        eprintln!("{dirty} diagnostic(s) on shipped workloads");
        std::process::exit(1);
    }
}
