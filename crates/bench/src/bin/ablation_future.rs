//! The paper's stated future work (§1.2, §5.3): explicitly limited PEs and
//! non-unit instruction latencies.
//!
//! §5.3 leaves open: "It is not yet clear what the net effect of assuming
//! non-unit latencies on the DEE-CD-MF model will be. On one hand, in
//! other studies ... the performance of the models decreased significantly.
//! On the other hand, concurrent instructions in the DEE-CD-MF model may
//! exhibit much more overlap." This binary measures both effects on our
//! traces:
//!
//! 1. latency sweep (unit vs a classic 4-cycle-mul / 2-cycle-mem pipeline)
//!    for SP, SP-CD-MF, and DEE-CD-MF at E_T = 100 — reporting both IPC
//!    and speedup over the (equally slowed) sequential machine;
//! 2. explicit PE limits (issue-width caps) for DEE-CD-MF, showing where
//!    the implicit-PE assumption stops mattering.
//!
//! Additionally compares Levo's per-row predictor options (2-bit counter
//! vs speculative PAp, §4.3).
//!
//! Usage: `ablation_future [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use std::sync::Arc;

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_ilpsim::{harmonic_mean, simulate, LatencyModel, Model, SimConfig};
use dee_levo::{Levo, LevoConfig, PredictorKind};

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("ablation_future"));
    }
    let p = suite.characteristic_accuracy();
    let et = 100;

    // Each trace is prepared exactly once and shared by the latency and
    // PE-limit sweeps (the serial version re-prepared per cell).
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "ablation_future_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );
    let num_b = prepared.len();

    println!(
        "Non-unit latencies (mul/div 4, mem 2; E_T = {et}, p = {}):\n",
        f2(p)
    );
    let lat_models = [Model::Sp, Model::SpCdMf, Model::DeeCdMf, Model::Oracle];
    let mut lat_cells: Vec<(Model, usize)> = Vec::new();
    for model in lat_models {
        for b in 0..num_b {
            lat_cells.push((model, b));
        }
    }
    // One cell = both latency variants of one (model, benchmark), sharing
    // the prepared trace: (speedup unit, speedup classic, ipc unit, ipc
    // classic).
    let lat_flat = pool::run_sweep(
        "ablation_future_latency",
        jobs,
        lat_cells
            .iter()
            .map(|&(model, b)| {
                let prepared = Arc::clone(&prepared[b]);
                move || {
                    let unit = simulate(&prepared, &SimConfig::new(model, et).with_p(p));
                    let classic = simulate(
                        &prepared,
                        &SimConfig::new(model, et)
                            .with_p(p)
                            .with_latency(LatencyModel::CLASSIC),
                    );
                    (unit.speedup(), classic.speedup(), unit.ipc(), classic.ipc())
                }
            })
            .collect(),
    );
    let mut lat = TextTable::new(&[
        "model",
        "speedup unit",
        "speedup classic",
        "ipc unit",
        "ipc classic",
    ]);
    for (mi, model) in lat_models.iter().enumerate() {
        let group = &lat_flat[mi * num_b..(mi + 1) * num_b];
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            f2(harmonic_mean(&group.iter().map(f).collect::<Vec<f64>>()))
        };
        lat.row(vec![
            model.name().into(),
            col(|c| c.0),
            col(|c| c.1),
            col(|c| c.2),
            col(|c| c.3),
        ]);
    }
    println!("{}", lat.render());

    println!("Explicit PE limits (DEE-CD-MF, unit latency, E_T = {et}):\n");
    let caps: [Option<u32>; 7] = [
        Some(2),
        Some(4),
        Some(8),
        Some(16),
        Some(32),
        Some(64),
        None,
    ];
    let mut pe_cells: Vec<(Option<u32>, usize)> = Vec::new();
    for &cap in &caps {
        for b in 0..num_b {
            pe_cells.push((cap, b));
        }
    }
    let pe_flat = pool::run_sweep(
        "ablation_future_pe",
        jobs,
        pe_cells
            .iter()
            .map(|&(cap, b)| {
                let prepared = Arc::clone(&prepared[b]);
                move || {
                    let mut config = SimConfig::new(Model::DeeCdMf, et).with_p(p);
                    if let Some(cap) = cap {
                        config = config.with_max_pe(cap);
                    }
                    simulate(&prepared, &config).speedup()
                }
            })
            .collect(),
    );
    let mut pes = TextTable::new(&["max PEs/cycle", "HM speedup"]);
    for (ci, &cap) in caps.iter().enumerate() {
        let label = cap.map_or("unlimited".to_string(), |c| c.to_string());
        let hm = harmonic_mean(&pe_flat[ci * num_b..(ci + 1) * num_b]);
        pes.row(vec![label, f2(hm)]);
    }
    println!("{}", pes.render());

    println!("Levo per-row predictor (§4.3), 3 x 1-col DEE paths:\n");
    let levo_flat = pool::run_sweep(
        "ablation_future_levo",
        jobs,
        suite
            .entries
            .iter()
            .map(|entry| {
                move || {
                    let w = &entry.workload;
                    let two_bit = Levo::new(LevoConfig::default())
                        .run(&w.program, &w.initial_memory)
                        .expect("levo 2bc runs");
                    let pap = Levo::new(LevoConfig {
                        predictor: PredictorKind::PapSpeculative,
                        ..LevoConfig::default()
                    })
                    .run(&w.program, &w.initial_memory)
                    .expect("levo pap runs");
                    assert_eq!(two_bit.output, w.expected_output);
                    assert_eq!(pap.output, w.expected_output);
                    (two_bit.ipc(), pap.ipc())
                }
            })
            .collect(),
    );
    let mut pred = TextTable::new(&["benchmark", "ipc 2bc", "ipc pap-spec"]);
    for (entry, &(two_bit, pap)) in suite.entries.iter().zip(&levo_flat) {
        pred.row(vec![entry.workload.name.clone(), f2(two_bit), f2(pap)]);
    }
    println!("{}", pred.render());

    let path = lat
        .write_csv(&format!("ablation_future_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    enforce_max_rss(max_rss);
}
