//! The paper's stated future work (§1.2, §5.3): explicitly limited PEs and
//! non-unit instruction latencies.
//!
//! §5.3 leaves open: "It is not yet clear what the net effect of assuming
//! non-unit latencies on the DEE-CD-MF model will be. On one hand, in
//! other studies ... the performance of the models decreased significantly.
//! On the other hand, concurrent instructions in the DEE-CD-MF model may
//! exhibit much more overlap." This binary measures both effects on our
//! traces:
//!
//! 1. latency sweep (unit vs a classic 4-cycle-mul / 2-cycle-mem pipeline)
//!    for SP, SP-CD-MF, and DEE-CD-MF at E_T = 100 — reporting both IPC
//!    and speedup over the (equally slowed) sequential machine;
//! 2. explicit PE limits (issue-width caps) for DEE-CD-MF, showing where
//!    the implicit-PE assumption stops mattering.
//!
//! Additionally compares Levo's per-row predictor options (2-bit counter
//! vs speculative PAp, §4.3).
//!
//! Usage: `ablation_future [tiny|small|medium|large]`.

use dee_bench::{f2, scale_from_args, Suite, TextTable};
use dee_ilpsim::{harmonic_mean, simulate, LatencyModel, Model, SimConfig};
use dee_levo::{Levo, LevoConfig, PredictorKind};

fn main() {
    let scale = scale_from_args();
    eprintln!("loading suite at {scale:?}...");
    let suite = Suite::load(scale);
    let p = suite.characteristic_accuracy();
    let et = 100;

    println!(
        "Non-unit latencies (mul/div 4, mem 2; E_T = {et}, p = {}):\n",
        f2(p)
    );
    let mut lat = TextTable::new(&[
        "model",
        "speedup unit",
        "speedup classic",
        "ipc unit",
        "ipc classic",
    ]);
    for model in [Model::Sp, Model::SpCdMf, Model::DeeCdMf, Model::Oracle] {
        let mut s_unit = Vec::new();
        let mut s_classic = Vec::new();
        let mut i_unit = Vec::new();
        let mut i_classic = Vec::new();
        for entry in &suite.entries {
            let prepared = entry.prepare();
            let unit = simulate(&prepared, &SimConfig::new(model, et).with_p(p));
            let classic = simulate(
                &prepared,
                &SimConfig::new(model, et)
                    .with_p(p)
                    .with_latency(LatencyModel::CLASSIC),
            );
            s_unit.push(unit.speedup());
            s_classic.push(classic.speedup());
            i_unit.push(unit.ipc());
            i_classic.push(classic.ipc());
        }
        lat.row(vec![
            model.name().into(),
            f2(harmonic_mean(&s_unit)),
            f2(harmonic_mean(&s_classic)),
            f2(harmonic_mean(&i_unit)),
            f2(harmonic_mean(&i_classic)),
        ]);
    }
    println!("{}", lat.render());

    println!("Explicit PE limits (DEE-CD-MF, unit latency, E_T = {et}):\n");
    let mut pes = TextTable::new(&["max PEs/cycle", "HM speedup"]);
    for cap in [2u32, 4, 8, 16, 32, 64] {
        let values: Vec<f64> = suite
            .entries
            .iter()
            .map(|e| {
                let prepared = e.prepare();
                simulate(
                    &prepared,
                    &SimConfig::new(Model::DeeCdMf, et)
                        .with_p(p)
                        .with_max_pe(cap),
                )
                .speedup()
            })
            .collect();
        pes.row(vec![cap.to_string(), f2(harmonic_mean(&values))]);
    }
    let unlimited: Vec<f64> = suite
        .entries
        .iter()
        .map(|e| {
            let prepared = e.prepare();
            simulate(&prepared, &SimConfig::new(Model::DeeCdMf, et).with_p(p)).speedup()
        })
        .collect();
    pes.row(vec!["unlimited".into(), f2(harmonic_mean(&unlimited))]);
    println!("{}", pes.render());

    println!("Levo per-row predictor (§4.3), 3 x 1-col DEE paths:\n");
    let mut pred = TextTable::new(&["benchmark", "ipc 2bc", "ipc pap-spec"]);
    for entry in &suite.entries {
        let w = &entry.workload;
        let two_bit = Levo::new(LevoConfig::default())
            .run(&w.program, &w.initial_memory)
            .expect("levo 2bc runs");
        let pap = Levo::new(LevoConfig {
            predictor: PredictorKind::PapSpeculative,
            ..LevoConfig::default()
        })
        .run(&w.program, &w.initial_memory)
        .expect("levo pap runs");
        assert_eq!(two_bit.output, w.expected_output);
        assert_eq!(pap.output, w.expected_output);
        pred.row(vec![w.name.into(), f2(two_bit.ipc()), f2(pap.ipc())]);
    }
    println!("{}", pred.render());

    let path = lat
        .write_csv(&format!("ablation_future_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
}
