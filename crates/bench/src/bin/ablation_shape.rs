//! Tree-shape ablation: is the §3.1 static heuristic's `(l, h_DEE)` split
//! actually the right one?
//!
//! §5.3 hints the heuristic is imperfect: "performance would be improved
//! if these branches were DEE'd earlier, at lower levels of E_T branch
//! path resources. This implies that DEE paths could be usefully employed
//! with many fewer than 32 branch path resources." This experiment fixes
//! E_T = 100 and sweeps `h_DEE` directly (with `l = E_T − h(h+1)/2`),
//! comparing each shape's DEE-CD-MF speedup against the heuristic's pick.
//!
//! Usage: `ablation_shape [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use std::sync::Arc;

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable,
};
use dee_core::{StaticTree, TreeParams};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("ablation_shape"));
    }
    let p = suite.characteristic_accuracy();
    let et = 100u32;
    let heuristic = StaticTree::build(TreeParams {
        p: p.clamp(0.5, 0.9999),
        et,
    });

    println!(
        "DEE-CD-MF tree-shape sweep at E_T = {et} (measured p = {}; heuristic picks l = {}, h = {})\n",
        f2(p),
        heuristic.mainline_len(),
        heuristic.h_dee()
    );

    // Each trace is prepared once (the serial version re-prepared it for
    // every swept h, and again for the heuristic comparison).
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "ablation_shape_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );
    let hs: Vec<u32> = [0u32, 2, 4, 6, 8, 10, 11, 12, 13]
        .into_iter()
        .filter(|h| h * (h + 1) / 2 < et)
        .collect();
    // Swept shapes, plus the heuristic's own (l, h) as a final extra cell
    // group for the "within x% of best" comparison.
    let mut shapes: Vec<(u32, u32)> = hs.iter().map(|&h| (et - h * (h + 1) / 2, h)).collect();
    shapes.push((heuristic.mainline_len(), heuristic.h_dee()));

    let num_b = prepared.len();
    let mut cells: Vec<(u32, u32, usize)> = Vec::new();
    for &(l, h) in &shapes {
        for b in 0..num_b {
            cells.push((l, h, b));
        }
    }
    let flat = pool::run_sweep(
        "ablation_shape",
        jobs,
        cells
            .iter()
            .map(|&(l, h, b)| {
                let prepared = Arc::clone(&prepared[b]);
                move || {
                    simulate(
                        &prepared,
                        &SimConfig::new(Model::DeeCdMf, et)
                            .with_p(p)
                            .with_dee_shape(l, h),
                    )
                    .speedup()
                }
            })
            .collect(),
    );
    let hm_of_shape = |si: usize| harmonic_mean(&flat[si * num_b..(si + 1) * num_b]);

    let mut t = TextTable::new(&["h_DEE", "l", "HM speedup", "note"]);
    let mut best = (0u32, 0.0f64);
    for (si, &h) in hs.iter().enumerate() {
        let l = et - h * (h + 1) / 2;
        let hm = hm_of_shape(si);
        if hm > best.1 {
            best = (h, hm);
        }
        let note = if h == heuristic.h_dee() {
            "<- heuristic"
        } else {
            ""
        };
        t.row(vec![h.to_string(), l.to_string(), f2(hm), note.into()]);
    }
    println!("{}", t.render());
    println!(
        "best swept shape: h = {} at {}x; heuristic is within {:.1}% of it",
        best.0,
        f2(best.1),
        100.0 * (1.0 - hm_of_shape(shapes.len() - 1) / best.1)
    );
    let path = t
        .write_csv(&format!("ablation_shape_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    enforce_max_rss(max_rss);
}
