//! Figure 5: speedups of the seven resource-constrained models over the
//! five benchmarks, plus the harmonic mean and per-benchmark oracle
//! speedups.
//!
//! Usage: `fig5 [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]` (default small; the
//! paper-grade run is `medium`). Writes `results/fig5_<scale>.csv`.
//!
//! The DEE tree shape uses the suite's measured characteristic accuracy,
//! following §3.1 step 1 (the paper measured 90.53% on SPECint92 with the
//! same 2-bit counter scheme).
//!
//! Every (benchmark, model, E_T) cell fans through [`dee_bench::pool`];
//! each benchmark is prepared exactly once and shared across its cells, so
//! output is byte-identical for any `--jobs` count.

use std::sync::Arc;

use dee_bench::plot::{render_panels, write_svg, Panel, Series};
use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pool,
    scale_from_args, store_from_args, workloads_from_args, Suite, TextTable, FIG5_RESOURCES,
};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("fig5"));
    }
    let p = suite.characteristic_accuracy();
    println!("Figure 5 — speedup vs branch-path resources ({scale:?} scale)");
    println!(
        "characteristic accuracy p = {} (paper: 90.53%)\n",
        f2(p * 100.0)
    );

    let models = Model::all_constrained();

    // One prepared trace per workload, shared by every cell below.
    let prepared: Vec<Arc<_>> = pool::run_sweep(
        "fig5_prepare",
        jobs,
        suite
            .entries
            .iter()
            .map(|e| move || Arc::new(e.prepare_chunked(chunk)))
            .collect(),
    );

    // Cell grid: the oracle for each benchmark, then (benchmark, model,
    // E_T). Results come back in exactly this order regardless of --jobs.
    let num_b = suite.entries.len();
    let mut cells: Vec<(usize, Option<(Model, u32)>)> = Vec::new();
    for b in 0..num_b {
        cells.push((b, None));
    }
    for b in 0..num_b {
        for model in models {
            for &et in &FIG5_RESOURCES {
                cells.push((b, Some((model, et))));
            }
        }
    }
    let tasks: Vec<_> = cells
        .iter()
        .map(|&(b, cfg)| {
            let prepared = Arc::clone(&prepared[b]);
            move || match cfg {
                None => simulate(&prepared, &SimConfig::new(Model::Oracle, 0)).speedup(),
                Some((model, et)) => {
                    simulate(&prepared, &SimConfig::new(model, et).with_p(p)).speedup()
                }
            }
        })
        .collect();
    let flat = pool::run_sweep("fig5", jobs, tasks);

    let oracles: Vec<f64> = flat[..num_b].to_vec();
    // speedups[benchmark][model][et]
    let per_bench = models.len() * FIG5_RESOURCES.len();
    let speedups: Vec<Vec<Vec<f64>>> = (0..num_b)
        .map(|b| {
            (0..models.len())
                .map(|mi| {
                    (0..FIG5_RESOURCES.len())
                        .map(|ei| flat[num_b + b * per_bench + mi * FIG5_RESOURCES.len() + ei])
                        .collect()
                })
                .collect()
        })
        .collect();

    let mut csv = TextTable::new(&["benchmark", "model", "et", "speedup"]);
    for (b, entry) in suite.entries.iter().enumerate() {
        let name = entry.workload.name.as_str();
        let mut header: Vec<&str> = vec!["model"];
        let et_labels: Vec<String> = FIG5_RESOURCES.iter().map(u32::to_string).collect();
        header.extend(et_labels.iter().map(String::as_str));
        let mut table = TextTable::new(&header);

        for (mi, model) in models.iter().enumerate() {
            let mut row_cells = vec![model.name().to_string()];
            for (ei, &et) in FIG5_RESOURCES.iter().enumerate() {
                let speedup = speedups[b][mi][ei];
                row_cells.push(f2(speedup));
                csv.row(vec![
                    name.into(),
                    model.name().into(),
                    et.to_string(),
                    format!("{speedup:.4}"),
                ]);
            }
            table.row(row_cells);
        }

        println!("{name}  (oracle speedup: {})", f2(oracles[b]));
        println!("{}", table.render());
    }

    // Harmonic-mean panel.
    let mut header: Vec<&str> = vec!["model"];
    let et_labels: Vec<String> = FIG5_RESOURCES.iter().map(u32::to_string).collect();
    header.extend(et_labels.iter().map(String::as_str));
    let mut hm_table = TextTable::new(&header);
    for (mi, model) in models.iter().enumerate() {
        let mut cells = vec![model.name().to_string()];
        for ei in 0..FIG5_RESOURCES.len() {
            let values: Vec<f64> = speedups.iter().map(|b| b[mi][ei]).collect();
            let hm = harmonic_mean(&values);
            cells.push(f2(hm));
            csv.row(vec![
                "harmonic-mean".into(),
                model.name().into(),
                FIG5_RESOURCES[ei].to_string(),
                format!("{hm:.4}"),
            ]);
        }
        hm_table.row(cells);
    }
    let hm_oracle = harmonic_mean(&oracles);
    println!("Harmonic Mean  (oracle speedup: {})", f2(hm_oracle));
    println!("{}", hm_table.render());

    let mut oracle_table = TextTable::new(&["benchmark", "oracle (measured)", "oracle (paper)"]);
    let paper_oracle = ["23.22", "25.86", "2810.48", "815.62", "104.35"];
    for (entry, (oracle, paper)) in suite
        .entries
        .iter()
        .zip(oracles.iter().zip(paper_oracle.iter()))
    {
        oracle_table.row(vec![
            entry.workload.name.clone(),
            f2(*oracle),
            (*paper).into(),
        ]);
        csv.row(vec![
            entry.workload.name.clone(),
            "Oracle".into(),
            "0".into(),
            format!("{oracle:.4}"),
        ]);
    }
    oracle_table.row(vec!["harmonic-mean".into(), f2(hm_oracle), "53.82".into()]);
    println!("Oracle speedups (paper values from Figure 5 captions):");
    println!("{}", oracle_table.render());

    let path = csv
        .write_csv(&format!("fig5_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());

    // Regenerate the figure itself: six panels, as in the paper.
    let mut panels: Vec<Panel> = Vec::new();
    for (bench_idx, entry) in suite.entries.iter().enumerate() {
        panels.push(Panel {
            title: entry.workload.name.to_string(),
            oracle: Some(oracles[bench_idx]),
            series: models
                .iter()
                .enumerate()
                .map(|(mi, model)| Series {
                    name: model.name().to_string(),
                    points: FIG5_RESOURCES
                        .iter()
                        .enumerate()
                        .map(|(ei, &et)| (f64::from(et), speedups[bench_idx][mi][ei]))
                        .collect(),
                })
                .collect(),
        });
    }
    panels.push(Panel {
        title: "Harmonic Mean".to_string(),
        oracle: Some(hm_oracle),
        series: models
            .iter()
            .enumerate()
            .map(|(mi, model)| Series {
                name: model.name().to_string(),
                points: FIG5_RESOURCES
                    .iter()
                    .enumerate()
                    .map(|(ei, &et)| {
                        let values: Vec<f64> = speedups.iter().map(|b| b[mi][ei]).collect();
                        (f64::from(et), harmonic_mean(&values))
                    })
                    .collect(),
            })
            .collect(),
    });
    let svg = render_panels(&panels, &FIG5_RESOURCES);
    let svg_path = write_svg(&format!("fig5_{scale:?}.svg").to_lowercase(), &svg).expect("svg");
    println!("wrote {}", svg_path.display());
    enforce_max_rss(max_rss);
}
