//! Figure 2: the static DEE assignment tree for p = 0.90, E_T = 34.
//!
//! Regenerates the heuristic tree of §3.1: main-line length l = 24,
//! h_DEE = 4, a triangular DEE region of 10 paths, and the cumulative
//! probability labels along the main line and the DEE paths.

use dee_bench::{f2, TextTable};
use dee_core::{log_p_not_p, StaticTree, TreeParams};

fn main() {
    let params = TreeParams { p: 0.90, et: 34 };
    let tree = StaticTree::build(params);
    println!(
        "Figure 2 — static DEE tree, p = {}, E_T = {}\n",
        params.p, params.et
    );

    let mut dims = TextTable::new(&["quantity", "measured", "paper"]);
    dims.row(vec![
        "main-line length l".into(),
        tree.mainline_len().to_string(),
        "24".into(),
    ]);
    dims.row(vec!["h_DEE".into(), tree.h_dee().to_string(), "4".into()]);
    dims.row(vec![
        "DEE-region paths".into(),
        tree.dee_region_paths().to_string(),
        "10".into(),
    ]);
    dims.row(vec![
        "total paths".into(),
        tree.total_paths().to_string(),
        "34".into(),
    ]);
    dims.row(vec![
        "log_p(1-p)".into(),
        f2(log_p_not_p(params.p)),
        "21.85".into(),
    ]);
    dims.row(vec![
        "formulas valid".into(),
        tree.formulas_valid().to_string(),
        "true".into(),
    ]);
    println!("{}", dims.render());

    println!("Main-line cumulative probabilities (first 6; paper labels .90 .81 .73 .66):");
    let ml = tree.mainline_cps();
    let labels: Vec<String> = ml.iter().take(6).map(|&cp| f2(cp)).collect();
    println!("  {}\n", labels.join(" "));

    println!("DEE region (triangular; row k = DEE path at branch B_k):");
    let mut region = TextTable::new(&["branch", "coverage (paths)", "cp of extensions"]);
    for k in 1..=tree.h_dee() {
        let cov = tree.coverage_at_level(k);
        let cps: Vec<String> = (0..cov).map(|j| f2(tree.dee_path_cp(k, j))).collect();
        region.row(vec![format!("B{k}"), cov.to_string(), cps.join(" ")]);
    }
    println!("{}", region.render());

    let closed = StaticTree::build_closed_form(params);
    println!(
        "Closed-form formulas give l = {}, h = {} — {} the greedy construction.",
        closed.mainline_len(),
        closed.h_dee(),
        if closed.mainline_len() == tree.mainline_len() && closed.h_dee() == tree.h_dee() {
            "matching"
        } else {
            "DIFFERING from"
        }
    );
    let path = dims.write_csv("fig2_dimensions.csv").expect("csv");
    println!("\nwrote {}", path.display());
}
