//! §4 Levo machine evaluation: IPC with and without DEE paths, DEE
//! recovery statistics, loop capture, and IQ geometry sweeps.
//!
//! Reproduces the §4.2 loop-capture observation ("more than 70% of the
//! conditional-backwards-branch-formed dynamic loops' executions fit in an
//! IQ of length 32") and quantifies what the DEE columns buy the machine
//! model — every configuration is validated to produce bit-identical
//! program output.
//!
//! Usage: `levo_eval [tiny|small|medium|large]` (default small; Levo is a
//! detailed model, so large scales take a while).

use dee_bench::{f2, pct, scale_from_args, TextTable};
use dee_levo::{Levo, LevoConfig};
use dee_workloads::{all_workloads, Scale};

fn main() {
    let scale = scale_from_args();
    let workloads = all_workloads(scale);

    println!("Levo machine model ({scale:?} scale)\n");
    let mut t = TextTable::new(&[
        "benchmark",
        "ipc condel2",
        "ipc 3x1",
        "ipc 11x2",
        "dee-covered",
        "injected",
        "loop capture",
    ]);
    for w in &workloads {
        eprintln!("running {} on three configurations...", w.name);
        let base = Levo::new(LevoConfig::condel2())
            .run(&w.program, &w.initial_memory)
            .expect("condel2 runs");
        let small = Levo::new(LevoConfig::default())
            .run(&w.program, &w.initial_memory)
            .expect("3x1 runs");
        let large = Levo::new(LevoConfig::levo_100())
            .run(&w.program, &w.initial_memory)
            .expect("11x2 runs");
        assert_eq!(base.output, w.expected_output, "{}: condel2 output", w.name);
        assert_eq!(small.output, w.expected_output, "{}: 3x1 output", w.name);
        assert_eq!(large.output, w.expected_output, "{}: 11x2 output", w.name);
        let covered = if large.mispredicts == 0 {
            "-".to_string()
        } else {
            pct(large.dee_covered as f64 / large.mispredicts as f64)
        };
        t.row(vec![
            w.name.into(),
            f2(base.ipc()),
            f2(small.ipc()),
            f2(large.ipc()),
            covered,
            large.dee_injected.to_string(),
            large.loop_capture_rate().map_or("-".into(), pct),
        ]);
    }
    println!("{}", t.render());
    println!("(paper §4.2: >70% of backward-branch loops fit an IQ of 32 rows)\n");

    println!("IQ geometry sweep (xlisp, DEE 3x1):");
    let mut g = TextTable::new(&["n x m", "ipc", "window shifts", "squashed"]);
    let w = workloads
        .iter()
        .find(|w| w.name == "xlisp")
        .expect("xlisp present");
    for (n, m) in [(16, 4), (16, 8), (32, 4), (32, 8), (64, 8), (64, 16)] {
        let config = LevoConfig {
            n,
            m,
            ..LevoConfig::default()
        };
        let report = Levo::new(config)
            .run(&w.program, &w.initial_memory)
            .expect("geometry runs");
        assert_eq!(report.output, w.expected_output);
        g.row(vec![
            format!("{n}x{m}"),
            f2(report.ipc()),
            report.window_shifts.to_string(),
            report.squashed.to_string(),
        ]);
    }
    println!("{}", g.render());

    println!("DEE path count sweep (xlisp, 1-column paths):");
    let mut d = TextTable::new(&["dee paths", "ipc", "covered mispredicts", "injected"]);
    for paths in [0usize, 1, 2, 3, 5, 8, 11] {
        let config = LevoConfig {
            dee_paths: paths,
            ..LevoConfig::default()
        };
        let report = Levo::new(config)
            .run(&w.program, &w.initial_memory)
            .expect("dee sweep runs");
        assert_eq!(report.output, w.expected_output);
        d.row(vec![
            paths.to_string(),
            f2(report.ipc()),
            report.dee_covered.to_string(),
            report.dee_injected.to_string(),
        ]);
    }
    println!("{}", d.render());

    let path = t
        .write_csv(&format!("levo_eval_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    let _ = Scale::all(); // keep Scale in scope for docs
}
