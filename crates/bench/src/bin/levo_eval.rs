//! §4 Levo machine evaluation: IPC with and without DEE paths, DEE
//! recovery statistics, loop capture, and IQ geometry sweeps.
//!
//! Reproduces the §4.2 loop-capture observation ("more than 70% of the
//! conditional-backwards-branch-formed dynamic loops' executions fit in an
//! IQ of length 32") and quantifies what the DEE columns buy the machine
//! model — every configuration is validated to produce bit-identical
//! program output.
//!
//! Usage: `levo_eval [tiny|small|medium|large] [--jobs N] [--max-rss BYTES]`
//! (default small; Levo is a detailed model, so large scales take a while).

use dee_bench::{enforce_max_rss, f2, max_rss_from_args, pct, pool, scale_from_args, TextTable};
use dee_levo::{Levo, LevoConfig};
use dee_workloads::{all_workloads, Scale, Workload};

/// Runs one Levo configuration on one workload and validates its output.
fn run_validated(w: &Workload, config: LevoConfig, what: &str) -> dee_levo::LevoReport {
    let report = Levo::new(config)
        .run(&w.program, &w.initial_memory)
        .unwrap_or_else(|e| panic!("{}: {what} failed: {e}", w.name));
    assert_eq!(
        report.output, w.expected_output,
        "{}: {what} output",
        w.name
    );
    report
}

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let max_rss = max_rss_from_args();
    let workloads = all_workloads(scale);

    println!("Levo machine model ({scale:?} scale)\n");
    // One cell per (workload, configuration) — Levo runs dominate this
    // binary's wall-clock, so they all fan through the pool.
    type ConfigMaker = fn() -> LevoConfig;
    let configs: [(&str, ConfigMaker); 3] = [
        ("condel2", LevoConfig::condel2),
        ("3x1", LevoConfig::default),
        ("11x2", LevoConfig::levo_100),
    ];
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for ci in 0..configs.len() {
            cells.push((wi, ci));
        }
    }
    let flat = pool::run_sweep(
        "levo_eval",
        jobs,
        cells
            .iter()
            .map(|&(wi, ci)| {
                let w = &workloads[wi];
                let (what, make) = configs[ci];
                move || run_validated(w, make(), what)
            })
            .collect(),
    );

    let mut t = TextTable::new(&[
        "benchmark",
        "ipc condel2",
        "ipc 3x1",
        "ipc 11x2",
        "dee-covered",
        "injected",
        "loop capture",
    ]);
    for (wi, w) in workloads.iter().enumerate() {
        let base = &flat[wi * configs.len()];
        let small = &flat[wi * configs.len() + 1];
        let large = &flat[wi * configs.len() + 2];
        let covered = if large.mispredicts == 0 {
            "-".to_string()
        } else {
            pct(large.dee_covered as f64 / large.mispredicts as f64)
        };
        t.row(vec![
            w.name.clone(),
            f2(base.ipc()),
            f2(small.ipc()),
            f2(large.ipc()),
            covered,
            large.dee_injected.to_string(),
            large.loop_capture_rate().map_or("-".into(), pct),
        ]);
    }
    println!("{}", t.render());
    println!("(paper §4.2: >70% of backward-branch loops fit an IQ of 32 rows)\n");

    println!("IQ geometry sweep (xlisp, DEE 3x1):");
    let w = workloads
        .iter()
        .find(|w| w.name == "xlisp")
        .expect("xlisp present");
    let geometries = [(16, 4), (16, 8), (32, 4), (32, 8), (64, 8), (64, 16)];
    let geo_flat = pool::run_sweep(
        "levo_eval_geometry",
        jobs,
        geometries
            .iter()
            .map(|&(n, m)| {
                move || {
                    run_validated(
                        w,
                        LevoConfig {
                            n,
                            m,
                            ..LevoConfig::default()
                        },
                        "geometry",
                    )
                }
            })
            .collect(),
    );
    let mut g = TextTable::new(&["n x m", "ipc", "window shifts", "squashed"]);
    for (&(n, m), report) in geometries.iter().zip(&geo_flat) {
        g.row(vec![
            format!("{n}x{m}"),
            f2(report.ipc()),
            report.window_shifts.to_string(),
            report.squashed.to_string(),
        ]);
    }
    println!("{}", g.render());

    println!("DEE path count sweep (xlisp, 1-column paths):");
    let path_counts = [0usize, 1, 2, 3, 5, 8, 11];
    let dee_flat = pool::run_sweep(
        "levo_eval_dee_paths",
        jobs,
        path_counts
            .iter()
            .map(|&paths| {
                move || {
                    run_validated(
                        w,
                        LevoConfig {
                            dee_paths: paths,
                            ..LevoConfig::default()
                        },
                        "dee sweep",
                    )
                }
            })
            .collect(),
    );
    let mut d = TextTable::new(&["dee paths", "ipc", "covered mispredicts", "injected"]);
    for (&paths, report) in path_counts.iter().zip(&dee_flat) {
        d.row(vec![
            paths.to_string(),
            f2(report.ipc()),
            report.dee_covered.to_string(),
            report.dee_injected.to_string(),
        ]);
    }
    println!("{}", d.render());

    let path = t
        .write_csv(&format!("levo_eval_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    let _ = Scale::all(); // keep Scale in scope for docs
    enforce_max_rss(max_rss);
}
