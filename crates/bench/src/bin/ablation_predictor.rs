//! Predictor-tradeoff ablation (§5.1): "There is a tradeoff between
//! predictor accuracy and its cost versus degree of DEE realization and
//! its cost, for the same performance. The data suggest that some use of
//! DEE is likely to be beneficial, regardless of the predictor accuracy."
//!
//! Prepares the traces under different predictors (static BTFN, the
//! paper's 2-bit counter, PAp, gshare) and reports SP-CD-MF vs DEE-CD-MF
//! harmonic means at E_T = 100 — each tree shaped with that predictor's
//! own measured accuracy. The DEE advantage should survive every
//! predictor, largest where prediction is worst.
//!
//! Usage: `ablation_predictor [tiny|small|medium|large] [--jobs N] [--store DIR] [--workloads LIST] [--engine decoded|interp] [--chunk-records N] [--max-rss BYTES]`.

use dee_bench::{
    chunk_records_from_args, enforce_max_rss, engine_from_args, f2, max_rss_from_args, pct, pool,
    scale_from_args, store_from_args, workloads_from_args, BenchEntry, Suite, TextTable,
};
use dee_ilpsim::{harmonic_mean, simulate, Model, SimConfig};
use dee_predict::{BranchPredictor, Btfn, Gshare, PapAdaptive, TwoBitCounter};

/// Prepares one entry under one predictor kind; the prepared trace is
/// shared by the SP-CD-MF and DEE-CD-MF simulations of the cell.
fn run_cell(kind: &str, entry: &BenchEntry, et: u32, chunk: usize) -> (f64, f64, f64) {
    let mut predictor: Box<dyn BranchPredictor> = match kind {
        "btfn" => {
            let targets: Vec<(u32, u32)> = entry
                .workload
                .program
                .iter()
                .filter_map(|(pc, i)| {
                    i.static_target()
                        .filter(|_| i.is_cond_branch())
                        .map(|t| (pc, t))
                })
                .collect();
            Box::new(Btfn::new(&targets))
        }
        "2bc" => Box::new(TwoBitCounter::new()),
        "pap-spec" => Box::new(PapAdaptive::with_config(2, true)),
        _ => Box::new(Gshare::default()),
    };
    let prepared = entry.prepare_chunked_with(chunk, predictor.as_mut());
    let p = prepared.accuracy();
    let sp = simulate(&prepared, &SimConfig::new(Model::SpCdMf, et).with_p(p)).speedup();
    let dee = simulate(&prepared, &SimConfig::new(Model::DeeCdMf, et).with_p(p)).speedup();
    (p, sp, dee)
}

fn main() {
    let scale = scale_from_args();
    let jobs = pool::jobs_from_args();
    let chunk = chunk_records_from_args();
    let max_rss = max_rss_from_args();
    eprintln!("loading suite at {scale:?}...");
    let store = store_from_args();
    let engine = engine_from_args();
    let workloads = workloads_from_args();
    let suite = Suite::load_selected_with(scale, &workloads, store.as_ref(), engine)
        .unwrap_or_else(|e| panic!("--workloads: {e}"));
    if let Some(store) = &store {
        eprintln!("{}", store.stats().timing_line("ablation_predictor"));
    }
    let et = 100;

    println!("Predictor tradeoff at E_T = {et} (harmonic means):\n");
    let kinds: [&str; 4] = ["btfn", "2bc", "pap-spec", "gshare"];
    let mut cells: Vec<(&str, &BenchEntry)> = Vec::new();
    for kind in kinds {
        for entry in &suite.entries {
            cells.push((kind, entry));
        }
    }
    let flat = pool::run_sweep(
        "ablation_predictor",
        jobs,
        cells
            .iter()
            .map(|&(kind, entry)| move || run_cell(kind, entry, et, chunk))
            .collect(),
    );

    let mut t = TextTable::new(&["predictor", "accuracy", "SP-CD-MF", "DEE-CD-MF", "DEE gain"]);
    let num_b = suite.entries.len();
    for (ki, kind) in kinds.iter().enumerate() {
        let group = &flat[ki * num_b..(ki + 1) * num_b];
        let accs: Vec<f64> = group.iter().map(|c| c.0).collect();
        let sp: Vec<f64> = group.iter().map(|c| c.1).collect();
        let dee: Vec<f64> = group.iter().map(|c| c.2).collect();
        let sp_hm = harmonic_mean(&sp);
        let dee_hm = harmonic_mean(&dee);
        t.row(vec![
            (*kind).into(),
            pct(harmonic_mean(&accs)),
            f2(sp_hm),
            f2(dee_hm),
            format!("{}x", f2(dee_hm / sp_hm)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(§5.1: \"some use of DEE is likely to be beneficial, regardless of the\n predictor accuracy\" — the DEE column should dominate on every row)"
    );
    let path = t
        .write_csv(&format!("ablation_predictor_{scale:?}.csv").to_lowercase())
        .expect("csv");
    println!("wrote {}", path.display());
    enforce_max_rss(max_rss);
}
