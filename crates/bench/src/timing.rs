//! A minimal, dependency-free timing harness for the `cargo bench`
//! targets.
//!
//! The repo's convention is zero external crates, so the benches cannot
//! use Criterion; this harness covers what they need: warm up, run a
//! closure until a time budget is spent, and report mean/min wall time per
//! iteration plus optional element throughput. Results are indicative (no
//! outlier rejection or statistics beyond min/mean) — the experiment
//! binaries remain the source of record for paper numbers.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (after warmup).
const BUDGET: Duration = Duration::from_millis(300);
/// Warmup time before measurement starts.
const WARMUP: Duration = Duration::from_millis(50);
/// Upper bound on measured iterations, for very fast closures.
const MAX_ITERS: u32 = 100_000;

/// One benchmark group, printed with a shared name prefix.
pub struct Group {
    prefix: String,
    /// Elements processed per iteration (enables throughput output).
    elements: Option<u64>,
}

impl Group {
    /// Starts a named group.
    #[must_use]
    pub fn new(prefix: &str) -> Self {
        Group {
            prefix: prefix.to_string(),
            elements: None,
        }
    }

    /// Reports throughput as `elements` per iteration (e.g. dynamic
    /// instructions).
    #[must_use]
    pub fn throughput(mut self, elements: u64) -> Self {
        self.elements = Some(elements);
        self
    }

    /// Times `f` and prints one result line; returns mean ns/iter.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> f64 {
        // Warmup.
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(f());
        }
        // Measure.
        let mut iters = 0u32;
        let mut min = Duration::MAX;
        let start = Instant::now();
        while start.elapsed() < BUDGET && iters < MAX_ITERS {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            min = min.min(dt);
            iters += 1;
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() as f64 / f64::from(iters.max(1));
        let mut line = format!(
            "{}/{name:<24} {iters:>7} iters  mean {:>12.0} ns  min {:>12.0} ns",
            self.prefix,
            mean_ns,
            min.as_nanos() as f64,
        );
        if let Some(elements) = self.elements {
            let per_sec = elements as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  {:>8.2} M elem/s", per_sec / 1e6));
        }
        println!("{line}");
        mean_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_mean() {
        let mean = Group::new("test")
            .throughput(10)
            .bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(mean > 0.0);
    }
}
