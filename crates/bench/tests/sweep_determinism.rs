//! Byte-determinism of the parallel sweep engine.
//!
//! The contract from DESIGN.md §8: a sweep binary's output — stdout and
//! every file under `results/` — is a pure function of its inputs,
//! independent of `--jobs`. Each test here runs one converted binary at
//! tiny scale with `--jobs 1` and `--jobs 4` in separate scratch
//! directories and byte-compares everything, including against the
//! goldens committed under `results/` (so regeneration is provably a
//! no-op). The pool itself is additionally property-tested with seeded
//! pseudo-random job durations, which scramble completion order without
//! scrambling results.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use dee_bench::pool;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dee_sweep_det_{}_{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_args(exe: &str, dir: &Path, args: &[&str]) -> (String, String) {
    let output = Command::new(exe)
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn sweep binary");
    assert!(
        output.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8(output.stdout).expect("utf-8 stdout"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run(exe: &str, dir: &Path, jobs: &str) -> String {
    run_args(exe, dir, &["tiny", "--jobs", jobs]).0
}

/// Everything the run wrote under `results/`, sorted by name.
fn results_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("results"))
        .expect("sweep wrote a results dir")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().into_string().expect("utf-8 name");
            let bytes = std::fs::read(entry.path()).expect("read result file");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

fn check_binary(exe: &str, tag: &str) {
    let serial_dir = temp_dir(&format!("{tag}_j1"));
    let parallel_dir = temp_dir(&format!("{tag}_j4"));
    let serial_out = run(exe, &serial_dir, "1");
    let parallel_out = run(exe, &parallel_dir, "4");
    assert_eq!(
        serial_out, parallel_out,
        "{tag}: stdout differs between --jobs 1 and --jobs 4"
    );
    let serial_files = results_files(&serial_dir);
    let parallel_files = results_files(&parallel_dir);
    assert!(!serial_files.is_empty(), "{tag} wrote nothing to results/");
    assert_eq!(
        serial_files.len(),
        parallel_files.len(),
        "{tag}: file sets differ"
    );
    let goldens = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for ((name, serial), (parallel_name, parallel)) in serial_files.iter().zip(&parallel_files) {
        assert_eq!(name, parallel_name, "{tag}: file sets differ");
        assert!(
            serial == parallel,
            "{tag}: results/{name} differs between --jobs 1 and --jobs 4"
        );
        let golden = std::fs::read(goldens.join(name))
            .unwrap_or_else(|e| panic!("{tag}: committed golden results/{name} unreadable: {e}"));
        assert!(
            serial == &golden,
            "{tag}: results/{name} drifted from the committed golden — \
             regeneration is supposed to be a no-op"
        );
    }
    std::fs::remove_dir_all(serial_dir).ok();
    std::fs::remove_dir_all(parallel_dir).ok();
}

macro_rules! determinism_test {
    ($name:ident, $bin:literal) => {
        #[test]
        fn $name() {
            check_binary(env!(concat!("CARGO_BIN_EXE_", $bin)), $bin);
        }
    };
}

determinism_test!(fig5_is_byte_deterministic, "fig5");
determinism_test!(headline_is_byte_deterministic, "headline");
determinism_test!(levo_eval_is_byte_deterministic, "levo_eval");
determinism_test!(ablation_p_is_byte_deterministic, "ablation_p");
determinism_test!(ablation_shape_is_byte_deterministic, "ablation_shape");
determinism_test!(
    ablation_predictor_is_byte_deterministic,
    "ablation_predictor"
);
determinism_test!(ablation_future_is_byte_deterministic, "ablation_future");
determinism_test!(ablation_memory_is_byte_deterministic, "ablation_memory");
determinism_test!(
    predictor_accuracy_is_byte_deterministic,
    "predictor_accuracy"
);
determinism_test!(riseman_foster_is_byte_deterministic, "riseman_foster");
determinism_test!(resolve_location_is_byte_deterministic, "resolve_location");
determinism_test!(genspace_is_byte_deterministic, "genspace");

/// The store contract from ISSUE/DESIGN §9: `--store` is invisible in
/// every output byte. A recording pass (`--jobs 1`, cold store), a
/// replaying pass (`--jobs 4`, warm store), and a store-less run must
/// produce identical stdout and identical `results/` files — only the
/// stderr `dee_store_*` line may reveal which path ran.
#[test]
fn headline_store_replay_is_byte_invisible_across_jobs() {
    let exe = env!("CARGO_BIN_EXE_headline");
    let store_dir = temp_dir("headline_store_artifacts");
    let store = store_dir.to_str().expect("utf-8 temp path");
    let record_dir = temp_dir("headline_store_j1");
    let replay_dir = temp_dir("headline_store_j4");
    let plain_dir = temp_dir("headline_store_plain");
    let (record_out, record_err) =
        run_args(exe, &record_dir, &["tiny", "--jobs", "1", "--store", store]);
    let (replay_out, replay_err) =
        run_args(exe, &replay_dir, &["tiny", "--jobs", "4", "--store", store]);
    let plain_out = run(exe, &plain_dir, "1");
    assert_eq!(record_out, plain_out, "--store changed stdout");
    assert_eq!(record_out, replay_out, "replay or --jobs changed stdout");
    assert!(
        record_err.contains("dee_store_headline: hits=0 misses=5 writes=5"),
        "cold store should record all five workloads:\n{record_err}"
    );
    assert!(
        replay_err.contains("dee_store_headline: hits=5 misses=0 writes=0"),
        "warm store should replay all five workloads:\n{replay_err}"
    );
    let record_files = results_files(&record_dir);
    for ((name, recorded), (replay_name, replayed)) in
        record_files.iter().zip(&results_files(&replay_dir))
    {
        assert_eq!(name, replay_name, "file sets differ");
        assert!(recorded == replayed, "results/{name} differs under replay");
    }
    for ((name, recorded), (plain_name, plain)) in
        record_files.iter().zip(&results_files(&plain_dir))
    {
        assert_eq!(name, plain_name, "file sets differ");
        assert!(recorded == plain, "results/{name} differs with --store");
    }
    for dir in [store_dir, record_dir, replay_dir, plain_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// One xorshift64* step — the same mixer family the serve fault plan
/// uses; good enough to scramble job durations reproducibly.
fn xorshift_star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn seeded_delays(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = xorshift_star(state);
            state % 7
        })
        .collect()
}

#[test]
fn pool_reassembles_randomly_timed_jobs_in_index_order() {
    // Seeded pseudo-random sleeps scramble the completion order; results
    // must come back indexed, none lost, none duplicated, for any job
    // count.
    let delays = seeded_delays(0x5EED, 48);
    for jobs in [1usize, 3, 8] {
        let tasks: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &ms)| {
                move || {
                    std::thread::sleep(Duration::from_millis(ms));
                    i
                }
            })
            .collect();
        let got: Vec<usize> = pool::run(jobs, tasks)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(got, (0..48).collect::<Vec<_>>(), "jobs={jobs}");
    }
}

#[test]
fn pool_isolates_panics_under_timing_contention() {
    // Every fifth job panics while the rest sleep scrambled durations:
    // exactly the panicking cells error, every other cell completes, and
    // the assignment is identical for serial and parallel runs.
    let delays = seeded_delays(0xDEE, 40);
    let outcomes: Vec<Vec<Result<usize, String>>> = [1usize, 6]
        .iter()
        .map(|&jobs| {
            let tasks: Vec<_> = delays
                .iter()
                .enumerate()
                .map(|(i, &ms)| {
                    move || {
                        std::thread::sleep(Duration::from_millis(ms));
                        assert!(i % 5 != 0, "cell {i} scheduled to fail");
                        i
                    }
                })
                .collect();
            pool::run(jobs, tasks)
                .into_iter()
                .map(|r| r.map_err(|e| e.to_string()))
                .collect()
        })
        .collect();
    assert_eq!(outcomes[0], outcomes[1], "serial and parallel must agree");
    for (i, result) in outcomes[0].iter().enumerate() {
        if i % 5 == 0 {
            let message = result.as_ref().unwrap_err();
            assert!(
                message.contains(&format!("cell {i} scheduled to fail")),
                "{message}"
            );
        } else {
            assert_eq!(*result.as_ref().unwrap(), i);
        }
    }
}
