//! Throughput benches for the engines themselves: how fast the VM traces,
//! how fast each ILP model schedules a trace, and how fast the Levo model
//! cycles. Throughput is reported in dynamic instructions via
//! `Throughput::Elements`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee_predict::{mispredict_flags, TwoBitCounter};
use dee_vm::trace_program;
use dee_workloads::{compress, eqntott, Scale};

fn vm_tracing(c: &mut Criterion) {
    let workload = compress::build(Scale::Small);
    let len = workload.capture_trace().expect("runs").len() as u64;
    let mut group = c.benchmark_group("vm_tracing");
    group.sample_size(10);
    group.throughput(Throughput::Elements(len));
    group.bench_function("compress_small", |b| {
        b.iter(|| {
            trace_program(
                black_box(&workload.program),
                black_box(&workload.initial_memory),
                100_000_000,
            )
            .expect("runs")
        })
    });
    group.finish();
}

fn ilpsim_scheduling(c: &mut Criterion) {
    let workload = eqntott::build(Scale::Small);
    let trace = workload.capture_trace().expect("runs");
    let prepared = PreparedTrace::new(&workload.program, &trace);
    let p = prepared.accuracy();
    let mut group = c.benchmark_group("ilpsim_scheduling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for model in [Model::Oracle, Model::Sp, Model::Ee, Model::DeeCdMf] {
        group.bench_function(model.name(), |b| {
            b.iter(|| simulate(black_box(&prepared), &SimConfig::new(model, 100).with_p(p)))
        });
    }
    group.finish();
}

fn trace_preparation(c: &mut Criterion) {
    let workload = eqntott::build(Scale::Small);
    let trace = workload.capture_trace().expect("runs");
    let mut group = c.benchmark_group("trace_preparation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("prepare", |b| {
        b.iter(|| PreparedTrace::new(black_box(&workload.program), black_box(&trace)))
    });
    group.bench_function("mispredict_flags_only", |b| {
        b.iter(|| mispredict_flags(&mut TwoBitCounter::new(), black_box(&trace)))
    });
    group.finish();
}

criterion_group!(engines, vm_tracing, ilpsim_scheduling, trace_preparation);
criterion_main!(engines);
