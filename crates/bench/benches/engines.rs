//! Throughput benches for the engines themselves: how fast the VM traces,
//! how fast each ILP model schedules a trace, and how fast trace
//! preparation runs. Throughput is reported in dynamic instructions per
//! second by the hand-rolled [`dee_bench::timing`] harness (no Criterion:
//! the workspace carries no external crates so it stays buildable
//! offline).

use dee_bench::timing::Group;
use std::hint::black_box;

use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee_predict::{mispredict_flags, TwoBitCounter};
use dee_vm::trace_program;
use dee_workloads::{compress, eqntott, Scale};

fn vm_tracing() {
    let workload = compress::build(Scale::Small);
    let len = workload.capture_trace().expect("runs").len() as u64;
    Group::new("vm_tracing")
        .throughput(len)
        .bench("compress_small", || {
            trace_program(
                black_box(&workload.program),
                black_box(&workload.initial_memory),
                100_000_000,
            )
            .expect("runs")
        });
}

fn ilpsim_scheduling() {
    let workload = eqntott::build(Scale::Small);
    let trace = workload.capture_trace().expect("runs");
    let prepared = PreparedTrace::new(&workload.program, &trace);
    let p = prepared.accuracy();
    let group = Group::new("ilpsim_scheduling").throughput(trace.len() as u64);
    for model in [Model::Oracle, Model::Sp, Model::Ee, Model::DeeCdMf] {
        group.bench(model.name(), || {
            simulate(black_box(&prepared), &SimConfig::new(model, 100).with_p(p))
        });
    }
}

fn trace_preparation() {
    let workload = eqntott::build(Scale::Small);
    let trace = workload.capture_trace().expect("runs");
    let group = Group::new("trace_preparation").throughput(trace.len() as u64);
    group.bench("prepare", || {
        PreparedTrace::new(black_box(&workload.program), black_box(&trace))
    });
    group.bench("mispredict_flags_only", || {
        mispredict_flags(&mut TwoBitCounter::new(), black_box(&trace))
    });
}

fn main() {
    vm_tracing();
    ilpsim_scheduling();
    trace_preparation();
}
