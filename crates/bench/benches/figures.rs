//! Criterion benches regenerating (small instances of) every figure and
//! table of the paper. Each group exercises exactly the code path the
//! corresponding experiment binary uses, so `cargo bench` doubles as a
//! regression harness for the evaluation pipeline; the full-scale tables
//! come from the binaries (see DESIGN.md §3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dee_core::{SpecTree, StaticTree, Strategy, TreeParams};
use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee_levo::{Levo, LevoConfig};
use dee_predict::{measure_accuracy, TwoBitCounter};
use dee_workloads::{all_workloads, Scale};

/// Figure 1: strategy tree construction at the paper's operating point.
fn fig1_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_trees");
    for strategy in [Strategy::SinglePath, Strategy::Eager, Strategy::Disjoint] {
        group.bench_function(format!("{strategy:?}"), |b| {
            b.iter(|| SpecTree::build(black_box(strategy), black_box(0.7), black_box(6)))
        });
    }
    group.finish();
}

/// Figure 2: static tree heuristic (greedy and closed form).
fn fig2_static_tree(c: &mut Criterion) {
    let params = TreeParams { p: 0.90, et: 34 };
    let mut group = c.benchmark_group("fig2_static_tree");
    group.bench_function("greedy", |b| b.iter(|| StaticTree::build(black_box(params))));
    group.bench_function("closed_form", |b| {
        b.iter(|| StaticTree::build_closed_form(black_box(params)))
    });
    group.finish();
}

/// Figure 5: one sweep point per model on a tiny trace.
fn fig5_models(c: &mut Criterion) {
    let workload = dee_workloads::xlisp::build(Scale::Tiny);
    let trace = workload.capture_trace().expect("runs");
    let prepared = PreparedTrace::new(&workload.program, &trace);
    let p = prepared.accuracy();
    let mut group = c.benchmark_group("fig5_models");
    group.sample_size(20);
    for model in Model::all_constrained() {
        group.bench_function(model.name(), |b| {
            b.iter(|| simulate(black_box(&prepared), &SimConfig::new(model, 100).with_p(p)))
        });
    }
    group.bench_function("Oracle", |b| {
        b.iter(|| simulate(black_box(&prepared), &SimConfig::new(Model::Oracle, 0)))
    });
    group.finish();
}

/// TAB-PRED: predictor replay over a trace.
fn predictor_accuracy(c: &mut Criterion) {
    let workload = dee_workloads::cc1::build(Scale::Tiny);
    let trace = workload.capture_trace().expect("runs");
    c.bench_function("predictor_accuracy_2bc", |b| {
        b.iter_batched(
            TwoBitCounter::new,
            |mut predictor| measure_accuracy(&mut predictor, black_box(&trace)),
            BatchSize::SmallInput,
        )
    });
}

/// ABL-LEVO: a complete Levo run (the machine model end to end).
fn levo_run(c: &mut Criterion) {
    let workload = dee_workloads::xlisp::build(Scale::Tiny);
    let mut group = c.benchmark_group("levo_run");
    group.sample_size(10);
    for (name, config) in [
        ("condel2", LevoConfig::condel2()),
        ("dee_3x1", LevoConfig::default()),
        ("dee_11x2", LevoConfig::levo_100()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Levo::new(config)
                    .run(black_box(&workload.program), black_box(&workload.initial_memory))
                    .expect("runs")
            })
        });
    }
    group.finish();
}

/// Workload generation + validation (the suite the figures consume).
fn suite_build(c: &mut Criterion) {
    c.bench_function("suite_build_tiny", |b| {
        b.iter(|| {
            for w in all_workloads(Scale::Tiny) {
                black_box(w.capture_trace().expect("runs"));
            }
        })
    });
}

criterion_group!(
    figures,
    fig1_trees,
    fig2_static_tree,
    fig5_models,
    predictor_accuracy,
    levo_run,
    suite_build
);
criterion_main!(figures);
