//! Timing benches regenerating (small instances of) every figure and
//! table of the paper. Each group exercises exactly the code path the
//! corresponding experiment binary uses, so `cargo bench` doubles as a
//! regression harness for the evaluation pipeline; the full-scale tables
//! come from the binaries (see DESIGN.md §3).
//!
//! The harness is the repo's own [`dee_bench::timing`] (no Criterion: the
//! workspace carries no external crates so it stays buildable offline).

use dee_bench::timing::Group;
use std::hint::black_box;

use dee_core::{SpecTree, StaticTree, Strategy, TreeParams};
use dee_ilpsim::{simulate, Model, PreparedTrace, SimConfig};
use dee_levo::{Levo, LevoConfig};
use dee_predict::{measure_accuracy, TwoBitCounter};
use dee_workloads::{all_workloads, Scale};

/// Figure 1: strategy tree construction at the paper's operating point.
fn fig1_trees() {
    let group = Group::new("fig1_trees");
    for strategy in [Strategy::SinglePath, Strategy::Eager, Strategy::Disjoint] {
        group.bench(&format!("{strategy:?}"), || {
            SpecTree::build(black_box(strategy), black_box(0.7), black_box(6))
        });
    }
}

/// Figure 2: static tree heuristic (greedy and closed form).
fn fig2_static_tree() {
    let params = TreeParams { p: 0.90, et: 34 };
    let group = Group::new("fig2_static_tree");
    group.bench("greedy", || StaticTree::build(black_box(params)));
    group.bench("closed_form", || {
        StaticTree::build_closed_form(black_box(params))
    });
}

/// Figure 5: one sweep point per model on a tiny trace.
fn fig5_models() {
    let workload = dee_workloads::xlisp::build(Scale::Tiny);
    let trace = workload.capture_trace().expect("runs");
    let prepared = PreparedTrace::new(&workload.program, &trace);
    let p = prepared.accuracy();
    let group = Group::new("fig5_models");
    for model in Model::all_constrained() {
        group.bench(model.name(), || {
            simulate(black_box(&prepared), &SimConfig::new(model, 100).with_p(p))
        });
    }
    group.bench("Oracle", || {
        simulate(black_box(&prepared), &SimConfig::new(Model::Oracle, 0))
    });
}

/// TAB-PRED: predictor replay over a trace.
fn predictor_accuracy() {
    let workload = dee_workloads::cc1::build(Scale::Tiny);
    let trace = workload.capture_trace().expect("runs");
    Group::new("predictor").bench("accuracy_2bc", || {
        measure_accuracy(&mut TwoBitCounter::new(), black_box(&trace))
    });
}

/// ABL-LEVO: a complete Levo run (the machine model end to end).
fn levo_run() {
    let workload = dee_workloads::xlisp::build(Scale::Tiny);
    let group = Group::new("levo_run");
    for (name, config) in [
        ("condel2", LevoConfig::condel2()),
        ("dee_3x1", LevoConfig::default()),
        ("dee_11x2", LevoConfig::levo_100()),
    ] {
        group.bench(name, || {
            Levo::new(config)
                .run(
                    black_box(&workload.program),
                    black_box(&workload.initial_memory),
                )
                .expect("runs")
        });
    }
}

/// Workload generation + validation (the suite the figures consume).
fn suite_build() {
    Group::new("suite").bench("build_tiny", || {
        for w in all_workloads(Scale::Tiny) {
            black_box(w.capture_trace().expect("runs"));
        }
    });
}

fn main() {
    fig1_trees();
    fig2_static_tree();
    fig5_models();
    predictor_accuracy();
    levo_run();
    suite_build();
}
