//! The cluster front tier: routing, hedging, retry budgets, admission
//! control.
//!
//! The gateway owns no simulation state. It hashes each request's
//! `(path, body)` onto the [`HashRing`](crate::ring::HashRing), forwards
//! to the primary replica, and relays whatever bytes come back — the
//! determinism contract (same request → same bytes on every node) is what
//! lets it hedge and fail over without a consistency protocol: *any*
//! replica's answer is *the* answer.
//!
//! Three protections keep overload and brownouts from amplifying:
//!
//! - **Admission control** — the same bounded-queue design as `dee serve`:
//!   the accept thread never blocks, and a full queue means an immediate
//!   `503` (fast shed beats latency collapse).
//! - **Hedged requests** — when the primary has not answered within a
//!   budget (a percentile of recent latencies, or a fixed override), the
//!   same request is sent to the next replica and the first complete
//!   response wins. Hedges spend retry tokens, so a brown-out cannot turn
//!   every slow request into double load.
//! - **Per-route retry budgets** — a token bucket per route, refilled by
//!   successful forwards. Failover retries and hedges both spend from it;
//!   an exhausted bucket degrades to single-attempt forwarding (and a
//!   `502` if that attempt fails) instead of a retry storm.
//!
//! Peer liveness is tracked outside the ring: a connect failure marks the
//! peer dead (skipped in replica order), and a background prober
//! re-admits it on the first successful `/healthz` — which is how a
//! killed-and-respawned node rejoins without any ring rebuild.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dee_serve::http::{read_request, write_response, HttpError, Request};
use dee_serve::queue::{Bounded, TryPushError};
use dee_serve::{FaultPlan, FaultSite, Json};
use dee_store::fnv1a;

use crate::client::{peer_request, request as probe_request, PeerResponse, PeerTimeouts};
use crate::ring::HashRing;

const JSON: &str = "application/json";

/// Routes with independent retry buckets; everything else shares the
/// last slot.
const ROUTES: [&str; 5] = ["/simulate", "/tree", "/levo", "/batch", "<other>"];

/// Tuning knobs for [`Gateway::spawn`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Backend node addresses (`host:port`), in ring order.
    pub peers: Vec<String>,
    /// Replica set size per key (clamped to the peer count).
    pub replication: usize,
    /// Forwarding worker threads.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests get fast `503`s.
    pub queue_capacity: usize,
    /// Hedge budget: `None` disables hedging, `Some(0)` derives it from
    /// the p90 of a recent-latency window, `Some(ms)` fixes it.
    pub hedge_ms: Option<u64>,
    /// Retry-bucket capacity per route, in whole tokens.
    pub retry_tokens: u32,
    /// Millitokens refilled into a route's bucket per successful forward
    /// (1000 = one token; 100 caps sustained retries at 10% of traffic).
    pub retry_refill_millitokens: u32,
    /// Virtual nodes per peer on the ring.
    pub vnodes: usize,
    /// Ring placement seed; gateways sharing it route identically.
    pub ring_seed: u64,
    /// Peer connect/IO budgets.
    pub timeouts: PeerTimeouts,
    /// How often dead peers are probed for re-admission.
    pub probe_interval: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Fault-injection plan for the cluster sites; inert in production.
    pub faults: Arc<FaultPlan>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            peers: Vec::new(),
            replication: 2,
            workers: 4,
            queue_capacity: 64,
            hedge_ms: Some(0),
            retry_tokens: 16,
            retry_refill_millitokens: 100,
            vnodes: 32,
            ring_seed: 0xDEE,
            timeouts: PeerTimeouts::default(),
            probe_interval: Duration::from_millis(50),
            max_body_bytes: 1 << 20,
            faults: Arc::new(FaultPlan::inert()),
        }
    }
}

/// A per-route retry token bucket, in millitokens so refill can be
/// fractional. Lock-free: spend and refill are CAS loops.
struct Bucket {
    millitokens: AtomicU64,
    cap: u64,
}

impl Bucket {
    fn new(tokens: u32) -> Self {
        let cap = u64::from(tokens) * 1000;
        Bucket {
            millitokens: AtomicU64::new(cap),
            cap,
        }
    }

    /// Spends one whole token; `false` when the bucket cannot afford it.
    fn try_spend(&self) -> bool {
        let mut current = self.millitokens.load(Ordering::Relaxed);
        loop {
            if current < 1000 {
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                current,
                current - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Refills `amount` millitokens, saturating at capacity.
    fn refill(&self, amount: u64) {
        let mut current = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = (current + amount).min(self.cap);
            if next == current {
                return;
            }
            match self.millitokens.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// Gateway counters, rendered on `GET /metrics`.
#[derive(Default)]
pub struct GatewayMetrics {
    /// Requests read off the wire.
    pub requests: AtomicU64,
    /// Forward attempts sent to peers (including hedges and retries).
    pub forwards: AtomicU64,
    /// Hedged requests launched.
    pub hedges: AtomicU64,
    /// Hedges whose response won the race.
    pub hedge_wins: AtomicU64,
    /// Hedges suppressed by an exhausted retry bucket.
    pub hedges_suppressed: AtomicU64,
    /// Failover retries after a peer error.
    pub retries: AtomicU64,
    /// Retries refused because the route's bucket was empty.
    pub retry_exhausted: AtomicU64,
    /// Requests shed by admission control (queue full).
    pub shed: AtomicU64,
    /// Peer attempts that failed (connect refused, timeout, reset).
    pub peer_errors: AtomicU64,
    /// Requests answered `502` because every allowed attempt failed.
    pub gateway_errors: AtomicU64,
    /// Peers re-admitted by the liveness prober.
    pub readmissions: AtomicU64,
}

impl GatewayMetrics {
    fn render(&self, dead_peers: u64) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("dee_gateway_requests_total", &self.requests),
            ("dee_gateway_forwards_total", &self.forwards),
            ("dee_gateway_hedges_total", &self.hedges),
            ("dee_gateway_hedge_wins_total", &self.hedge_wins),
            (
                "dee_gateway_hedges_suppressed_total",
                &self.hedges_suppressed,
            ),
            ("dee_gateway_retries_total", &self.retries),
            ("dee_gateway_retry_exhausted_total", &self.retry_exhausted),
            ("dee_gateway_shed_total", &self.shed),
            ("dee_gateway_peer_errors_total", &self.peer_errors),
            ("dee_gateway_errors_total", &self.gateway_errors),
            ("dee_gateway_readmissions_total", &self.readmissions),
        ] {
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                value.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "# TYPE dee_gateway_dead_peers gauge\ndee_gateway_dead_peers {dead_peers}\n"
        ));
        out
    }
}

/// Sliding window of recent forward latencies, for the adaptive hedge
/// budget.
struct LatencyWindow {
    samples_us: Mutex<Vec<u64>>,
    cap: usize,
}

impl LatencyWindow {
    fn new(cap: usize) -> Self {
        LatencyWindow {
            samples_us: Mutex::new(Vec::with_capacity(cap)),
            cap,
        }
    }

    fn record(&self, us: u64) {
        let mut samples = self
            .samples_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if samples.len() == self.cap {
            samples.remove(0);
        }
        samples.push(us);
    }

    /// The p90 of the window, or `None` until enough samples exist to
    /// make a percentile meaningful.
    fn p90_us(&self) -> Option<u64> {
        let samples = self
            .samples_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if samples.len() < 8 {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        Some(sorted[(sorted.len() * 9) / 10 - 1])
    }
}

struct GwShared {
    queue: Bounded<GwJob>,
    metrics: GatewayMetrics,
    stop: AtomicBool,
    ring: HashRing,
    peers: Vec<String>,
    /// Liveness map, indexed like `peers`; `true` = skipped in routing.
    dead: Vec<AtomicBool>,
    buckets: [Bucket; ROUTES.len()],
    latency: LatencyWindow,
    replication: usize,
    hedge_ms: Option<u64>,
    retry_refill_millitokens: u32,
    timeouts: PeerTimeouts,
    probe_interval: Duration,
    max_body_bytes: usize,
    faults: Arc<FaultPlan>,
}

struct GwJob {
    stream: TcpStream,
    accepted: Instant,
}

/// A running gateway. Call [`shutdown`](Gateway::shutdown) for an orderly
/// stop; dropping the handle leaks the threads.
pub struct Gateway {
    shared: Arc<GwShared>,
    addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    prober_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `config.addr` and spawns the accept loop, forwarding
    /// workers, and the dead-peer prober.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; rejects an empty peer list as
    /// `InvalidInput`.
    pub fn spawn(config: GatewayConfig) -> std::io::Result<Gateway> {
        if config.peers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "gateway needs at least one peer",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(GwShared {
            queue: Bounded::new(config.queue_capacity),
            metrics: GatewayMetrics::default(),
            stop: AtomicBool::new(false),
            ring: HashRing::new(config.peers.len(), config.vnodes, config.ring_seed),
            dead: config
                .peers
                .iter()
                .map(|_| AtomicBool::new(false))
                .collect(),
            peers: config.peers,
            buckets: std::array::from_fn(|_| Bucket::new(config.retry_tokens)),
            latency: LatencyWindow::new(64),
            replication: config.replication,
            hedge_ms: config.hedge_ms,
            retry_refill_millitokens: config.retry_refill_millitokens,
            timeouts: config.timeouts,
            probe_interval: config.probe_interval,
            max_body_bytes: config.max_body_bytes,
            faults: config.faults,
        });
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dee-gateway-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let prober_shared = Arc::clone(&shared);
        let prober_thread = std::thread::Builder::new()
            .name("dee-gateway-prober".to_string())
            .spawn(move || prober_loop(&prober_shared))?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("dee-gateway-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Gateway {
            shared,
            addr,
            accept_thread,
            prober_thread,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's counters.
    #[must_use]
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.shared.metrics
    }

    /// Peers currently marked dead (skipped in routing until the prober
    /// re-admits them).
    #[must_use]
    pub fn dead_peers(&self) -> Vec<String> {
        self.shared
            .peers
            .iter()
            .zip(&self.shared.dead)
            .filter(|(_, dead)| dead.load(Ordering::Relaxed))
            .map(|(peer, _)| peer.clone())
            .collect()
    }

    /// Stops accepting, drains queued requests through the workers, then
    /// joins every thread. Requests still queued after the workers exit
    /// are shed with `503`.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        drop(TcpStream::connect(self.addr));
        let _ = self.accept_thread.join();
        let _ = self.prober_thread.join();
        self.shared.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
        for job in self.shared.queue.drain() {
            shed(job.stream, &self.shared.metrics);
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &GwShared) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let job = GwJob {
            stream,
            accepted: Instant::now(),
        };
        match shared.queue.try_push(job) {
            Ok(_) => {}
            Err(TryPushError::Full(job)) | Err(TryPushError::Closed(job)) => {
                shed(job.stream, &shared.metrics);
            }
        }
    }
}

/// Sheds one connection with a fast `503` — the admission-control exit.
fn shed(mut stream: TcpStream, metrics: &GatewayMetrics) {
    metrics.shed.fetch_add(1, Ordering::Relaxed);
    let body = Json::obj(vec![("error", Json::str("gateway overloaded"))]).to_string();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = write_response(&mut stream, 503, JSON, body.as_bytes());
}

/// Probes dead peers with un-injected `/healthz` requests and re-admits
/// any that answer — the respawn path back onto the ring.
fn prober_loop(shared: &GwShared) {
    while !shared.stop.load(Ordering::SeqCst) {
        for (i, peer) in shared.peers.iter().enumerate() {
            if !shared.dead[i].load(Ordering::Relaxed) {
                continue;
            }
            let probe = probe_request(peer, "GET", "/healthz", b"", shared.timeouts);
            if matches!(&probe, Ok(res) if res.status == 200) {
                shared.dead[i].store(false, Ordering::Relaxed);
                shared.metrics.readmissions.fetch_add(1, Ordering::Relaxed);
            }
        }
        std::thread::sleep(shared.probe_interval);
    }
}

fn worker_loop(shared: &Arc<GwShared>) {
    while let Some(job) = shared.queue.pop() {
        serve_one(shared, job);
    }
}

fn serve_one(shared: &Arc<GwShared>, job: GwJob) {
    let stream = job.stream;
    let _ = stream.set_read_timeout(Some(shared.timeouts.io));
    let _ = stream.set_write_timeout(Some(shared.timeouts.io));
    let mut reader = BufReader::new(stream);
    let (status, content_type, body) = match read_request(&mut reader, shared.max_body_bytes) {
        Ok(None) => return, // peer closed without a request
        Ok(Some(request)) => {
            shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
            dispatch(shared, &request, job.accepted)
        }
        Err(HttpError::BadRequest(message)) => (400, JSON.to_string(), error_body(message)),
        Err(HttpError::TooLarge) => (413, JSON.to_string(), error_body("payload too large")),
        Err(HttpError::Io(_)) => (408, JSON.to_string(), error_body("request read timed out")),
    };
    let mut stream = reader.into_inner();
    let _ = write_response(&mut stream, status, &content_type, &body);
}

fn error_body(message: impl Into<String>) -> Vec<u8> {
    Json::obj(vec![("error", Json::str(message.into()))])
        .to_string()
        .into_bytes()
}

fn dispatch(
    shared: &Arc<GwShared>,
    request: &Request,
    accepted: Instant,
) -> (u16, String, Vec<u8>) {
    let path = request.path();
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => (
            200,
            "text/plain; charset=utf-8".to_string(),
            b"ok\n".to_vec(),
        ),
        ("GET", "/metrics") => {
            let dead = shared
                .dead
                .iter()
                .filter(|d| d.load(Ordering::Relaxed))
                .count() as u64;
            (
                200,
                "text/plain; charset=utf-8".to_string(),
                shared.metrics.render(dead).into_bytes(),
            )
        }
        ("POST", "/simulate" | "/tree" | "/levo" | "/batch") => forward(shared, request, accepted),
        (_, "/healthz" | "/metrics" | "/simulate" | "/tree" | "/levo" | "/batch") => {
            (405, JSON.to_string(), error_body("method not allowed"))
        }
        _ => (404, JSON.to_string(), error_body("not found")),
    }
}

/// The retry bucket index for a path.
fn route_index(path: &str) -> usize {
    ROUTES
        .iter()
        .position(|&r| r == path)
        .unwrap_or(ROUTES.len() - 1)
}

/// One peer attempt, counted. An `Ok` marks the peer alive; an `Err`
/// marks it dead for the prober to re-admit later.
fn attempt(
    shared: &Arc<GwShared>,
    peer_index: usize,
    request: &Request,
) -> std::io::Result<PeerResponse> {
    shared.metrics.forwards.fetch_add(1, Ordering::Relaxed);
    let result = peer_request(
        &shared.peers[peer_index],
        &request.method,
        request.path(),
        &request.body,
        shared.timeouts,
        &shared.faults,
    );
    match &result {
        Ok(_) => shared.dead[peer_index].store(false, Ordering::Relaxed),
        Err(_) => {
            shared.metrics.peer_errors.fetch_add(1, Ordering::Relaxed);
            shared.dead[peer_index].store(true, Ordering::Relaxed);
        }
    }
    result
}

/// The hedge budget for this request, `None` when hedging is off.
fn hedge_budget(shared: &GwShared) -> Option<Duration> {
    match shared.hedge_ms {
        None => None,
        Some(0) => {
            // Adaptive: p90 of the recent window, floored so a burst of
            // cache hits cannot drive the budget to zero and hedge
            // everything. Until the window fills, a fixed conservative
            // budget applies.
            let us = shared.latency.p90_us().unwrap_or(25_000).max(1_000);
            Some(Duration::from_micros(us))
        }
        Some(ms) => Some(Duration::from_millis(ms)),
    }
}

/// Forwards one API request to its replica set: primary first, hedge
/// after the budget, fail over on errors while the route's retry bucket
/// lasts. Returns whatever response won, verbatim.
fn forward(shared: &Arc<GwShared>, request: &Request, accepted: Instant) -> (u16, String, Vec<u8>) {
    let key = {
        let mut keyed = request.path().as_bytes().to_vec();
        keyed.extend_from_slice(&request.body);
        fnv1a(&keyed)
    };
    let mut order = shared.ring.replicas_for(key, shared.replication);
    // ReplicaLoss: the primary drops out of the replica set for this
    // request, exactly as if its ring arcs were lost mid-flight.
    if order.len() > 1 && shared.faults.trip(FaultSite::ReplicaLoss).is_some() {
        order.rotate_left(1);
    }
    // Route around peers already known dead (stable: ring order is kept
    // within the live and dead groups, so the failover order is
    // deterministic for a given liveness map).
    order.sort_by_key(|&i| shared.dead[i].load(Ordering::Relaxed));

    let route = route_index(request.path());
    let bucket = &shared.buckets[route];
    // GatewayHedgeDelay sleeps here when armed: the hedge decision is
    // late, exactly the pathology the site exists to rehearse.
    shared.faults.trip(FaultSite::GatewayHedgeDelay);
    let budget = hedge_budget(shared);

    let (tx, rx) = mpsc::channel::<std::io::Result<PeerResponse>>();
    let spawn_attempt = |peer_index: usize| {
        let shared = Arc::clone(shared);
        let request = request.clone();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = tx.send(attempt(&shared, peer_index, &request));
        });
    };
    spawn_attempt(order[0]);
    let mut launched = 1usize;
    let mut hedged = false;

    let first = match budget {
        Some(budget) if order.len() > 1 => match rx.recv_timeout(budget) {
            Ok(result) => result,
            Err(_) => {
                // Primary is past budget: hedge to the next replica if
                // the route can afford it, then take whichever answers
                // first.
                if bucket.try_spend() {
                    shared.metrics.hedges.fetch_add(1, Ordering::Relaxed);
                    spawn_attempt(order[1]);
                    launched += 1;
                    hedged = true;
                } else {
                    shared
                        .metrics
                        .hedges_suppressed
                        .fetch_add(1, Ordering::Relaxed);
                }
                match rx.recv_timeout(shared.timeouts.io) {
                    Ok(result) => {
                        if hedged && launched == 2 {
                            // Both are in flight; whichever sent first is
                            // `result`. A win by the hedge is observable
                            // only as "the first arrival was Ok and the
                            // primary had not answered" — close enough
                            // for the counter's purpose.
                            if result.is_ok() {
                                shared.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        result
                    }
                    Err(_) => Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "all replicas timed out",
                    )),
                }
            }
        },
        _ => rx.recv_timeout(shared.timeouts.io).unwrap_or_else(|_| {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "replica timed out",
            ))
        }),
    };

    let winner = match first {
        Ok(response) => Some(response),
        Err(_) => {
            // First arrival failed. If another attempt is still in
            // flight, its answer may yet save the request; otherwise try
            // the next replicas in order while the bucket lasts.
            let mut salvage = None;
            if launched == 2 {
                if let Ok(Ok(response)) = rx.recv_timeout(shared.timeouts.io) {
                    salvage = Some(response);
                }
            }
            let mut next = launched;
            while salvage.is_none() && next < order.len() {
                if !bucket.try_spend() {
                    shared
                        .metrics
                        .retry_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
                shared.metrics.retries.fetch_add(1, Ordering::Relaxed);
                if let Ok(response) = attempt(shared, order[next], request) {
                    salvage = Some(response);
                }
                next += 1;
            }
            salvage
        }
    };

    match winner {
        Some(response) => {
            let elapsed_us = u64::try_from(accepted.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.latency.record(elapsed_us);
            bucket.refill(u64::from(shared.retry_refill_millitokens));
            let content_type = if response.content_type.is_empty() {
                JSON.to_string()
            } else {
                response.content_type
            };
            (response.status, content_type, response.body)
        }
        None => {
            shared
                .metrics
                .gateway_errors
                .fetch_add(1, Ordering::Relaxed);
            (
                502,
                JSON.to_string(),
                error_body("no replica reachable for request"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_spends_whole_tokens_and_refills_capped() {
        let bucket = Bucket::new(2);
        assert!(bucket.try_spend());
        assert!(bucket.try_spend());
        assert!(!bucket.try_spend(), "empty bucket refuses");
        bucket.refill(500);
        assert!(!bucket.try_spend(), "half a token is not a token");
        bucket.refill(500);
        assert!(bucket.try_spend());
        for _ in 0..100 {
            bucket.refill(1000);
        }
        assert!(bucket.try_spend());
        assert!(bucket.try_spend());
        assert!(!bucket.try_spend(), "refill saturates at capacity");
    }

    #[test]
    fn latency_window_p90_needs_samples_then_tracks() {
        let window = LatencyWindow::new(16);
        assert_eq!(window.p90_us(), None);
        for us in 1..=10 {
            window.record(us * 100);
        }
        let p90 = window.p90_us().expect("warm window");
        assert!((800..=1000).contains(&p90), "{p90}");
    }

    #[test]
    fn route_index_buckets_known_routes_separately() {
        assert_ne!(route_index("/simulate"), route_index("/batch"));
        assert_eq!(route_index("/nope"), ROUTES.len() - 1);
        assert_eq!(route_index("/other"), route_index("/unknown"));
    }
}
