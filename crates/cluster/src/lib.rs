//! # dee-cluster — sharded, self-healing multi-node serve tier
//!
//! Composes the pieces the earlier layers already proved out — the
//! `dee serve` node (PR 1), the seeded fault-injection discipline (PR 2),
//! and the content-addressed artifact store (PR 4) — into a cluster:
//!
//! - [`ring`] — a hand-rolled consistent-hash ring with seeded virtual
//!   nodes; key placement is a pure function of the seed, so every
//!   gateway configured alike routes identically.
//! - [`client`] — the minimal HTTP/1.1 peer client, and the home of the
//!   `PartitionPeer` chaos site.
//! - [`gateway`] — the front tier: hedged requests under a latency
//!   percentile budget, per-route retry token buckets, bounded-queue
//!   admission control, and dead-peer tracking with probe re-admission.
//! - [`sync`] — anti-entropy: Merkle-style digest exchange over the
//!   `DEESTOR1` per-chunk checksums, with fail-closed verified repair and
//!   a drain barrier on shutdown.
//! - [`cluster`] — `LocalCluster`, the N-node in-process launcher behind
//!   `dee cluster` and the chaos soaks.
//!
//! The correctness oracle throughout is the determinism the paper's DEE
//! tree guarantees by construction: the same request must produce the
//! same bytes on every replica, so tests can demand that every response
//! the gateway ever returns is byte-identical to a single node's output —
//! replica divergence, torn replication, or routing bugs all surface as a
//! byte mismatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod gateway;
pub mod ring;
pub mod sync;

pub use client::{peer_request, request, PeerResponse, PeerTimeouts};
pub use cluster::{ClusterConfig, LocalCluster};
pub use gateway::{Gateway, GatewayConfig, GatewayMetrics};
pub use ring::HashRing;
pub use sync::{sync_round, RoundReport, SyncAgent, SyncStats};
