//! Anti-entropy: digest exchange and read-repair between node stores.
//!
//! Every round, the agent pulls `GET /store/digest` from each peer — a
//! Merkle-style listing folded from the per-chunk `DEESTOR1` checksums
//! already in every artifact, so digesting never decompresses a payload —
//! takes the union, and repairs each peer that is missing an artifact by
//! fetching the bytes from a holder and `PUT`ting them back. The receiving
//! node's verified install (write to `tmp/`, re-checksum everything,
//! rename) makes repair fail-closed: a torn fetch can delay convergence
//! but never corrupt a store. Artifact bytes are deterministic, so two
//! holders of a name can only disagree on digest through corruption;
//! conflicting names are counted and skipped, never "resolved" by
//! overwriting.
//!
//! **Drain barrier**: [`SyncAgent::stop`] flips the stop flag and *joins*
//! the round thread. The round checks the flag only between artifacts, so
//! an in-flight fetch+install always completes (or fails cleanly) before
//! the agent exits — a SIGTERM mid-sync can cut the round short but can
//! never leave a half-published artifact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dee_serve::json::parse as parse_json;
use dee_serve::FaultPlan;

use crate::client::{peer_request, PeerTimeouts};

/// Outcome counters for one [`sync_round`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Artifacts installed onto peers this round.
    pub installed: usize,
    /// Installs attempted but refused or failed (peer down mid-transfer,
    /// verification failure on the receiving store).
    pub failed: usize,
    /// Peers whose digest listing was unreachable this round.
    pub unreachable: usize,
    /// Names advertised with conflicting digests (skipped — repair never
    /// overwrites).
    pub conflicts: usize,
    /// `true` when the round ended early because the stop flag was set.
    pub drained: bool,
}

/// Cumulative counters across an agent's lifetime.
#[derive(Debug, Default)]
pub struct SyncStats {
    /// Completed rounds.
    pub rounds: AtomicU64,
    /// Total artifacts installed onto peers.
    pub installed: AtomicU64,
    /// Total failed install attempts.
    pub failed: AtomicU64,
    /// Total unreachable-peer observations.
    pub unreachable: AtomicU64,
}

/// One peer's digest listing: `(name, digest)` pairs.
type Listing = Vec<(String, String)>;

/// Fetches and decodes one peer's `GET /store/digest`.
fn fetch_listing(
    peer: &str,
    timeouts: PeerTimeouts,
    faults: &FaultPlan,
) -> Result<Listing, String> {
    let response = peer_request(peer, "GET", "/store/digest", b"", timeouts, faults)
        .map_err(|e| format!("digest fetch from {peer}: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "digest fetch from {peer}: HTTP {}",
            response.status
        ));
    }
    let text = std::str::from_utf8(&response.body)
        .map_err(|_| format!("digest listing from {peer} is not UTF-8"))?;
    let json = parse_json(text).map_err(|e| format!("digest listing from {peer}: {e}"))?;
    let Some(dee_serve::Json::Arr(entries)) = json.get("entries") else {
        return Err(format!("digest listing from {peer} has no entries array"));
    };
    let mut listing = Vec::with_capacity(entries.len());
    for entry in entries {
        let (Some(name), Some(digest)) = (
            entry.get("name").and_then(dee_serve::Json::as_str),
            entry.get("digest").and_then(dee_serve::Json::as_str),
        ) else {
            return Err(format!("digest listing from {peer} has a malformed entry"));
        };
        listing.push((name.to_string(), digest.to_string()));
    }
    Ok(listing)
}

/// Runs one anti-entropy round over `peers`. `stop` is consulted between
/// artifacts only — see the module docs for the drain contract.
pub fn sync_round(
    peers: &[String],
    timeouts: PeerTimeouts,
    faults: &FaultPlan,
    stop: &AtomicBool,
) -> RoundReport {
    let mut report = RoundReport::default();
    // Phase 1: who has what. Unreachable peers sit the round out — they
    // are neither repaired nor used as sources.
    let mut listings: Vec<Option<Listing>> = Vec::with_capacity(peers.len());
    for peer in peers {
        if stop.load(Ordering::SeqCst) {
            report.drained = true;
            return report;
        }
        match fetch_listing(peer, timeouts, faults) {
            Ok(listing) => listings.push(Some(listing)),
            Err(_) => {
                report.unreachable += 1;
                listings.push(None);
            }
        }
    }
    // Phase 2: the union. name -> (digest, holders); a digest mismatch
    // flags the name as conflicted and takes it out of repair entirely.
    let mut union: Vec<(String, String, Vec<usize>)> = Vec::new();
    let mut conflicted: Vec<String> = Vec::new();
    for (peer_index, listing) in listings.iter().enumerate() {
        let Some(listing) = listing else { continue };
        for (name, digest) in listing {
            if conflicted.contains(name) {
                continue;
            }
            match union.iter_mut().find(|(n, _, _)| n == name) {
                Some((_, known, holders)) => {
                    if known == digest {
                        holders.push(peer_index);
                    } else {
                        report.conflicts += 1;
                        conflicted.push(name.clone());
                    }
                }
                None => union.push((name.clone(), digest.clone(), vec![peer_index])),
            }
        }
    }
    union.retain(|(name, _, _)| !conflicted.contains(name));
    // Deterministic repair order regardless of which peer answered first.
    union.sort_by(|a, b| a.0.cmp(&b.0));
    // Phase 3: repair. Every reachable peer missing a name gets the bytes
    // from the first holder that can still serve them.
    for (name, _, holders) in &union {
        for (peer_index, peer) in peers.iter().enumerate() {
            if listings[peer_index].is_none() || holders.contains(&peer_index) {
                continue;
            }
            if stop.load(Ordering::SeqCst) {
                report.drained = true;
                return report;
            }
            let mut bytes = None;
            for &holder in holders {
                let path = format!("/store/artifact/{name}");
                match peer_request(&peers[holder], "GET", &path, b"", timeouts, faults) {
                    Ok(res) if res.status == 200 => {
                        bytes = Some(res.body);
                        break;
                    }
                    _ => continue,
                }
            }
            let Some(bytes) = bytes else {
                report.failed += 1;
                continue;
            };
            let path = format!("/store/artifact/{name}");
            match peer_request(peer, "PUT", &path, &bytes, timeouts, faults) {
                Ok(res) if res.status == 200 => report.installed += 1,
                _ => report.failed += 1,
            }
        }
    }
    report
}

/// A background anti-entropy agent running [`sync_round`] on an interval.
pub struct SyncAgent {
    stop: Arc<AtomicBool>,
    stats: Arc<SyncStats>,
    handle: JoinHandle<()>,
}

impl SyncAgent {
    /// Spawns the agent over `peers`.
    ///
    /// # Errors
    ///
    /// Propagates thread-spawn failure.
    pub fn spawn(
        peers: Vec<String>,
        interval: Duration,
        timeouts: PeerTimeouts,
        faults: Arc<FaultPlan>,
    ) -> std::io::Result<SyncAgent> {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SyncStats::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("dee-cluster-sync".to_string())
            .spawn(move || {
                while !thread_stop.load(Ordering::SeqCst) {
                    let report = sync_round(&peers, timeouts, &faults, &thread_stop);
                    thread_stats.rounds.fetch_add(1, Ordering::Relaxed);
                    thread_stats
                        .installed
                        .fetch_add(report.installed as u64, Ordering::Relaxed);
                    thread_stats
                        .failed
                        .fetch_add(report.failed as u64, Ordering::Relaxed);
                    thread_stats
                        .unreachable
                        .fetch_add(report.unreachable as u64, Ordering::Relaxed);
                    if report.drained {
                        return;
                    }
                    // Sleep in small slices so stop stays responsive
                    // without cutting an artifact transfer (those finish
                    // inside sync_round regardless).
                    let mut slept = Duration::ZERO;
                    while slept < interval && !thread_stop.load(Ordering::SeqCst) {
                        let slice = Duration::from_millis(10).min(interval - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })?;
        Ok(SyncAgent {
            stop,
            stats,
            handle,
        })
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &Arc<SyncStats> {
        &self.stats
    }

    /// Signals the agent and **joins it** — the drain barrier. Any
    /// artifact transfer in flight when the flag flips completes before
    /// this returns; only whole-artifact boundaries observe the stop.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}
