//! Consistent-hash ring with seeded virtual nodes.
//!
//! Every node contributes `vnodes` points on a 64-bit circle; a key is
//! routed to the first point clockwise of its hash, and its replica set
//! is the next R *distinct* nodes continuing clockwise. Virtual nodes
//! smooth the load split (a single point per node makes arc lengths — and
//! therefore key shares — wildly uneven), and seeding the point hashes
//! makes the whole layout a pure function of `(seed, node count, vnodes)`:
//! two gateways configured alike route every key identically, which the
//! byte-identity oracle in the cluster tests leans on.
//!
//! The ring is immutable. Membership changes (a node dying mid-soak, a
//! respawn re-admitting it) are handled *above* the ring by the gateway's
//! liveness map: dead nodes are skipped in replica order rather than
//! removed from the ring, so a respawned node slots back into exactly the
//! arcs it owned before — no rebalancing churn, no key movement.

/// A 64-bit mixer (splitmix64 finalizer); same construction as the fault
/// plan's roll so point placement is seed-stable across platforms.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// An immutable consistent-hash ring over node indices `0..nodes`.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, node)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Builds a ring of `nodes` nodes with `vnodes` points each, placed
    /// by `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` or `vnodes` is zero — an empty ring cannot
    /// route anything and constructing one is always a configuration bug.
    #[must_use]
    pub fn new(nodes: usize, vnodes: usize, seed: u64) -> Self {
        assert!(nodes > 0, "ring needs at least one node");
        assert!(vnodes > 0, "ring needs at least one virtual node");
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                let point = mix(seed ^ mix((node as u64) << 32 | v as u64));
                points.push((point, node));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// Number of (physical) nodes on the ring.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The first `r` distinct nodes clockwise of `key`'s position —
    /// primary first. Capped at the node count: asking for more replicas
    /// than nodes returns every node exactly once.
    #[must_use]
    pub fn replicas_for(&self, key: u64, r: usize) -> Vec<usize> {
        let want = r.clamp(1, self.nodes);
        let start = self.points.partition_point(|&(point, _)| point < key) % self.points.len();
        let mut order = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !order.contains(&node) {
                order.push(node);
                if order.len() == want {
                    break;
                }
            }
        }
        order
    }

    /// The primary node for `key`.
    #[must_use]
    pub fn primary_for(&self, key: u64) -> usize {
        self.replicas_for(key, 1)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_layout() {
        let a = HashRing::new(5, 32, 0xDEE);
        let b = HashRing::new(5, 32, 0xDEE);
        for key in (0..1000u64).map(mix) {
            assert_eq!(a.replicas_for(key, 3), b.replicas_for(key, 3));
        }
    }

    #[test]
    fn different_seed_moves_keys() {
        let a = HashRing::new(5, 32, 1);
        let b = HashRing::new(5, 32, 2);
        let moved = (0..1000u64)
            .map(mix)
            .filter(|&k| a.primary_for(k) != b.primary_for(k))
            .count();
        assert!(moved > 100, "reseeding should reshuffle ownership: {moved}");
    }

    #[test]
    fn replicas_are_distinct_and_primary_first() {
        let ring = HashRing::new(4, 16, 7);
        for key in (0..500u64).map(mix) {
            let reps = ring.replicas_for(key, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.primary_for(key));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn replication_caps_at_node_count() {
        let ring = HashRing::new(2, 8, 9);
        let reps = ring.replicas_for(12345, 5);
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn load_split_is_roughly_even() {
        let ring = HashRing::new(3, 64, 0xBEEF);
        let mut counts = [0usize; 3];
        for key in (0..30_000u64).map(mix) {
            counts[ring.primary_for(key)] += 1;
        }
        for &c in &counts {
            assert!(
                (5_000..=15_000).contains(&c),
                "virtual nodes should smooth the split: {counts:?}"
            );
        }
    }
}
