//! A minimal HTTP/1.1 client for peer traffic.
//!
//! Speaks exactly the dialect `dee serve` answers: one request per
//! connection, `Connection: close`, `Content-Length` framing. Hand-rolled
//! on `std::net` like everything else in the workspace — no external
//! crates. Every peer call goes through [`peer_request`], which is also
//! where the [`FaultSite::PartitionPeer`] chaos site lives: an armed plan
//! can make any peer look connection-refused without touching the network,
//! which is how the soak tests partition node pairs deterministically.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dee_serve::{FaultPlan, FaultSite};

/// Upper bound on a peer response (status line + headers + body). Peer
/// bodies are simulation JSON or artifact containers; anything past this
/// is a protocol violation, not data.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// A parsed peer response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when the peer omitted it).
    pub content_type: String,
    /// Response body bytes, verbatim.
    pub body: Vec<u8>,
}

/// Connection + per-I/O timeouts for peer calls.
#[derive(Clone, Copy, Debug)]
pub struct PeerTimeouts {
    /// TCP connect budget.
    pub connect: Duration,
    /// Read/write budget for the whole exchange (applied per syscall).
    pub io: Duration,
}

impl Default for PeerTimeouts {
    fn default() -> Self {
        PeerTimeouts {
            connect: Duration::from_millis(500),
            io: Duration::from_secs(5),
        }
    }
}

/// Sends one request to `addr` and reads the full response, visiting the
/// `PartitionPeer` fault site first: an injected error behaves exactly
/// like a refused connection, so callers cannot tell chaos from a real
/// partition (that is the point).
///
/// # Errors
///
/// `ConnectionRefused` on an injected partition; otherwise transport
/// errors (connect timeout, reset, malformed response) as `io::Error`.
pub fn peer_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeouts: PeerTimeouts,
    faults: &FaultPlan,
) -> io::Result<PeerResponse> {
    if faults.trip(FaultSite::PartitionPeer).is_some() {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("injected partition: peer {addr} unreachable"),
        ));
    }
    request(addr, method, path, body, timeouts)
}

/// [`peer_request`] without a fault plan, for traffic that must never be
/// chaos-injected (liveness probes deciding ring re-admission).
///
/// # Errors
///
/// Transport errors as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeouts: PeerTimeouts,
) -> io::Result<PeerResponse> {
    let addr: SocketAddr = addr
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("peer addr: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeouts.connect)?;
    stream.set_read_timeout(Some(timeouts.io))?;
    stream.set_write_timeout(Some(timeouts.io))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        raw.extend_from_slice(&chunk[..n]);
        if raw.len() > MAX_RESPONSE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer response exceeds size bound",
            ));
        }
    }
    parse_response(&raw)
}

/// Parses a full `Connection: close` response capture.
fn parse_response(raw: &[u8]) -> io::Result<PeerResponse> {
    let bad = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, detail.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("peer response missing header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("peer response head not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty status line"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("peer response is not HTTP/1.x"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status code"))?;
    let mut content_type = String::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-type") {
            content_type = value.to_string();
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| bad("unparseable content-length"))?,
            );
        }
    }
    let body = raw[head_end + 4..].to_vec();
    if let Some(expected) = content_length {
        if body.len() != expected {
            return Err(bad("peer response body truncated"));
        }
    }
    Ok(PeerResponse {
        status,
        content_type,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}";
        let res = parse_response(raw).unwrap();
        assert_eq!(res.status, 200);
        assert_eq!(res.content_type, "application/json");
        assert_eq!(res.body, b"{}");
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(parse_response(raw).is_err());
    }

    #[test]
    fn rejects_non_http() {
        assert!(parse_response(b"SMTP nope\r\n\r\n").is_err());
        assert!(parse_response(b"no terminator at all").is_err());
    }

    #[test]
    fn injected_partition_reads_as_connection_refused() {
        use dee_serve::FaultSpec;
        let plan = FaultPlan::new(0).arm(
            FaultSite::PartitionPeer,
            FaultSpec {
                error_ppm: 1_000_000,
                ..FaultSpec::default()
            },
        );
        let err = peer_request(
            "127.0.0.1:1",
            "GET",
            "/healthz",
            b"",
            PeerTimeouts::default(),
            &plan,
        )
        .expect_err("partition must fire");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }
}
