//! `LocalCluster`: N in-process `dee serve` nodes + gateway + anti-entropy
//! agent, with kill/respawn seams for chaos tests and the `dee cluster`
//! CLI.
//!
//! Each node gets its own store directory (`<root>/node-<i>`) and a stable
//! port: nodes initially bind port 0, the chosen address is recorded, and
//! a respawn re-binds the *same* address — so the gateway's ring (which
//! hashes peer positions, not liveness) stays valid across the kill, and
//! the dead-peer prober re-admits the node the moment its `/healthz`
//! answers again.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use dee_serve::{FaultPlan, Server, ServerConfig};

use crate::client::PeerTimeouts;
use crate::gateway::{Gateway, GatewayConfig};
use crate::sync::SyncAgent;

/// Tuning knobs for [`LocalCluster::launch`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Node count.
    pub nodes: usize,
    /// Replica set size per key.
    pub replication: usize,
    /// Root directory for per-node stores (`<root>/node-<i>`).
    pub store_root: PathBuf,
    /// Gateway bind address; port 0 picks a free port.
    pub gateway_addr: String,
    /// Worker threads per node.
    pub node_workers: usize,
    /// Gateway worker threads.
    pub gateway_workers: usize,
    /// Anti-entropy round interval; `None` runs no agent.
    pub sync_interval: Option<Duration>,
    /// Hedge budget passed to the gateway (see [`GatewayConfig::hedge_ms`]).
    pub hedge_ms: Option<u64>,
    /// Fault plan for the *cluster* sites (gateway forwarding, sync
    /// transport). Node-internal sites get inert plans; single-node chaos
    /// is `dee serve --chaos-seed`'s job.
    pub faults: Arc<FaultPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 3,
            replication: 2,
            store_root: std::env::temp_dir().join("dee-cluster"),
            gateway_addr: "127.0.0.1:0".to_string(),
            node_workers: 2,
            gateway_workers: 4,
            sync_interval: Some(Duration::from_millis(50)),
            hedge_ms: Some(0),
            faults: Arc::new(FaultPlan::inert()),
        }
    }
}

/// A running local cluster.
pub struct LocalCluster {
    nodes: Vec<Option<Server>>,
    addrs: Vec<SocketAddr>,
    store_dirs: Vec<PathBuf>,
    node_workers: usize,
    gateway: Option<Gateway>,
    sync: Option<SyncAgent>,
}

impl LocalCluster {
    /// Spawns the nodes, the gateway fronting them, and (optionally) the
    /// anti-entropy agent.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn/store-open failures; rejects `nodes == 0`.
    pub fn launch(config: ClusterConfig) -> io::Result<LocalCluster> {
        if config.nodes == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cluster needs at least one node",
            ));
        }
        let mut nodes = Vec::with_capacity(config.nodes);
        let mut addrs = Vec::with_capacity(config.nodes);
        let mut store_dirs = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let store_dir = config.store_root.join(format!("node-{i}"));
            std::fs::create_dir_all(&store_dir)?;
            let server = Server::spawn(node_config(
                "127.0.0.1:0",
                i,
                config.node_workers,
                &store_dir,
            ))?;
            addrs.push(server.addr());
            nodes.push(Some(server));
            store_dirs.push(store_dir);
        }
        let peers: Vec<String> = addrs.iter().map(SocketAddr::to_string).collect();
        let gateway = Gateway::spawn(GatewayConfig {
            addr: config.gateway_addr.clone(),
            peers: peers.clone(),
            replication: config.replication,
            workers: config.gateway_workers,
            hedge_ms: config.hedge_ms,
            faults: Arc::clone(&config.faults),
            ..GatewayConfig::default()
        })?;
        let sync = match config.sync_interval {
            Some(interval) => Some(SyncAgent::spawn(
                peers,
                interval,
                PeerTimeouts::default(),
                Arc::clone(&config.faults),
            )?),
            None => None,
        };
        Ok(LocalCluster {
            nodes,
            addrs,
            store_dirs,
            node_workers: config.node_workers,
            gateway: Some(gateway),
            sync,
        })
    }

    /// The gateway's bound address.
    ///
    /// # Panics
    ///
    /// Panics if called after [`shutdown`](Self::shutdown) consumed the
    /// gateway (impossible through the public API — shutdown takes
    /// `self`).
    #[must_use]
    pub fn gateway_addr(&self) -> SocketAddr {
        self.gateway
            .as_ref()
            .expect("gateway runs until shutdown")
            .addr()
    }

    /// The gateway handle, for metrics and dead-peer inspection.
    #[must_use]
    pub fn gateway(&self) -> &Gateway {
        self.gateway.as_ref().expect("gateway runs until shutdown")
    }

    /// Node `i`'s bound address (stable across kill/respawn).
    #[must_use]
    pub fn node_addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Node `i`'s store directory.
    #[must_use]
    pub fn node_store_dir(&self, i: usize) -> &PathBuf {
        &self.store_dirs[i]
    }

    /// Node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Always `false`: launch rejects zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Whether node `i` is currently running.
    #[must_use]
    pub fn node_alive(&self, i: usize) -> bool {
        self.nodes[i].is_some()
    }

    /// Kills node `i` (orderly shutdown; store directory and address are
    /// kept for respawn). No-op when already dead.
    pub fn kill_node(&mut self, i: usize) {
        if let Some(server) = self.nodes[i].take() {
            server.shutdown();
        }
    }

    /// Respawns node `i` on its original address. The port was freed by
    /// [`kill_node`](Self::kill_node), but the OS may lag a moment —
    /// retry briefly before giving up.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure after retries.
    pub fn respawn_node(&mut self, i: usize) -> io::Result<()> {
        if self.nodes[i].is_some() {
            return Ok(());
        }
        let addr = self.addrs[i].to_string();
        let mut last_err = None;
        for _ in 0..20 {
            match Server::spawn(node_config(
                &addr,
                i,
                self.node_workers,
                &self.store_dirs[i],
            )) {
                Ok(server) => {
                    self.nodes[i] = Some(server);
                    return Ok(());
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("respawn failed")))
    }

    /// Orderly stop: sync agent first (drains in-flight replication),
    /// then the gateway, then every node.
    pub fn shutdown(mut self) {
        if let Some(sync) = self.sync.take() {
            sync.stop();
        }
        if let Some(gateway) = self.gateway.take() {
            gateway.shutdown();
        }
        for node in &mut self.nodes {
            if let Some(server) = node.take() {
                server.shutdown();
            }
        }
    }
}

fn node_config(addr: &str, index: usize, workers: usize, store_dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: addr.to_string(),
        workers,
        node_id: format!("node-{index}"),
        store_dir: Some(store_dir.to_path_buf()),
        ..ServerConfig::default()
    }
}
