//! A data-cache model — the "suitable memory system" the paper defers to
//! future work (§1.2: "In the future, explicitly limited Processing
//! Elements, non-unit latencies, and a suitable memory system will be
//! studied").
//!
//! The crate provides a classic set-associative, LRU, write-allocate cache
//! ([`Cache`]) and a [`MemoryHierarchy`] that converts a dynamic trace's
//! memory accesses into per-access latencies ([`annotate_latencies`]).
//! `dee-ilpsim` accepts those latencies via
//! `PreparedTrace::with_mem_latencies`, closing the loop: the DEE models
//! can be evaluated above a finite memory system instead of the paper's
//! single-cycle ideal.
//!
//! # Example
//!
//! ```
//! use dee_mem::{annotate_latencies, CacheConfig, MemoryHierarchy};
//! use dee_workloads::{compress, Scale};
//!
//! let w = compress::build(Scale::Tiny);
//! let trace = w.capture_trace().expect("runs");
//! let mut hierarchy = MemoryHierarchy::new(CacheConfig::default(), 1, 10);
//! let lats = annotate_latencies(&trace, &mut hierarchy);
//! assert_eq!(lats.len(), trace.len());
//! assert!(hierarchy.stats().hit_rate() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dee_vm::Trace;

/// Geometry of a set-associative cache (word-addressed, like the ISA).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Words per line (power of two).
    pub line_words: u32,
}

impl CacheConfig {
    /// Total capacity in words.
    #[must_use]
    pub fn capacity_words(&self) -> u32 {
        self.sets * self.ways * self.line_words
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is zero or not a power of two where
    /// required.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(format!(
                "sets = {} must be a nonzero power of two",
                self.sets
            ));
        }
        if self.line_words == 0 || !self.line_words.is_power_of_two() {
            return Err(format!(
                "line_words = {} must be a nonzero power of two",
                self.line_words
            ));
        }
        if self.ways == 0 {
            return Err("ways must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    /// An early-90s 8 KiB direct-mapped-ish data cache: 128 sets × 2 ways
    /// × 8 words.
    fn default() -> Self {
        CacheConfig {
            sets: 128,
            ways: 2,
            line_words: 8,
        }
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
}

impl CacheStats {
    /// Fraction of accesses that hit (1.0 for no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// A set-associative, LRU, write-allocate cache over word addresses.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set][way]`: tag or `u32::MAX` when invalid.
    tags: Vec<Vec<u32>>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<Vec<u64>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("valid cache configuration");
        Cache {
            config,
            tags: vec![vec![u32::MAX; config.ways as usize]; config.sets as usize],
            stamps: vec![vec![0; config.ways as usize]; config.sets as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses word `addr`; returns whether it hit, allocating on miss.
    pub fn access(&mut self, addr: u32) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_words;
        let set = (line % self.config.sets) as usize;
        let tag = line / self.config.sets;

        if let Some(way) = self.tags[set].iter().position(|&t| t == tag) {
            self.stamps[set][way] = self.clock;
            self.stats.hits += 1;
            return true;
        }
        // Miss: replace the LRU way.
        let victim = (0..self.tags[set].len())
            .min_by_key(|&w| self.stamps[set][w])
            .expect("at least one way");
        self.tags[set][victim] = tag;
        self.stamps[set][victim] = self.clock;
        false
    }

    /// Running counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A single-level data-cache hierarchy assigning per-access latencies.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cache: Cache,
    hit_latency: u32,
    miss_latency: u32,
}

impl MemoryHierarchy {
    /// Creates a hierarchy with the given hit and miss latencies (cycles).
    ///
    /// # Panics
    ///
    /// Panics when the cache configuration is invalid or a latency is
    /// zero.
    #[must_use]
    pub fn new(config: CacheConfig, hit_latency: u32, miss_latency: u32) -> Self {
        assert!(
            hit_latency >= 1 && miss_latency >= hit_latency,
            "latencies ordered"
        );
        MemoryHierarchy {
            cache: Cache::new(config),
            hit_latency,
            miss_latency,
        }
    }

    /// A perfect memory: every access takes `latency` cycles.
    #[must_use]
    pub fn perfect(latency: u32) -> Self {
        // A 1-set, 1-way dummy cache; latencies equal so it never matters.
        MemoryHierarchy {
            cache: Cache::new(CacheConfig {
                sets: 1,
                ways: 1,
                line_words: 1,
            }),
            hit_latency: latency,
            miss_latency: latency,
        }
    }

    /// Latency of an access to `addr`, updating cache state.
    pub fn access(&mut self, addr: u32) -> u32 {
        if self.cache.access(addr) {
            self.hit_latency
        } else {
            self.miss_latency
        }
    }

    /// Cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Runs `trace`'s memory accesses (in dynamic order) through `hierarchy`,
/// returning one latency per record: the access latency for loads and
/// stores, 0 for everything else. Feed the result to
/// `dee_ilpsim::PreparedTrace::with_mem_latencies`.
#[must_use]
pub fn annotate_latencies(trace: &Trace, hierarchy: &mut MemoryHierarchy) -> Vec<u32> {
    trace
        .records()
        .iter()
        .map(|record| match record.mem_read.or(record.mem_write) {
            Some(addr) => hierarchy.access(addr),
            None => 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_words: 4,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(3), "same line");
        assert!(!c.access(4), "next line");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_replacement_evicts_oldest() {
        let mut c = tiny_cache(); // 2 sets x 2 ways x 4 words; set = line % 2
                                  // Lines 0, 2, 4 all map to set 0 (even lines).
        assert!(!c.access(0)); // line 0 -> set 0
        assert!(!c.access(8)); // line 2 -> set 0
        assert!(!c.access(16)); // line 4 -> set 0, evicts line 0
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(16), "line 4 still resident");
    }

    #[test]
    fn associativity_keeps_conflicting_lines() {
        let direct = CacheConfig {
            sets: 4,
            ways: 1,
            line_words: 1,
        };
        let assoc = CacheConfig {
            sets: 4,
            ways: 2,
            line_words: 1,
        };
        let mut d = Cache::new(direct);
        let mut a = Cache::new(assoc);
        // Two addresses conflicting in the same set, alternated.
        for _ in 0..10 {
            d.access(0);
            d.access(4);
            a.access(0);
            a.access(4);
        }
        assert_eq!(d.stats().hits, 0, "direct-mapped thrashes");
        assert_eq!(a.stats().hits, 18, "2-way keeps both");
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig {
            sets: 3,
            ways: 1,
            line_words: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            sets: 4,
            ways: 0,
            line_words: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            sets: 4,
            ways: 1,
            line_words: 3
        }
        .validate()
        .is_err());
        assert!(CacheConfig::default().validate().is_ok());
        assert_eq!(CacheConfig::default().capacity_words(), 2048);
    }

    #[test]
    #[should_panic(expected = "valid cache configuration")]
    fn cache_rejects_bad_config() {
        let _ = Cache::new(CacheConfig {
            sets: 0,
            ways: 1,
            line_words: 1,
        });
    }

    #[test]
    fn hierarchy_latencies() {
        let mut h = MemoryHierarchy::new(
            CacheConfig {
                sets: 2,
                ways: 1,
                line_words: 4,
            },
            1,
            12,
        );
        assert_eq!(h.access(0), 12, "cold miss");
        assert_eq!(h.access(1), 1, "line hit");
        assert!(h.stats().hit_rate() > 0.4);
    }

    #[test]
    fn perfect_memory_is_flat() {
        let mut h = MemoryHierarchy::perfect(2);
        for addr in [0u32, 1000, 54321, 0] {
            assert_eq!(h.access(addr), 2);
        }
    }

    #[test]
    fn annotation_aligns_with_records() {
        let w = dee_workloads::compress::build(dee_workloads::Scale::Tiny);
        let trace = w.capture_trace().expect("runs");
        let mut h = MemoryHierarchy::new(CacheConfig::default(), 1, 10);
        let lats = annotate_latencies(&trace, &mut h);
        assert_eq!(lats.len(), trace.len());
        for (lat, rec) in lats.iter().zip(trace.records()) {
            if rec.mem_read.is_some() || rec.mem_write.is_some() {
                assert!(*lat == 1 || *lat == 10);
            } else {
                assert_eq!(*lat, 0);
            }
        }
        let stats = h.stats();
        assert_eq!(
            stats.accesses as usize,
            trace
                .records()
                .iter()
                .filter(|r| r.mem_read.is_some() || r.mem_write.is_some())
                .count()
        );
        // LZW's hash table has strong locality.
        assert!(stats.hit_rate() > 0.6, "hit rate {}", stats.hit_rate());
    }
}

#[cfg(test)]
mod proptests {
    //! Property tests over a deterministic xorshift sweep (the repo builds
    //! with no external crates, so no `proptest`; failures print the seed).
    use super::*;

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn addrs(&mut self, bound: u32, max_len: usize) -> Vec<u32> {
            let len = 1 + (self.next() as usize) % max_len;
            (0..len)
                .map(|_| (self.next() % u64::from(bound)) as u32)
                .collect()
        }
    }

    /// Hits never exceed accesses; every access is counted.
    #[test]
    fn stats_sane() {
        let mut rng = Rng(0x5eed_0003);
        for case in 0..128 {
            let addrs = rng.addrs(4096, 200);
            let mut c = Cache::new(CacheConfig::default());
            for &a in &addrs {
                c.access(a);
            }
            let s = c.stats();
            assert!(s.hits <= s.accesses, "case {case}");
            assert_eq!(s.accesses, addrs.len() as u64, "case {case}");
        }
    }

    /// A larger cache never has fewer hits on the same address stream
    /// (LRU inclusion property across way counts).
    #[test]
    fn more_ways_never_hurt() {
        let mut rng = Rng(0x5eed_0004);
        for case in 0..128 {
            let addrs = rng.addrs(256, 300);
            let small = CacheConfig {
                sets: 8,
                ways: 1,
                line_words: 2,
            };
            let big = CacheConfig {
                sets: 8,
                ways: 4,
                line_words: 2,
            };
            let mut c_small = Cache::new(small);
            let mut c_big = Cache::new(big);
            for &a in &addrs {
                c_small.access(a);
                c_big.access(a);
            }
            assert!(c_big.stats().hits >= c_small.stats().hits, "case {case}");
        }
    }
}
