//! Seeded fuzz of the lowering pipeline: for any instruction stream —
//! malformed or not — `DecodedProgram::from_instrs` must agree with
//! `Program::new` (same accept/reject decision, matching typed errors),
//! and on accepted programs the decoded engine must produce bit-identical
//! traces, outputs, final state, and *traps* (same `VmError` value at the
//! same point) as the reference interpreter. Nothing here may panic or
//! diverge.
//!
//! `DEE_CHAOS_SEED` (default 42) picks the stream; `DEE_CHAOS_ITERS`
//! (default 300) scales how many programs are fuzzed.

use dee_isa::{AluOp, BranchCond, Instr, Program, ProgramError, Reg};
use dee_vm::{trace_program, trace_program_decoded, DecodeError, DecodedProgram};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(Reg::COUNT as u64) as u8)
    }

    fn alu_op(&mut self) -> AluOp {
        const OPS: [AluOp; 15] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Nor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Seq,
        ];
        OPS[self.below(OPS.len() as u64) as usize]
    }

    fn cond(&mut self) -> BranchCond {
        const CONDS: [BranchCond; 6] = [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Le,
            BranchCond::Gt,
        ];
        CONDS[self.below(CONDS.len() as u64) as usize]
    }

    /// A mostly-in-range static target; ~1 in 8 draws lands past the end,
    /// exercising the `TargetOutOfRange` validation on both paths.
    fn target(&mut self, len: u64) -> u32 {
        if self.below(8) == 0 {
            (len + self.below(4)) as u32
        } else {
            self.below(len.max(1)) as u32
        }
    }

    /// Offsets biased small but occasionally extreme, so stores and loads
    /// hit both valid memory and the out-of-range trap.
    fn offset(&mut self) -> i32 {
        match self.below(10) {
            0 => i32::MIN + self.below(1000) as i32,
            1 => i32::MAX - self.below(1000) as i32,
            _ => self.below(64) as i32 - 8,
        }
    }

    fn instr(&mut self, len: u64) -> Instr {
        match self.below(12) {
            0 => Instr::Alu {
                op: self.alu_op(),
                rd: self.reg(),
                rs: self.reg(),
                rt: self.reg(),
            },
            1 => Instr::AluImm {
                op: self.alu_op(),
                rd: self.reg(),
                rs: self.reg(),
                imm: self.offset(),
            },
            2 => Instr::Li {
                rd: self.reg(),
                imm: self.below(1 << 20) as i32 - (1 << 19),
            },
            3 => Instr::Lw {
                rd: self.reg(),
                base: self.reg(),
                offset: self.offset(),
            },
            4 => Instr::Sw {
                rs: self.reg(),
                base: self.reg(),
                offset: self.offset(),
            },
            5 => Instr::Branch {
                cond: self.cond(),
                rs: self.reg(),
                rt: self.reg(),
                target: self.target(len),
            },
            6 => Instr::Jump {
                target: self.target(len),
            },
            7 => Instr::Jal {
                target: self.target(len),
            },
            // `jr` through an arbitrary register: negative values, table
            // dispatch, and targets past the end all arise dynamically.
            8 => Instr::Jr { rs: self.reg() },
            9 => Instr::Out { rs: self.reg() },
            10 => Instr::Halt,
            _ => Instr::Nop,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Collapses both error types onto a comparable shape.
fn program_err_key(e: &ProgramError) -> (u8, u32, u32) {
    match *e {
        ProgramError::Empty => (0, 0, 0),
        ProgramError::TargetOutOfRange { pc, target } => (1, pc, target),
        ProgramError::NoHalt => (2, 0, 0),
    }
}

fn decode_err_key(e: &DecodeError) -> (u8, u32, u32) {
    match *e {
        DecodeError::Empty => (0, 0, 0),
        DecodeError::TargetOutOfRange { pc, target } => (1, pc, target),
        DecodeError::NoHalt => (2, 0, 0),
    }
}

/// One fuzzed stream: validation must agree; accepted programs must run
/// identically (records, output, and trap) under both engines.
fn check_stream(instrs: Vec<Instr>, memory: &[i32], limit: u64, label: &str) {
    let validated = Program::new(instrs.clone());
    let lowered = DecodedProgram::from_instrs(&instrs);
    match (&validated, &lowered) {
        (Ok(_), Ok(_)) => {}
        (Err(pe), Err(de)) => {
            assert_eq!(
                program_err_key(pe),
                decode_err_key(de),
                "{label}: rejection reasons diverge ({pe} vs {de})"
            );
            return;
        }
        (Ok(_), Err(de)) => panic!("{label}: lowering rejects a valid program: {de}"),
        (Err(pe), Ok(_)) => panic!("{label}: lowering accepts an invalid program: {pe}"),
    }
    let program = validated.expect("both accepted");
    let interp = trace_program(&program, memory, limit);
    let decoded = trace_program_decoded(&program, memory, limit);
    match (&interp, &decoded) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.records(), b.records(), "{label}: records diverge");
            assert_eq!(a.output(), b.output(), "{label}: outputs diverge");
        }
        (Err(a), Err(b)) => {
            assert_eq!(a, b, "{label}: traps diverge");
        }
        (a, b) => panic!("{label}: one engine trapped, the other did not: {a:?} vs {b:?}"),
    }
}

#[test]
fn random_streams_lower_and_run_identically() {
    let seed = env_u64("DEE_CHAOS_SEED", 42);
    let iters = env_u64("DEE_CHAOS_ITERS", 300);
    let mut rng = Rng::new(seed ^ 0x4c4f_5745_5246_555a); // "LOWERFUZ"
    for case in 0..iters {
        let len = 1 + rng.below(40);
        let mut instrs: Vec<Instr> = (0..len).map(|_| rng.instr(len)).collect();
        // Half the streams get a guaranteed halt so a healthy fraction
        // survives validation; the rest exercise the NoHalt reject.
        if rng.below(2) == 0 {
            let at = rng.below(len) as usize;
            instrs[at] = Instr::Halt;
        }
        let memory: Vec<i32> = (0..rng.below(32))
            .map(|_| rng.below(1 << 16) as i32)
            .collect();
        check_stream(
            instrs,
            &memory,
            10_000,
            &format!("case {case} (seed {seed})"),
        );
    }
}

#[test]
fn hand_picked_malformed_streams_reject_identically() {
    // Empty stream.
    check_stream(Vec::new(), &[], 100, "empty");
    // No halt anywhere.
    check_stream(vec![Instr::Nop, Instr::Nop], &[], 100, "no-halt");
    // Static branch target one past the end.
    check_stream(
        vec![
            Instr::Branch {
                cond: BranchCond::Eq,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: 2,
            },
            Instr::Halt,
        ],
        &[],
        100,
        "branch-past-end",
    );
    // Jump table truncated: a jr whose register indexes past the table.
    let table_base = 3;
    check_stream(
        vec![
            Instr::Li {
                rd: Reg::new(1),
                imm: table_base + 5, // past the 2-entry table
            },
            Instr::Jr { rs: Reg::new(1) },
            Instr::Halt,
            Instr::Jump { target: 2 },
            Instr::Jump { target: 2 },
        ],
        &[],
        100,
        "truncated-jr-table",
    );
    // Negative jr target.
    check_stream(
        vec![
            Instr::Li {
                rd: Reg::new(1),
                imm: -7,
            },
            Instr::Jr { rs: Reg::new(1) },
            Instr::Halt,
        ],
        &[],
        100,
        "negative-jr",
    );
    // A store aimed at the program's own (nonexistent) code addresses:
    // the toy ISA has no self-modification, so this is just a memory
    // write both engines must age identically.
    check_stream(
        vec![
            Instr::Li {
                rd: Reg::new(1),
                imm: 1,
            },
            Instr::Sw {
                rs: Reg::new(1),
                base: Reg::ZERO,
                offset: 0,
            },
            Instr::Lw {
                rd: Reg::new(2),
                base: Reg::ZERO,
                offset: 0,
            },
            Instr::Out { rs: Reg::new(2) },
            Instr::Halt,
        ],
        &[0],
        100,
        "store-over-code-image",
    );
    // Step-limit trap must fire identically (limit cuts the loop short).
    check_stream(
        vec![Instr::Jump { target: 0 }, Instr::Halt],
        &[],
        10,
        "step-limit",
    );
}
