//! Pull-based trace chunking: bounded batches of [`TraceRecord`]s that
//! flow from a producer (a captured [`Trace`], a live machine, or a
//! store replay) into incremental consumers without ever materializing a
//! multi-million-record vector.
//!
//! The contract is deliberately tiny so every producer in the workspace
//! can implement it: [`TraceChunkSource::next_chunk`] appends up to `max`
//! records to the caller's buffer and returns how many it appended; zero
//! means the stream is exhausted, after which
//! [`TraceChunkSource::take_output`] yields the program's output stream.
//! Consumers own the buffer, so one allocation of `max` records is the
//! steady-state footprint regardless of trace length.

use dee_isa::Program;

use crate::machine::{Machine, StepOutcome, VmError};
use crate::trace::{Trace, TraceRecord};

/// Default number of records per pulled chunk (~64 K records ≈ 1.25 MiB
/// of in-flight [`TraceRecord`]s at 20 serialized bytes each).
pub const DEFAULT_CHUNK_RECORDS: usize = 64 * 1024;

/// A producer of bounded trace-record chunks.
///
/// Implementors must yield exactly the record stream (and output) that a
/// whole-trace capture of the same program would produce, in order — the
/// streaming pipeline's byte-identical guarantee rests on it.
pub trait TraceChunkSource {
    /// Appends up to `max` records to `buf` and returns how many were
    /// appended. Returning `0` means the stream is exhausted; further
    /// calls keep returning `0`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the transport or execution fault.
    /// After an error the source is poisoned and must not be reused.
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> Result<usize, String>;

    /// The program's output stream. Only valid once `next_chunk` has
    /// returned `0`; implementations may error before that.
    ///
    /// # Errors
    ///
    /// When the stream is not yet exhausted or the transport faults.
    fn take_output(&mut self) -> Result<Vec<i32>, String>;

    /// The total record count when the producer knows it up front
    /// (serialized traces do; a live machine does not).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Chunked iteration over an in-memory [`Trace`].
pub struct TraceChunks<'a> {
    trace: &'a Trace,
    cursor: usize,
}

impl<'a> TraceChunks<'a> {
    /// Starts a chunked pass over `trace` from record 0.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        TraceChunks { trace, cursor: 0 }
    }
}

impl TraceChunkSource for TraceChunks<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> Result<usize, String> {
        let records = self.trace.records();
        let n = max.min(records.len() - self.cursor);
        buf.extend_from_slice(&records[self.cursor..self.cursor + n]);
        self.cursor += n;
        Ok(n)
    }

    fn take_output(&mut self) -> Result<Vec<i32>, String> {
        if self.cursor < self.trace.len() {
            return Err("trace chunk stream not exhausted".to_string());
        }
        Ok(self.trace.output().to_vec())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

/// Chunked capture from a live [`Machine`]: records are produced by
/// stepping the interpreter, so no full trace ever exists in memory.
///
/// Yields exactly the stream [`trace_program`](crate::trace_program)
/// would capture, including the same [`VmError`] (reported as a string)
/// on the same dynamic step.
pub struct CaptureChunks<'a> {
    machine: Machine,
    program: &'a Program,
    limit: u64,
    done: bool,
    poisoned: bool,
}

impl<'a> CaptureChunks<'a> {
    /// Creates a capture source over a fresh default machine with
    /// `initial_memory` loaded at word 0.
    ///
    /// # Errors
    ///
    /// [`VmError::ImageTooLarge`] when the image does not fit.
    pub fn new(program: &'a Program, initial_memory: &[i32], limit: u64) -> Result<Self, VmError> {
        let mut machine = Machine::new();
        machine.try_load_memory(initial_memory)?;
        Ok(CaptureChunks {
            machine,
            program,
            limit,
            done: false,
            poisoned: false,
        })
    }

    /// The machine being stepped (for checkpointing between chunks).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl TraceChunkSource for CaptureChunks<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<TraceRecord>, max: usize) -> Result<usize, String> {
        if self.poisoned {
            return Err("capture source poisoned by an earlier fault".to_string());
        }
        if self.done {
            return Ok(0);
        }
        let mut appended = 0usize;
        while appended < max {
            if self.machine.executed() >= self.limit {
                self.poisoned = true;
                return Err(VmError::StepLimit { limit: self.limit }.to_string());
            }
            match self.machine.step(self.program) {
                Ok((outcome, record)) => {
                    buf.push(record);
                    appended += 1;
                    if outcome == StepOutcome::Halted {
                        self.done = true;
                        break;
                    }
                }
                Err(e) => {
                    self.poisoned = true;
                    return Err(e.to_string());
                }
            }
        }
        Ok(appended)
    }

    fn take_output(&mut self) -> Result<Vec<i32>, String> {
        if self.poisoned {
            return Err("capture source poisoned by an earlier fault".to_string());
        }
        if !self.done {
            return Err("capture chunk stream not exhausted".to_string());
        }
        Ok(self.machine.output().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_program;
    use dee_isa::{Assembler, Reg};

    fn looped(n: i32) -> Program {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, n);
        asm.label("top");
        asm.out(r1);
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        asm.assemble().unwrap()
    }

    fn drain(source: &mut dyn TraceChunkSource, max: usize) -> (Vec<TraceRecord>, Vec<i32>) {
        let mut all = Vec::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            let n = source.next_chunk(&mut buf, max).unwrap();
            assert!(n <= max);
            assert_eq!(n, buf.len());
            if n == 0 {
                break;
            }
            all.extend_from_slice(&buf);
        }
        let output = source.take_output().unwrap();
        (all, output)
    }

    #[test]
    fn trace_chunks_match_whole_trace_at_every_chunk_size() {
        let p = looped(9);
        let trace = trace_program(&p, &[], 10_000).unwrap();
        for max in [1usize, 3, 7, 64, 100_000] {
            let mut source = TraceChunks::new(&trace);
            assert_eq!(source.len_hint(), Some(trace.len() as u64));
            let (records, output) = drain(&mut source, max);
            assert_eq!(records.as_slice(), trace.records());
            assert_eq!(output.as_slice(), trace.output());
        }
    }

    #[test]
    fn capture_chunks_match_trace_program() {
        let p = looped(9);
        let trace = trace_program(&p, &[], 10_000).unwrap();
        for max in [1usize, 5, 1024] {
            let mut source = CaptureChunks::new(&p, &[], 10_000).unwrap();
            assert_eq!(source.len_hint(), None);
            let (records, output) = drain(&mut source, max);
            assert_eq!(records.as_slice(), trace.records());
            assert_eq!(output.as_slice(), trace.output());
        }
    }

    #[test]
    fn empty_trace_chunks() {
        let trace = Trace::from_parts(vec![], vec![4]);
        let mut source = TraceChunks::new(&trace);
        let (records, output) = drain(&mut source, 8);
        assert!(records.is_empty());
        assert_eq!(output, vec![4]);
    }

    #[test]
    fn output_before_exhaustion_is_an_error() {
        let p = looped(9);
        let trace = trace_program(&p, &[], 10_000).unwrap();
        let mut source = TraceChunks::new(&trace);
        assert!(source.take_output().is_err());
        let mut capture = CaptureChunks::new(&p, &[], 10_000).unwrap();
        assert!(capture.take_output().is_err());
    }

    #[test]
    fn capture_chunks_report_step_limit() {
        let p = looped(1_000);
        let mut source = CaptureChunks::new(&p, &[], 10).unwrap();
        let mut buf = Vec::new();
        let err = loop {
            buf.clear();
            match source.next_chunk(&mut buf, 4) {
                Ok(0) => panic!("limit never hit"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(err.contains("limit"), "{err}");
        // Poisoned: both entry points now fail.
        assert!(source.next_chunk(&mut buf, 4).is_err());
        assert!(source.take_output().is_err());
    }
}
