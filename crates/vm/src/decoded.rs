//! Pre-decoded execution engine: a compile step that lowers a validated
//! [`Program`] into a dense, cache-friendly form executed by a tight
//! indexed dispatch loop.
//!
//! The reference interpreter ([`Machine`]) re-matches the full [`Instr`]
//! enum and re-filters `r0` on every dynamic step. For trace capture that
//! per-step work dominates `store_replay` and the sweep binaries. The
//! decoded engine (modeled on classic decoded-opcode emulators) does all
//! per-instruction analysis once, at compile time:
//!
//! * **Fused operands** — every register operand is pre-resolved to a raw
//!   array index. Writes to the hardwired-zero register are redirected to
//!   a 33rd *sink* slot, so the dispatch loop never tests `is_zero`; the
//!   invariant `regs[0] == 0` makes reads checkless too.
//! * **Pre-resolved control flow** — static branch/jump/call targets were
//!   validated by [`Program::new`] (or [`DecodedProgram::from_instrs`]),
//!   so taken edges assign `pc` without bounds checks; only fall-through
//!   off the end and dynamic `jr` targets are checked, exactly where the
//!   interpreter would fault.
//! * **`jr` table spans** — maximal runs of ≥ 2 consecutive `Jump`
//!   instructions (the dispatch tables `dee-gen` emits for its
//!   register-indirect branches) are detected at compile time and their
//!   targets pre-resolved into dense spans, exposed via
//!   [`DecodedProgram::jr_tables`] for consumers that want to reason about
//!   indirect dispatch without rescanning the program.
//! * **Trace-record templates** — the static fields of every
//!   [`TraceRecord`] (`pc`, `srcs`, `dst`) are precomputed per pc; the
//!   dispatch loop only patches the dynamic fields (depth, memory
//!   address, branch outcome) before pushing.
//!
//! The engine is *observationally identical* to the interpreter: same
//! trace records, same output, same [`VmError`] on the same step. The
//! differential harness in `tests/engine_differential.rs` and the seeded
//! lowering fuzz in `crates/vm/tests/lowering_fuzz.rs` lock this down.

use std::fmt;
use std::str::FromStr;

use dee_isa::{AluOp, BranchCond, Instr, Program, Reg};

use crate::machine::{Machine, RunResult, VmError};
use crate::trace::{trace_program, BranchOutcome, Trace, TraceRecord};

/// Index of the write sink: register writes to `r0` land here and are
/// never read back, preserving the hardwired-zero semantics without a
/// per-step test.
const SINK: u8 = Reg::COUNT as u8;

/// One pre-decoded instruction. Register fields are raw indices into the
/// 33-slot register file (destinations may be [`SINK`]); targets are
/// absolute instruction indices already validated in range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DecodedOp {
    Alu {
        op: AluOp,
        rd: u8,
        rs: u8,
        rt: u8,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs: u8,
        imm: i32,
    },
    Li {
        rd: u8,
        imm: i32,
    },
    Lw {
        rd: u8,
        base: u8,
        offset: i32,
    },
    Sw {
        rs: u8,
        base: u8,
        offset: i32,
    },
    Branch {
        cond: BranchCond,
        rs: u8,
        rt: u8,
        target: u32,
    },
    Jump {
        target: u32,
    },
    Jal {
        target: u32,
    },
    Jr {
        rs: u8,
    },
    Out {
        rs: u8,
    },
    Halt,
    Nop,
}

/// A pre-resolved `jr` dispatch table: a maximal span of ≥ 2 consecutive
/// unconditional `Jump` instructions, with every entry's target collected
/// in order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JrTable {
    /// Address of the first `Jump` in the span.
    pub start: u32,
    /// The pre-resolved target of each consecutive `Jump`.
    pub targets: Vec<u32>,
}

impl JrTable {
    /// Number of entries in the span.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the span is empty (never true for a detected table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Why a raw instruction stream could not be lowered.
///
/// Mirrors the validation of [`Program::new`] so that malformed inputs are
/// rejected with the same typed story on both paths — the lowering fuzz
/// asserts a mutated stream either fails here or traps identically to the
/// interpreter at run time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The instruction stream was empty.
    Empty,
    /// A static branch/jump target at `pc` points outside the program.
    TargetOutOfRange {
        /// Address of the offending instruction.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// No `halt` instruction: execution could only end by faulting.
    NoHalt,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::Empty => f.write_str("cannot lower an empty instruction stream"),
            DecodeError::TargetOutOfRange { pc, target } => {
                write!(
                    f,
                    "instruction at {pc} targets out-of-range address {target}"
                )
            }
            DecodeError::NoHalt => f.write_str("instruction stream contains no halt"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn src(r: Reg) -> u8 {
    r.index() as u8
}

fn dst(r: Reg) -> u8 {
    if r.is_zero() {
        SINK
    } else {
        r.index() as u8
    }
}

/// A [`Program`] lowered into the dense pre-decoded form.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    ops: Vec<DecodedOp>,
    templates: Vec<TraceRecord>,
    defs: Vec<Option<Reg>>,
    is_store: Vec<bool>,
    jr_tables: Vec<JrTable>,
}

impl DecodedProgram {
    /// Lowers a validated program. Infallible: `Program::new` already
    /// guarantees everything [`DecodedProgram::from_instrs`] checks.
    #[must_use]
    pub fn compile(program: &Program) -> Self {
        Self::from_instrs(program.instrs()).expect("validated Program must lower")
    }

    /// Lowers a raw instruction stream, re-running the full validation.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] for empty streams, out-of-range
    /// static targets, or missing `halt` — the same inputs
    /// [`Program::new`] rejects.
    pub fn from_instrs(instrs: &[Instr]) -> Result<Self, DecodeError> {
        if instrs.is_empty() {
            return Err(DecodeError::Empty);
        }
        let len = instrs.len() as u32;
        for (pc, instr) in instrs.iter().enumerate() {
            if let Some(target) = instr.static_target() {
                if target >= len {
                    return Err(DecodeError::TargetOutOfRange {
                        pc: pc as u32,
                        target,
                    });
                }
            }
        }
        if !instrs.iter().any(|i| matches!(i, Instr::Halt)) {
            return Err(DecodeError::NoHalt);
        }

        let mut ops = Vec::with_capacity(instrs.len());
        let mut templates = Vec::with_capacity(instrs.len());
        let mut defs = Vec::with_capacity(instrs.len());
        let mut is_store = Vec::with_capacity(instrs.len());
        for (pc, instr) in instrs.iter().enumerate() {
            ops.push(match *instr {
                Instr::Alu { op, rd, rs, rt } => DecodedOp::Alu {
                    op,
                    rd: dst(rd),
                    rs: src(rs),
                    rt: src(rt),
                },
                Instr::AluImm { op, rd, rs, imm } => DecodedOp::AluImm {
                    op,
                    rd: dst(rd),
                    rs: src(rs),
                    imm,
                },
                Instr::Li { rd, imm } => DecodedOp::Li { rd: dst(rd), imm },
                Instr::Lw { rd, base, offset } => DecodedOp::Lw {
                    rd: dst(rd),
                    base: src(base),
                    offset,
                },
                Instr::Sw { rs, base, offset } => DecodedOp::Sw {
                    rs: src(rs),
                    base: src(base),
                    offset,
                },
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => DecodedOp::Branch {
                    cond,
                    rs: src(rs),
                    rt: src(rt),
                    target,
                },
                Instr::Jump { target } => DecodedOp::Jump { target },
                Instr::Jal { target } => DecodedOp::Jal { target },
                Instr::Jr { rs } => DecodedOp::Jr { rs: src(rs) },
                Instr::Out { rs } => DecodedOp::Out { rs: src(rs) },
                Instr::Halt => DecodedOp::Halt,
                Instr::Nop => DecodedOp::Nop,
            });
            templates.push(TraceRecord {
                pc: pc as u32,
                srcs: instr.uses(),
                dst: instr.def(),
                mem_read: None,
                mem_write: None,
                branch: None,
                depth: 0,
            });
            defs.push(instr.def());
            is_store.push(matches!(instr, Instr::Sw { .. }));
        }

        let mut jr_tables = Vec::new();
        let mut i = 0usize;
        while i < instrs.len() {
            if let Instr::Jump { .. } = instrs[i] {
                let start = i;
                let mut targets = Vec::new();
                while let Some(Instr::Jump { target }) = instrs.get(i) {
                    targets.push(*target);
                    i += 1;
                }
                if targets.len() >= 2 {
                    jr_tables.push(JrTable {
                        start: start as u32,
                        targets,
                    });
                }
            } else {
                i += 1;
            }
        }

        Ok(DecodedProgram {
            ops,
            templates,
            defs,
            is_store,
            jr_tables,
        })
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the lowered program is empty (never true once built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The register written at `pc` (`r0` writes reported as `None`),
    /// or `None` when out of range — a pre-decoded `Instr::def`.
    #[must_use]
    pub fn def_of(&self, pc: u32) -> Option<Reg> {
        self.defs.get(pc as usize).copied().flatten()
    }

    /// Whether the instruction at `pc` is a store — a pre-decoded
    /// `matches!(_, Instr::Sw { .. })`.
    #[must_use]
    pub fn is_store(&self, pc: u32) -> bool {
        self.is_store.get(pc as usize).copied().unwrap_or(false)
    }

    /// The detected `jr` dispatch-table spans, in address order.
    #[must_use]
    pub fn jr_tables(&self) -> &[JrTable] {
        &self.jr_tables
    }
}

/// Machine state for the decoded engine: identical architectural state to
/// [`Machine`] plus the write-sink register slot.
#[derive(Clone, Debug)]
pub struct DecodedMachine {
    /// 32 architectural registers plus the `r0` write sink at index 32.
    regs: [i32; Reg::COUNT + 1],
    mem: Vec<i32>,
    pc: u32,
    halted: bool,
    depth: u32,
    executed: u64,
    output: Vec<i32>,
}

impl Default for DecodedMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl DecodedMachine {
    /// Creates a machine with the default memory size; SP starts at the
    /// top of memory, matching [`Machine::new`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_memory_size(crate::machine::DEFAULT_MEM_WORDS)
    }

    /// Creates a machine with `words` words of zeroed memory.
    #[must_use]
    pub fn with_memory_size(words: usize) -> Self {
        let mut m = DecodedMachine {
            regs: [0; Reg::COUNT + 1],
            mem: vec![0; words],
            pc: 0,
            halted: false,
            depth: 0,
            executed: 0,
            output: Vec::new(),
        };
        m.regs[Reg::SP.index()] = words as i32;
        m
    }

    /// Copies `image` into memory starting at word 0, rejecting images
    /// that do not fit.
    ///
    /// # Errors
    ///
    /// [`VmError::ImageTooLarge`] when `image` is larger than memory.
    pub fn try_load_memory(&mut self, image: &[i32]) -> Result<(), VmError> {
        if image.len() > self.mem.len() {
            return Err(VmError::ImageTooLarge {
                image: image.len(),
                memory: self.mem.len(),
            });
        }
        self.mem[..image.len()].copy_from_slice(image);
        Ok(())
    }

    /// Reads a register (reads of `r0` always return 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> i32 {
        self.regs[r.index()]
    }

    /// Reads the memory word at `addr`, or `None` when out of range.
    #[must_use]
    pub fn mem_word(&self, addr: u32) -> Option<i32> {
        self.mem.get(addr as usize).copied()
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether `halt` has executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current call depth.
    #[must_use]
    pub fn call_depth(&self) -> u32 {
        self.depth
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The output stream produced by `out` instructions.
    #[must_use]
    pub fn output(&self) -> &[i32] {
        &self.output
    }

    /// Digest of the full logical machine state (registers, pc, halt
    /// flag, call depth, executed count, output, memory) for differential
    /// testing; identical to [`Machine::state_digest`] whenever the two
    /// engines agree.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        state_digest_parts(
            |i| self.regs[i],
            self.pc,
            self.halted,
            self.depth,
            self.executed,
            &self.output,
            &self.mem,
        )
    }

    /// Runs the lowered program to `halt`, capturing the dynamic trace.
    ///
    /// # Errors
    ///
    /// The same errors as the interpreter on the same dynamic step:
    /// [`VmError::StepLimit`] (checked before each step), pc faults, and
    /// memory faults. On error the partially captured records match what
    /// the interpreter captured before faulting.
    pub fn run_trace(
        &mut self,
        program: &DecodedProgram,
        limit: u64,
        records: &mut Vec<TraceRecord>,
    ) -> Result<(), VmError> {
        self.dispatch::<true>(program, limit, records)
    }

    /// Runs the lowered program to `halt`, discarding trace records.
    ///
    /// # Errors
    ///
    /// Same contract as [`Machine::run`].
    pub fn run(&mut self, program: &DecodedProgram, limit: u64) -> Result<RunResult, VmError> {
        let mut sink = Vec::new();
        self.dispatch::<false>(program, limit, &mut sink)?;
        Ok(RunResult {
            executed: self.executed,
            output: self.output.clone(),
        })
    }

    /// The tight indexed dispatch loop. `CAPTURE` selects trace capture at
    /// compile time so the plain-run path pays nothing for it.
    fn dispatch<const CAPTURE: bool>(
        &mut self,
        program: &DecodedProgram,
        limit: u64,
        records: &mut Vec<TraceRecord>,
    ) -> Result<(), VmError> {
        let ops = program.ops.as_slice();
        let templates = program.templates.as_slice();
        let mem_len = self.mem.len();
        while !self.halted {
            if self.executed >= limit {
                return Err(VmError::StepLimit { limit });
            }
            let pc = self.pc;
            let Some(op) = ops.get(pc as usize) else {
                return Err(VmError::PcOutOfRange { pc });
            };
            let mut record = if CAPTURE {
                let mut r = templates[pc as usize];
                r.depth = self.depth;
                r
            } else {
                // Never pushed; any fixed record works.
                templates[pc as usize]
            };
            let mut next_pc = pc + 1;
            match *op {
                DecodedOp::Alu { op, rd, rs, rt } => {
                    self.regs[rd as usize] =
                        op.apply(self.regs[rs as usize], self.regs[rt as usize]);
                }
                DecodedOp::AluImm { op, rd, rs, imm } => {
                    self.regs[rd as usize] = op.apply(self.regs[rs as usize], imm);
                }
                DecodedOp::Li { rd, imm } => self.regs[rd as usize] = imm,
                DecodedOp::Lw { rd, base, offset } => {
                    let addr = i64::from(self.regs[base as usize]) + i64::from(offset);
                    if addr < 0 || addr as usize >= mem_len {
                        return Err(VmError::MemOutOfRange { pc, addr });
                    }
                    self.regs[rd as usize] = self.mem[addr as usize];
                    if CAPTURE {
                        record.mem_read = Some(addr as u32);
                    }
                }
                DecodedOp::Sw { rs, base, offset } => {
                    let addr = i64::from(self.regs[base as usize]) + i64::from(offset);
                    if addr < 0 || addr as usize >= mem_len {
                        return Err(VmError::MemOutOfRange { pc, addr });
                    }
                    self.mem[addr as usize] = self.regs[rs as usize];
                    if CAPTURE {
                        record.mem_write = Some(addr as u32);
                    }
                }
                DecodedOp::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    let taken = cond.eval(self.regs[rs as usize], self.regs[rt as usize]);
                    if CAPTURE {
                        record.branch = Some(BranchOutcome { taken, target });
                    }
                    if taken {
                        next_pc = target;
                    }
                }
                DecodedOp::Jump { target } => next_pc = target,
                DecodedOp::Jal { target } => {
                    self.regs[Reg::RA.index()] = (pc + 1) as i32;
                    self.depth += 1;
                    next_pc = target;
                }
                DecodedOp::Jr { rs } => {
                    let t = self.regs[rs as usize];
                    if t < 0 {
                        return Err(VmError::PcOutOfRange { pc: t as u32 });
                    }
                    self.depth = self.depth.saturating_sub(1);
                    next_pc = t as u32;
                }
                DecodedOp::Out { rs } => self.output.push(self.regs[rs as usize]),
                DecodedOp::Halt => {
                    self.halted = true;
                    self.executed += 1;
                    if CAPTURE {
                        records.push(record);
                    }
                    continue;
                }
                DecodedOp::Nop => {}
            }
            self.pc = next_pc;
            self.executed += 1;
            if CAPTURE {
                records.push(record);
            }
        }
        Ok(())
    }
}

/// Shared state-digest mixer (FNV-1a) so [`Machine`] and
/// [`DecodedMachine`] hash identical logical state identically.
pub(crate) fn state_digest_parts(
    reg: impl Fn(usize) -> i32,
    pc: u32,
    halted: bool,
    depth: u32,
    executed: u64,
    output: &[i32],
    mem: &[i32],
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for i in 0..Reg::COUNT {
        mix(reg(i) as u32 as u64);
    }
    mix(u64::from(pc));
    mix(u64::from(halted));
    mix(u64::from(depth));
    mix(executed);
    mix(output.len() as u64);
    for &w in output {
        mix(w as u32 as u64);
    }
    // Memory is hashed word-wise; zero-dominated images mix fast enough
    // for test use and the digest stays order-sensitive.
    for &w in mem {
        mix(w as u32 as u64);
    }
    hash
}

/// Which execution engine captures a trace: the reference interpreter or
/// the pre-decoded fast path. The decoded engine is the default
/// everywhere; `--engine interp` selects the reference implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// The reference [`Machine`] interpreter.
    Interp,
    /// The pre-decoded fast path ([`DecodedMachine`]).
    #[default]
    Decoded,
}

impl Engine {
    /// Both engines, reference first.
    pub const ALL: [Engine; 2] = [Engine::Interp, Engine::Decoded];

    /// The canonical CLI name (`interp` / `decoded`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Decoded => "decoded",
        }
    }

    /// Captures a trace with this engine; both engines produce
    /// byte-identical traces and errors.
    ///
    /// # Errors
    ///
    /// Same contract as [`trace_program`].
    pub fn trace(
        self,
        program: &Program,
        initial_memory: &[i32],
        limit: u64,
    ) -> Result<Trace, VmError> {
        match self {
            Engine::Interp => trace_program(program, initial_memory, limit),
            Engine::Decoded => trace_program_decoded(program, initial_memory, limit),
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown `--engine` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEngineError(pub String);

impl fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine `{}` (expected `decoded` or `interp`)",
            self.0
        )
    }
}

impl std::error::Error for ParseEngineError {}

impl FromStr for Engine {
    type Err = ParseEngineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" | "reference" => Ok(Engine::Interp),
            "decoded" | "fast" => Ok(Engine::Decoded),
            other => Err(ParseEngineError(other.to_string())),
        }
    }
}

/// [`trace_program`] through the decoded engine: compiles the program and
/// runs the tight dispatch loop on a fresh machine.
///
/// # Errors
///
/// Identical to [`trace_program`] on every input.
pub fn trace_program_decoded(
    program: &Program,
    initial_memory: &[i32],
    limit: u64,
) -> Result<Trace, VmError> {
    trace_decoded(&DecodedProgram::compile(program), initial_memory, limit)
}

/// Trace capture from an already-lowered program (compile once, run many).
///
/// # Errors
///
/// Identical to [`trace_program`] on the corresponding source program.
pub fn trace_decoded(
    decoded: &DecodedProgram,
    initial_memory: &[i32],
    limit: u64,
) -> Result<Trace, VmError> {
    let mut machine = DecodedMachine::new();
    machine.try_load_memory(initial_memory)?;
    let mut records = Vec::new();
    machine.run_trace(decoded, limit, &mut records)?;
    Ok(Trace::from_parts(records, machine.output().to_vec()))
}

/// Captures a trace with the selected engine — the single entry point the
/// suite loader, store record path, serve miss path, and CLI all share.
///
/// # Errors
///
/// Same contract as [`trace_program`].
pub fn trace_program_with(
    engine: Engine,
    program: &Program,
    initial_memory: &[i32],
    limit: u64,
) -> Result<Trace, VmError> {
    engine.trace(program, initial_memory, limit)
}

impl Machine {
    /// Digest of the full logical machine state; see
    /// [`DecodedMachine::state_digest`].
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        state_digest_parts(
            |i| self.reg(Reg::new(i as u8)),
            self.pc(),
            self.is_halted(),
            self.call_depth(),
            self.executed(),
            self.output(),
            self.mem_slice(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::Assembler;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn countdown(n: i32) -> Program {
        let mut asm = Assembler::new();
        asm.li(r(1), n);
        asm.label("top");
        asm.addi(r(1), r(1), -1);
        asm.bgt_label(r(1), Reg::ZERO, "top");
        asm.out(r(1));
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn decoded_trace_matches_interpreter() {
        let p = countdown(10);
        let a = trace_program(&p, &[], 10_000).unwrap();
        let b = trace_program_decoded(&p, &[], 10_000).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.output(), b.output());
    }

    #[test]
    fn r0_write_goes_to_sink() {
        let mut asm = Assembler::new();
        asm.li(Reg::ZERO, 99);
        asm.out(Reg::ZERO);
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program_decoded(&p, &[], 100).unwrap();
        assert_eq!(t.output(), &[0]);
    }

    #[test]
    fn memory_fault_identical_to_interpreter() {
        let mut asm = Assembler::new();
        asm.li(r(1), -5);
        asm.lw(r(2), r(1), 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(
            trace_program_decoded(&p, &[], 100).unwrap_err(),
            VmError::MemOutOfRange { pc: 1, addr: -5 }
        );
    }

    #[test]
    fn negative_jr_fault_identical_to_interpreter() {
        let mut asm = Assembler::new();
        asm.li(r(1), -1);
        asm.jr(r(1));
        asm.halt();
        let p = asm.assemble().unwrap();
        let a = trace_program(&p, &[], 100).unwrap_err();
        let b = trace_program_decoded(&p, &[], 100).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(b, VmError::PcOutOfRange { pc: (-1i32) as u32 });
    }

    #[test]
    fn forward_jr_past_end_faults_on_next_fetch() {
        let mut asm = Assembler::new();
        asm.li(r(1), 100);
        asm.jr(r(1));
        asm.halt();
        let p = asm.assemble().unwrap();
        let a = trace_program(&p, &[], 100).unwrap_err();
        let b = trace_program_decoded(&p, &[], 100).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(b, VmError::PcOutOfRange { pc: 100 });
    }

    #[test]
    fn step_limit_checked_before_each_step() {
        let p = countdown(100);
        assert_eq!(
            trace_program_decoded(&p, &[], 10).unwrap_err(),
            trace_program(&p, &[], 10).unwrap_err()
        );
        assert_eq!(
            trace_program_decoded(&p, &[], 0).unwrap_err(),
            VmError::StepLimit { limit: 0 }
        );
    }

    #[test]
    fn state_digests_agree_between_engines() {
        let p = countdown(7);
        let mut interp = Machine::with_memory_size(1024);
        while !interp.is_halted() {
            interp.step(&p).unwrap();
        }
        let decoded_p = DecodedProgram::compile(&p);
        let mut fast = DecodedMachine::with_memory_size(1024);
        let mut recs = Vec::new();
        fast.run_trace(&decoded_p, 10_000, &mut recs).unwrap();
        assert_eq!(interp.state_digest(), fast.state_digest());
    }

    #[test]
    fn digest_detects_state_divergence() {
        let p = countdown(7);
        let mut a = Machine::with_memory_size(64);
        let mut b = Machine::with_memory_size(64);
        a.run(&p, 1_000).unwrap();
        b.run(&p, 1_000).unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
        b.set_reg(r(5), 1);
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn from_instrs_rejects_what_program_new_rejects() {
        assert_eq!(
            DecodedProgram::from_instrs(&[]).unwrap_err(),
            DecodeError::Empty
        );
        assert_eq!(
            DecodedProgram::from_instrs(&[Instr::Jump { target: 9 }, Instr::Halt]).unwrap_err(),
            DecodeError::TargetOutOfRange { pc: 0, target: 9 }
        );
        assert_eq!(
            DecodedProgram::from_instrs(&[Instr::Nop]).unwrap_err(),
            DecodeError::NoHalt
        );
    }

    #[test]
    fn jr_table_spans_detected() {
        let instrs = vec![
            Instr::Nop,                // 0
            Instr::Jump { target: 5 }, // 1 ── table of 3
            Instr::Jump { target: 6 }, // 2
            Instr::Jump { target: 7 }, // 3
            Instr::Nop,                // 4
            Instr::Jump { target: 0 }, // 5: lone jump, not a table
            Instr::Nop,                // 6
            Instr::Halt,               // 7
        ];
        let d = DecodedProgram::from_instrs(&instrs).unwrap();
        assert_eq!(d.jr_tables().len(), 1);
        assert_eq!(d.jr_tables()[0].start, 1);
        assert_eq!(d.jr_tables()[0].targets, vec![5, 6, 7]);
        assert_eq!(d.jr_tables()[0].len(), 3);
        assert!(!d.jr_tables()[0].is_empty());
    }

    #[test]
    fn def_and_store_tables_match_instr_queries() {
        let p = countdown(3);
        let d = DecodedProgram::compile(&p);
        for (pc, instr) in p.iter() {
            assert_eq!(d.def_of(pc), instr.def());
            assert_eq!(d.is_store(pc), matches!(instr, Instr::Sw { .. }));
        }
        assert_eq!(d.def_of(10_000), None);
        assert!(!d.is_store(10_000));
        assert_eq!(d.len(), p.len());
        assert!(!d.is_empty());
    }

    #[test]
    fn engine_parses_and_round_trips() {
        assert_eq!("decoded".parse::<Engine>().unwrap(), Engine::Decoded);
        assert_eq!("interp".parse::<Engine>().unwrap(), Engine::Interp);
        assert_eq!("interpreter".parse::<Engine>().unwrap(), Engine::Interp);
        assert!("warp".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Decoded);
        for e in Engine::ALL {
            assert_eq!(e.name().parse::<Engine>().unwrap(), e);
        }
    }

    #[test]
    fn engine_trace_entry_points_agree() {
        let p = countdown(5);
        let a = trace_program_with(Engine::Interp, &p, &[], 1_000).unwrap();
        let b = trace_program_with(Engine::Decoded, &p, &[], 1_000).unwrap();
        assert_eq!(a.records(), b.records());
    }
}
