use std::fmt;

use dee_isa::{Instr, Program, Reg};

use crate::trace::{BranchOutcome, TraceRecord};

/// Default data-memory size in words (4 MiB of 32-bit words).
pub const DEFAULT_MEM_WORDS: usize = 1 << 20;

/// Architectural state of the toy machine: 32 registers, a flat
/// word-addressed data memory, a program counter, and an output stream.
///
/// The machine is a *functional* (architecture-level) interpreter: one
/// instruction per [`step`](Machine::step), no timing. It produces the
/// dynamic [`TraceRecord`] stream consumed by the timing models.
///
/// # Example
///
/// ```
/// use dee_isa::{Assembler, Reg};
/// use dee_vm::{Machine, StepOutcome};
///
/// let mut asm = Assembler::new();
/// asm.li(Reg::new(1), 7);
/// asm.out(Reg::new(1));
/// asm.halt();
/// let p = asm.assemble()?;
///
/// let mut m = Machine::new();
/// while let (StepOutcome::Continue, _) = m.step(&p)? {}
/// assert_eq!(m.output(), &[7]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    regs: [i32; Reg::COUNT],
    mem: Vec<i32>,
    pc: u32,
    halted: bool,
    depth: u32,
    executed: u64,
    output: Vec<i32>,
}

/// Whether a step left the machine running or halted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The machine can execute another instruction.
    Continue,
    /// A `halt` was executed.
    Halted,
}

/// Runtime error raised by the interpreter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// The program counter left the program (bad `jr` target, usually).
    PcOutOfRange {
        /// The offending program counter value.
        pc: u32,
    },
    /// A load or store computed an address outside data memory.
    MemOutOfRange {
        /// Address of the faulting instruction.
        pc: u32,
        /// The faulting effective word address.
        addr: i64,
    },
    /// [`Machine::run`] hit its dynamic instruction limit.
    StepLimit {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// `step` was called on a halted machine.
    AlreadyHalted,
    /// A memory image larger than the machine's memory was loaded.
    ImageTooLarge {
        /// Words in the rejected image.
        image: usize,
        /// Words of machine memory.
        memory: usize,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            VmError::MemOutOfRange { pc, addr } => {
                write!(f, "memory address {addr} out of range at pc {pc}")
            }
            VmError::StepLimit { limit } => write!(f, "dynamic instruction limit {limit} exceeded"),
            VmError::AlreadyHalted => f.write_str("machine is halted"),
            VmError::ImageTooLarge { image, memory } => {
                write!(
                    f,
                    "memory image of {image} words exceeds {memory}-word memory"
                )
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Summary of a completed [`Machine::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Number of dynamic instructions executed.
    pub executed: u64,
    /// The program's output stream.
    pub output: Vec<i32>,
}

/// A complete, explicit copy of the machine's architectural state.
///
/// Everything [`Machine::step`] reads or writes lives here, so restoring
/// a captured state and stepping forward is bit-identical to never having
/// stopped. `dee-snap` serializes this into `DEESNAP1` checkpoints; the
/// fields are public so snapshot encoders can delta-compress the memory
/// image without an extra copy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineState {
    /// The 32 architectural registers (`r0` included, always zero).
    pub regs: [i32; Reg::COUNT],
    /// The full data-memory image.
    pub mem: Vec<i32>,
    /// The program counter.
    pub pc: u32,
    /// Whether `halt` has executed.
    pub halted: bool,
    /// Current call depth.
    pub depth: u32,
    /// Dynamic instructions executed so far.
    pub executed: u64,
    /// The output stream produced so far.
    pub output: Vec<i32>,
}

impl MachineState {
    /// Number of architectural registers in [`MachineState::regs`],
    /// re-exported so serializers need not depend on `dee-isa`.
    pub const REG_COUNT: usize = Reg::COUNT;
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Creates a machine with [`DEFAULT_MEM_WORDS`] words of zeroed memory.
    ///
    /// The stack pointer starts at the top of memory; all other registers
    /// are zero.
    #[must_use]
    pub fn new() -> Self {
        Self::with_memory_size(DEFAULT_MEM_WORDS)
    }

    /// Creates a machine with `words` words of zeroed memory.
    #[must_use]
    pub fn with_memory_size(words: usize) -> Self {
        let mut m = Machine {
            regs: [0; Reg::COUNT],
            mem: vec![0; words],
            pc: 0,
            halted: false,
            depth: 0,
            executed: 0,
            output: Vec::new(),
        };
        m.regs[Reg::SP.index()] = words as i32;
        m
    }

    /// Copies `image` into memory starting at word 0.
    ///
    /// # Panics
    ///
    /// Panics if the image is larger than memory. Untrusted images
    /// (request bodies) should go through
    /// [`try_load_memory`](Self::try_load_memory) instead.
    pub fn load_memory(&mut self, image: &[i32]) {
        self.try_load_memory(image).expect("memory image too large");
    }

    /// Copies `image` into memory starting at word 0, rejecting images
    /// that do not fit.
    ///
    /// # Errors
    ///
    /// [`VmError::ImageTooLarge`] when `image` is larger than memory.
    pub fn try_load_memory(&mut self, image: &[i32]) -> Result<(), VmError> {
        if image.len() > self.mem.len() {
            return Err(VmError::ImageTooLarge {
                image: image.len(),
                memory: self.mem.len(),
            });
        }
        self.mem[..image.len()].copy_from_slice(image);
        Ok(())
    }

    /// Reads a register (reads of `r0` always return 0).
    #[must_use]
    pub fn reg(&self, r: Reg) -> i32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: i32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Reads the memory word at `addr`, or `None` when out of range.
    #[must_use]
    pub fn mem_word(&self, addr: u32) -> Option<i32> {
        self.mem.get(addr as usize).copied()
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether `halt` has executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current call depth (incremented by `jal`, decremented by `jr`).
    #[must_use]
    pub fn call_depth(&self) -> u32 {
        self.depth
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The output stream produced by `out` instructions.
    #[must_use]
    pub fn output(&self) -> &[i32] {
        &self.output
    }

    /// The full data memory, for state digesting.
    pub(crate) fn mem_slice(&self) -> &[i32] {
        &self.mem
    }

    /// Captures the complete architectural state for checkpointing.
    #[must_use]
    pub fn snapshot_state(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            mem: self.mem.clone(),
            pc: self.pc,
            halted: self.halted,
            depth: self.depth,
            executed: self.executed,
            output: self.output.clone(),
        }
    }

    /// Restores state captured by [`snapshot_state`](Self::snapshot_state).
    ///
    /// Stepping after a restore is bit-identical to the uninterrupted run
    /// the state was captured from (same records, output, and faults).
    pub fn restore_state(&mut self, state: &MachineState) {
        self.regs = state.regs;
        self.mem.clear();
        self.mem.extend_from_slice(&state.mem);
        self.pc = state.pc;
        self.halted = state.halted;
        self.depth = state.depth;
        self.executed = state.executed;
        self.output.clear();
        self.output.extend_from_slice(&state.output);
    }

    fn effective_addr(&self, pc: u32, base: Reg, offset: i32) -> Result<u32, VmError> {
        let addr = i64::from(self.reg(base)) + i64::from(offset);
        if addr < 0 || addr as usize >= self.mem.len() {
            Err(VmError::MemOutOfRange { pc, addr })
        } else {
            Ok(addr as u32)
        }
    }

    /// Executes one instruction and returns its dynamic trace record.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] when the machine is already halted, the program
    /// counter is out of range, or a memory access faults.
    pub fn step(&mut self, program: &Program) -> Result<(StepOutcome, TraceRecord), VmError> {
        if self.halted {
            return Err(VmError::AlreadyHalted);
        }
        let pc = self.pc;
        let instr = *program.get(pc).ok_or(VmError::PcOutOfRange { pc })?;

        let mut record = TraceRecord {
            pc,
            srcs: instr.uses(),
            dst: instr.def(),
            mem_read: None,
            mem_write: None,
            branch: None,
            depth: self.depth,
        };

        let mut next_pc = pc + 1;
        match instr {
            Instr::Alu { op, rd, rs, rt } => {
                let v = op.apply(self.reg(rs), self.reg(rt));
                self.set_reg(rd, v);
            }
            Instr::AluImm { op, rd, rs, imm } => {
                let v = op.apply(self.reg(rs), imm);
                self.set_reg(rd, v);
            }
            Instr::Li { rd, imm } => self.set_reg(rd, imm),
            Instr::Lw { rd, base, offset } => {
                let addr = self.effective_addr(pc, base, offset)?;
                record.mem_read = Some(addr);
                self.set_reg(rd, self.mem[addr as usize]);
            }
            Instr::Sw { rs, base, offset } => {
                let addr = self.effective_addr(pc, base, offset)?;
                record.mem_write = Some(addr);
                self.mem[addr as usize] = self.reg(rs);
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let taken = cond.eval(self.reg(rs), self.reg(rt));
                record.branch = Some(BranchOutcome { taken, target });
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Jal { target } => {
                self.set_reg(Reg::RA, (pc + 1) as i32);
                self.depth += 1;
                next_pc = target;
            }
            Instr::Jr { rs } => {
                let t = self.reg(rs);
                if t < 0 {
                    return Err(VmError::PcOutOfRange { pc: t as u32 });
                }
                self.depth = self.depth.saturating_sub(1);
                next_pc = t as u32;
            }
            Instr::Out { rs } => self.output.push(self.reg(rs)),
            Instr::Halt => {
                self.halted = true;
                self.executed += 1;
                return Ok((StepOutcome::Halted, record));
            }
            Instr::Nop => {}
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok((StepOutcome::Continue, record))
    }

    /// Runs the program to `halt`, discarding trace records.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::StepLimit`] if more than `limit` dynamic
    /// instructions execute, or any error from [`step`](Machine::step).
    pub fn run(&mut self, program: &Program, limit: u64) -> Result<RunResult, VmError> {
        while !self.halted {
            if self.executed >= limit {
                return Err(VmError::StepLimit { limit });
            }
            self.step(program)?;
        }
        Ok(RunResult {
            executed: self.executed,
            output: self.output.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::Assembler;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn arithmetic_and_output() {
        let mut asm = Assembler::new();
        asm.li(r(1), 6);
        asm.li(r(2), 7);
        asm.mul(r(3), r(1), r(2));
        asm.out(r(3));
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let result = m.run(&p, 100).unwrap();
        assert_eq!(result.output, vec![42]);
        assert_eq!(result.executed, 5);
        assert!(m.is_halted());
    }

    #[test]
    fn loop_executes_correct_iteration_count() {
        let mut asm = Assembler::new();
        asm.li(r(1), 10);
        asm.li(r(2), 0);
        asm.label("top");
        asm.add(r(2), r(2), r(1));
        asm.addi(r(1), r(1), -1);
        asm.bgt_label(r(1), Reg::ZERO, "top");
        asm.out(r(2));
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let result = m.run(&p, 1000).unwrap();
        assert_eq!(result.output, vec![55]);
    }

    #[test]
    fn memory_round_trip() {
        let mut asm = Assembler::new();
        asm.li(r(1), 100); // base address
        asm.li(r(2), -9);
        asm.sw(r(2), r(1), 3);
        asm.lw(r(3), r(1), 3);
        asm.out(r(3));
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let result = m.run(&p, 100).unwrap();
        assert_eq!(result.output, vec![-9]);
        assert_eq!(m.mem_word(103), Some(-9));
    }

    #[test]
    fn call_and_return_with_stack() {
        let mut asm = Assembler::new();
        asm.li(r(4), 5);
        asm.call_label("double");
        asm.out(r(2));
        asm.halt();
        asm.label("double");
        asm.add(r(2), r(4), r(4));
        asm.ret();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let result = m.run(&p, 100).unwrap();
        assert_eq!(result.output, vec![10]);
        assert_eq!(m.call_depth(), 0);
    }

    #[test]
    fn call_depth_tracked_in_records() {
        let mut asm = Assembler::new();
        asm.call_label("f"); // depth 0
        asm.halt(); // depth 0
        asm.label("f");
        asm.nop(); // depth 1
        asm.ret(); // depth 1
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let mut depths = Vec::new();
        loop {
            let (outcome, rec) = m.step(&p).unwrap();
            depths.push((rec.pc, rec.depth));
            if outcome == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(depths, vec![(0, 0), (2, 1), (3, 1), (1, 0)]);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut asm = Assembler::new();
        asm.li(Reg::ZERO, 99);
        asm.out(Reg::ZERO);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let result = m.run(&p, 100).unwrap();
        assert_eq!(result.output, vec![0]);
    }

    #[test]
    fn memory_fault_reported_with_pc() {
        let mut asm = Assembler::new();
        asm.li(r(1), -5);
        asm.lw(r(2), r(1), 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let err = m.run(&p, 100).unwrap_err();
        assert_eq!(err, VmError::MemOutOfRange { pc: 1, addr: -5 });
    }

    #[test]
    fn step_limit_enforced() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.j_label("spin");
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let err = m.run(&p, 50).unwrap_err();
        assert_eq!(err, VmError::StepLimit { limit: 50 });
    }

    #[test]
    fn step_after_halt_is_error() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let (outcome, _) = m.step(&p).unwrap();
        assert_eq!(outcome, StepOutcome::Halted);
        assert_eq!(m.step(&p).unwrap_err(), VmError::AlreadyHalted);
    }

    #[test]
    fn branch_records_outcome_and_target() {
        let mut asm = Assembler::new();
        asm.li(r(1), 1);
        asm.beq_label(r(1), Reg::ZERO, "skip"); // not taken
        asm.bne_label(r(1), Reg::ZERO, "skip"); // taken
        asm.nop();
        asm.label("skip");
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new();
        let mut branches = Vec::new();
        loop {
            let (outcome, rec) = m.step(&p).unwrap();
            if let Some(b) = rec.branch {
                branches.push((rec.pc, b.taken, b.target));
            }
            if outcome == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(branches, vec![(1, false, 4), (2, true, 4)]);
    }

    #[test]
    fn stack_pointer_starts_at_top() {
        let m = Machine::with_memory_size(1024);
        assert_eq!(m.reg(Reg::SP), 1024);
    }

    #[test]
    fn try_load_memory_rejects_oversized_images() {
        let mut m = Machine::with_memory_size(2);
        assert_eq!(
            m.try_load_memory(&[1, 2, 3]),
            Err(VmError::ImageTooLarge {
                image: 3,
                memory: 2
            })
        );
        assert!(m.try_load_memory(&[1, 2]).is_ok());
        assert_eq!(m.mem_word(0), Some(1));
        assert_eq!(m.mem_word(1), Some(2));
    }

    #[test]
    fn load_memory_image() {
        let mut m = Machine::with_memory_size(16);
        m.load_memory(&[1, 2, 3]);
        assert_eq!(m.mem_word(0), Some(1));
        assert_eq!(m.mem_word(2), Some(3));
        assert_eq!(m.mem_word(3), Some(0));
    }

    #[test]
    #[should_panic(expected = "memory image too large")]
    fn oversized_image_panics() {
        let mut m = Machine::with_memory_size(2);
        m.load_memory(&[1, 2, 3]);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut asm = Assembler::new();
        asm.li(r(1), 6);
        asm.li(r(2), 0);
        asm.label("top");
        asm.sw(r(1), Reg::ZERO, 32);
        asm.lw(r(2), Reg::ZERO, 32);
        asm.out(r(2));
        asm.addi(r(1), r(1), -1);
        asm.bgt_label(r(1), Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();

        // Reference: run straight through, collecting records.
        let mut oracle = Machine::with_memory_size(256);
        let mut oracle_records = Vec::new();
        loop {
            let (outcome, rec) = oracle.step(&p).unwrap();
            oracle_records.push(rec);
            if outcome == StepOutcome::Halted {
                break;
            }
        }

        // Checkpoint mid-run, clobber the machine, restore, resume.
        let mut m = Machine::with_memory_size(256);
        let mut records = Vec::new();
        for _ in 0..7 {
            let (_, rec) = m.step(&p).unwrap();
            records.push(rec);
        }
        let state = m.snapshot_state();
        m.run(&p, 10_000).unwrap(); // run the original to completion
        m.restore_state(&state);
        assert_eq!(m.snapshot_state(), state);
        loop {
            let (outcome, rec) = m.step(&p).unwrap();
            records.push(rec);
            if outcome == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(records, oracle_records);
        assert_eq!(m.output(), oracle.output());
        assert_eq!(m.state_digest(), oracle.state_digest());
    }
}
