//! Compact binary serialization for captured traces.
//!
//! Large evaluations (the paper ran up to 100 M instructions per
//! benchmark) want to capture a trace once and re-simulate it many times.
//! [`Trace::write_to`] / [`Trace::read_from`] store records in a fixed
//! 20-byte little-endian layout plus the output stream:
//!
//! ```text
//! magic "DEETRC1\0" | u64 record count
//! per record: u32 pc | u8 src0 | u8 src1 | u8 dst | u8 flags
//!             | u32 mem addr | u32 branch target | u16 depth
//! u64 output count | i32 output words
//! ```
//!
//! Register fields use `0xFF` for "none"; `flags` bits: 0 = mem read,
//! 1 = mem write, 2 = conditional branch, 3 = branch taken.
//!
//! [`TraceReader`] exposes the same stream incrementally — one record at
//! a time — so consumers like `dee-store` can verify or re-chunk a
//! 100 M-instruction trace without materializing the record vector.
//! [`Trace::read_from`] is built on top of it and additionally rejects
//! trailing garbage: a valid stream ends exactly at the last output word.

use std::io::{self, Read, Write};

use dee_isa::Reg;

use crate::trace::{BranchOutcome, Trace, TraceRecord};

const MAGIC: &[u8; 8] = b"DEETRC1\0";
const NO_REG: u8 = 0xFF;

/// Version of the `DEETRC1` record layout. Artifact stores bake this into
/// their content-addressed keys so a future layout change can never be
/// misread as the old one.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Serialized size of one [`TraceRecord`].
pub const RECORD_BYTES: usize = 20;

/// Cap on the *up-front* `Vec` reservation while deserializing. Hostile
/// headers can claim 2^64 records; real ones prove their claim by
/// actually delivering bytes, so we pre-reserve at most this many
/// entries and let the vector grow normally past it.
const MAX_PREALLOC_ENTRIES: usize = 1 << 16;

const FLAG_MEM_READ: u8 = 1 << 0;
const FLAG_MEM_WRITE: u8 = 1 << 1;
const FLAG_BRANCH: u8 = 1 << 2;
const FLAG_TAKEN: u8 = 1 << 3;
/// Bits 4..8 are reserved and must be zero on disk.
const FLAG_KNOWN: u8 = FLAG_MEM_READ | FLAG_MEM_WRITE | FLAG_BRANCH | FLAG_TAKEN;

fn reg_byte(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.index() as u8)
}

fn byte_reg(byte: u8, what: &str) -> io::Result<Option<Reg>> {
    if byte == NO_REG {
        return Ok(None);
    }
    Reg::try_new(byte).map(Some).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad {what} register {byte}"),
        )
    })
}

/// Decodes one 20-byte record. Shared by the eager and streaming readers.
fn decode_record(buffer: &[u8; RECORD_BYTES]) -> io::Result<TraceRecord> {
    let flags = buffer[7];
    if flags & !FLAG_KNOWN != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad record flags {flags:#04x}"),
        ));
    }
    let mem = u32::from_le_bytes(buffer[8..12].try_into().expect("4 bytes"));
    let branch = if flags & FLAG_BRANCH != 0 {
        Some(BranchOutcome {
            taken: flags & FLAG_TAKEN != 0,
            target: u32::from_le_bytes(buffer[12..16].try_into().expect("4 bytes")),
        })
    } else {
        None
    };
    Ok(TraceRecord {
        pc: u32::from_le_bytes(buffer[0..4].try_into().expect("4 bytes")),
        srcs: [byte_reg(buffer[4], "src0")?, byte_reg(buffer[5], "src1")?],
        dst: byte_reg(buffer[6], "dst")?,
        mem_read: (flags & FLAG_MEM_READ != 0).then_some(mem),
        mem_write: (flags & FLAG_MEM_WRITE != 0).then_some(mem),
        branch,
        depth: u32::from(u16::from_le_bytes(
            buffer[16..18].try_into().expect("2 bytes"),
        )),
    })
}

/// An incremental reader for the `DEETRC1` stream: records first, then
/// the output words, then (optionally) an end-of-stream check.
///
/// ```no_run
/// # use dee_vm::TraceReader;
/// let file = std::fs::File::open("trace.bin").unwrap();
/// let mut reader = TraceReader::new(std::io::BufReader::new(file)).unwrap();
/// while let Some(record) = reader.next_record().unwrap() {
///     let _ = record.pc; // stream without holding every record
/// }
/// let output = reader.read_output().unwrap();
/// reader.expect_end().unwrap();
/// # let _ = output;
/// ```
pub struct TraceReader<R> {
    reader: R,
    total_records: u64,
    remaining_records: u64,
    output_read: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the magic and record count.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, or any transport error.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut len8 = [0u8; 8];
        reader.read_exact(&mut len8)?;
        let total_records = u64::from_le_bytes(len8);
        Ok(TraceReader {
            reader,
            total_records,
            remaining_records: total_records,
            output_read: false,
        })
    }

    /// The record count the header claims (trust it only as far as the
    /// stream delivers).
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.total_records
    }

    /// Records not yet consumed.
    #[must_use]
    pub fn records_remaining(&self) -> u64 {
        self.remaining_records
    }

    /// Yields the next record, or `None` once all records are consumed.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a malformed record, `UnexpectedEof` on
    /// truncation, or any transport error.
    pub fn next_record(&mut self) -> io::Result<Option<TraceRecord>> {
        if self.remaining_records == 0 {
            return Ok(None);
        }
        let mut buffer = [0u8; RECORD_BYTES];
        self.reader.read_exact(&mut buffer)?;
        self.remaining_records -= 1;
        decode_record(&buffer).map(Some)
    }

    /// Reads the output stream. Any records not yet consumed are read
    /// through (and validated) first, so this may be called at any point.
    ///
    /// # Errors
    ///
    /// Propagates record/transport errors, or `InvalidData` if called
    /// twice.
    pub fn read_output(&mut self) -> io::Result<Vec<i32>> {
        if self.output_read {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "output stream already consumed",
            ));
        }
        while self.next_record()?.is_some() {}
        self.output_read = true;
        let mut len8 = [0u8; 8];
        self.reader.read_exact(&mut len8)?;
        let out_count = u64::from_le_bytes(len8);
        let prealloc = usize::try_from(out_count)
            .unwrap_or(usize::MAX)
            .min(MAX_PREALLOC_ENTRIES);
        let mut output = Vec::with_capacity(prealloc);
        let mut word = [0u8; 4];
        for _ in 0..out_count {
            self.reader.read_exact(&mut word)?;
            output.push(i32::from_le_bytes(word));
        }
        Ok(output)
    }

    /// Asserts the stream ends here — exactly one trace, nothing after.
    ///
    /// # Errors
    ///
    /// `InvalidData` when trailing bytes remain (or the output stream was
    /// never consumed), or any transport error.
    pub fn expect_end(mut self) -> io::Result<()> {
        if !self.output_read {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "output stream not consumed before end check",
            ));
        }
        let mut probe = [0u8; 1];
        match self.reader.read(&mut probe) {
            Ok(0) => Ok(()),
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing garbage after trace output stream",
            )),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => self.expect_end_slow(),
            Err(e) => Err(e),
        }
    }

    /// Retry loop for the (rare) `Interrupted` case of `expect_end`.
    fn expect_end_slow(mut self) -> io::Result<()> {
        let mut probe = [0u8; 1];
        loop {
            match self.reader.read(&mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "trailing garbage after trace output stream",
                    ))
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether [`read_output`](Self::read_output) has been called.
    #[must_use]
    pub fn output_consumed(&self) -> bool {
        self.output_read
    }

    /// Borrows the underlying transport (for callers that run their own
    /// framing checks once the logical stream is consumed).
    pub fn transport_mut(&mut self) -> &mut R {
        &mut self.reader
    }

    /// Unwraps the underlying reader (for callers that frame the trace
    /// themselves and expect more data after it).
    pub fn into_inner(self) -> R {
        self.reader
    }
}

impl Trace {
    /// Serializes the trace.
    ///
    /// # Errors
    ///
    /// Propagates writer errors; records with call depth above `u16::MAX`
    /// are rejected as unrepresentable.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.records().len() as u64).to_le_bytes())?;
        let mut buffer = [0u8; RECORD_BYTES];
        for record in self.records() {
            let depth = u16::try_from(record.depth).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "call depth exceeds u16")
            })?;
            let mut flags = 0u8;
            let mut mem = 0u32;
            if let Some(addr) = record.mem_read {
                flags |= FLAG_MEM_READ;
                mem = addr;
            }
            if let Some(addr) = record.mem_write {
                flags |= FLAG_MEM_WRITE;
                mem = addr;
            }
            let mut target = 0u32;
            if let Some(branch) = record.branch {
                flags |= FLAG_BRANCH;
                if branch.taken {
                    flags |= FLAG_TAKEN;
                }
                target = branch.target;
            }
            buffer[0..4].copy_from_slice(&record.pc.to_le_bytes());
            buffer[4] = reg_byte(record.srcs[0]);
            buffer[5] = reg_byte(record.srcs[1]);
            buffer[6] = reg_byte(record.dst);
            buffer[7] = flags;
            buffer[8..12].copy_from_slice(&mem.to_le_bytes());
            buffer[12..16].copy_from_slice(&target.to_le_bytes());
            buffer[16..18].copy_from_slice(&depth.to_le_bytes());
            buffer[18] = 0;
            buffer[19] = 0;
            writer.write_all(&buffer)?;
        }
        writer.write_all(&(self.output().len() as u64).to_le_bytes())?;
        for &word in self.output() {
            writer.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`write_to`](Trace::write_to).
    ///
    /// The stream must contain exactly one trace: trailing bytes after
    /// the output stream are rejected, and the up-front `record count` /
    /// `output count` claims are never trusted for allocation (a hostile
    /// header cannot force a huge reservation — the stream has to deliver
    /// the bytes).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, malformed record, trailing
    /// garbage, or truncation.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Trace> {
        let mut stream = TraceReader::new(reader)?;
        let prealloc = usize::try_from(stream.record_count())
            .unwrap_or(usize::MAX)
            .min(MAX_PREALLOC_ENTRIES);
        let mut records = Vec::with_capacity(prealloc);
        while let Some(record) = stream.next_record()? {
            records.push(record);
        }
        let output = stream.read_output()?;
        stream.expect_end()?;
        Ok(Trace::from_parts(records, output))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_program;
    use dee_isa::Assembler;

    fn branchy_trace() -> Trace {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 5);
        asm.li(r2, 0);
        asm.label("top");
        asm.sw(r1, Reg::ZERO, 64);
        asm.lw(r2, Reg::ZERO, 64);
        asm.call_label("bump");
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r2);
        asm.halt();
        asm.label("bump");
        asm.addi(r1, r1, -1);
        asm.ret();
        let p = asm.assemble().unwrap();
        trace_program(&p, &[], 10_000).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let restored = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(restored.records(), trace.records());
        assert_eq!(restored.output(), trace.output());
        assert_eq!(restored.output_checksum(), trace.output_checksum());
    }

    #[test]
    fn record_size_is_fixed() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        assert_eq!(
            bytes.len(),
            8 + 8 + RECORD_BYTES * trace.len() + 8 + 4 * trace.output().len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&b"NOTATRACE........."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_rejected() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(Trace::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes.push(0);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing"), "{err}");
        // Even a whole second trace counts as garbage: the format is one
        // trace per stream.
        let mut doubled = Vec::new();
        trace.write_to(&mut doubled).unwrap();
        trace.write_to(&mut doubled).unwrap();
        assert!(Trace::read_from(doubled.as_slice()).is_err());
    }

    #[test]
    fn hostile_record_count_does_not_preallocate() {
        // Claims u64::MAX records but delivers none: must fail with a
        // clean truncation error, not an OOM from Vec::with_capacity.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hostile_output_count_does_not_preallocate() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn reserved_flag_bits_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        let mut record = [0u8; RECORD_BYTES];
        record[4] = NO_REG;
        record[5] = NO_REG;
        record[6] = NO_REG;
        record[7] = 0x80; // reserved bit set
        bytes.extend_from_slice(&record);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("flags"), "{err}");
    }

    #[test]
    fn bad_register_byte_rejected() {
        // Hand-build a stream with one record whose src0 byte is an
        // out-of-range (but non-sentinel) register.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        let mut record = [0u8; RECORD_BYTES];
        record[4] = 0x40; // register 64: invalid
        record[5] = NO_REG;
        record[6] = NO_REG;
        bytes.extend_from_slice(&record);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("src0"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::from_parts(vec![], vec![7, 8]);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let restored = Trace::read_from(bytes.as_slice()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.output(), &[7, 8]);
    }

    #[test]
    fn streaming_reader_yields_identical_records() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let mut stream = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(stream.record_count(), trace.len() as u64);
        let mut streamed = Vec::new();
        while let Some(record) = stream.next_record().unwrap() {
            streamed.push(record);
        }
        assert_eq!(streamed.as_slice(), trace.records());
        assert_eq!(stream.read_output().unwrap(), trace.output());
        stream.expect_end().unwrap();
    }

    #[test]
    fn streaming_reader_can_skip_to_output() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let mut stream = TraceReader::new(bytes.as_slice()).unwrap();
        // Consume only one record, then jump to the output: the reader
        // validates the skipped records on the way.
        let first = stream.next_record().unwrap().unwrap();
        assert_eq!(first, trace.records()[0]);
        assert_eq!(stream.read_output().unwrap(), trace.output());
    }

    #[test]
    fn streaming_reader_guards_misuse() {
        let trace = Trace::from_parts(vec![], vec![1]);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let mut stream = TraceReader::new(bytes.as_slice()).unwrap();
        let _ = stream.read_output().unwrap();
        assert!(stream.read_output().is_err(), "double output read");
        let mut bytes2 = Vec::new();
        trace.write_to(&mut bytes2).unwrap();
        let stream = TraceReader::new(bytes2.as_slice()).unwrap();
        assert!(stream.expect_end().is_err(), "end before output");
    }
}
