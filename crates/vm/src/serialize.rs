//! Compact binary serialization for captured traces.
//!
//! Large evaluations (the paper ran up to 100 M instructions per
//! benchmark) want to capture a trace once and re-simulate it many times.
//! [`Trace::write_to`] / [`Trace::read_from`] store records in a fixed
//! 20-byte little-endian layout plus the output stream:
//!
//! ```text
//! magic "DEETRC1\0" | u64 record count
//! per record: u32 pc | u8 src0 | u8 src1 | u8 dst | u8 flags
//!             | u32 mem addr | u32 branch target | u16 depth
//! u64 output count | i32 output words
//! ```
//!
//! Register fields use `0xFF` for "none"; `flags` bits: 0 = mem read,
//! 1 = mem write, 2 = conditional branch, 3 = branch taken.

use std::io::{self, Read, Write};

use dee_isa::Reg;

use crate::trace::{BranchOutcome, Trace, TraceRecord};

const MAGIC: &[u8; 8] = b"DEETRC1\0";
const NO_REG: u8 = 0xFF;

const FLAG_MEM_READ: u8 = 1 << 0;
const FLAG_MEM_WRITE: u8 = 1 << 1;
const FLAG_BRANCH: u8 = 1 << 2;
const FLAG_TAKEN: u8 = 1 << 3;

fn reg_byte(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.index() as u8)
}

fn byte_reg(byte: u8, what: &str) -> io::Result<Option<Reg>> {
    if byte == NO_REG {
        return Ok(None);
    }
    Reg::try_new(byte).map(Some).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad {what} register {byte}"),
        )
    })
}

impl Trace {
    /// Serializes the trace.
    ///
    /// # Errors
    ///
    /// Propagates writer errors; records with call depth above `u16::MAX`
    /// are rejected as unrepresentable.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.records().len() as u64).to_le_bytes())?;
        let mut buffer = [0u8; 20];
        for record in self.records() {
            let depth = u16::try_from(record.depth).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "call depth exceeds u16")
            })?;
            let mut flags = 0u8;
            let mut mem = 0u32;
            if let Some(addr) = record.mem_read {
                flags |= FLAG_MEM_READ;
                mem = addr;
            }
            if let Some(addr) = record.mem_write {
                flags |= FLAG_MEM_WRITE;
                mem = addr;
            }
            let mut target = 0u32;
            if let Some(branch) = record.branch {
                flags |= FLAG_BRANCH;
                if branch.taken {
                    flags |= FLAG_TAKEN;
                }
                target = branch.target;
            }
            buffer[0..4].copy_from_slice(&record.pc.to_le_bytes());
            buffer[4] = reg_byte(record.srcs[0]);
            buffer[5] = reg_byte(record.srcs[1]);
            buffer[6] = reg_byte(record.dst);
            buffer[7] = flags;
            buffer[8..12].copy_from_slice(&mem.to_le_bytes());
            buffer[12..16].copy_from_slice(&target.to_le_bytes());
            buffer[16..18].copy_from_slice(&depth.to_le_bytes());
            buffer[18] = 0;
            buffer[19] = 0;
            writer.write_all(&buffer)?;
        }
        writer.write_all(&(self.output().len() as u64).to_le_bytes())?;
        for &word in self.output() {
            writer.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`write_to`](Trace::write_to).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, malformed record, or
    /// truncation.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut len8 = [0u8; 8];
        reader.read_exact(&mut len8)?;
        let count = u64::from_le_bytes(len8);
        let mut records = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
        let mut buffer = [0u8; 20];
        for _ in 0..count {
            reader.read_exact(&mut buffer)?;
            let flags = buffer[7];
            let mem = u32::from_le_bytes(buffer[8..12].try_into().expect("4 bytes"));
            let branch = if flags & FLAG_BRANCH != 0 {
                Some(BranchOutcome {
                    taken: flags & FLAG_TAKEN != 0,
                    target: u32::from_le_bytes(buffer[12..16].try_into().expect("4 bytes")),
                })
            } else {
                None
            };
            records.push(TraceRecord {
                pc: u32::from_le_bytes(buffer[0..4].try_into().expect("4 bytes")),
                srcs: [byte_reg(buffer[4], "src0")?, byte_reg(buffer[5], "src1")?],
                dst: byte_reg(buffer[6], "dst")?,
                mem_read: (flags & FLAG_MEM_READ != 0).then_some(mem),
                mem_write: (flags & FLAG_MEM_WRITE != 0).then_some(mem),
                branch,
                depth: u32::from(u16::from_le_bytes(
                    buffer[16..18].try_into().expect("2 bytes"),
                )),
            });
        }
        reader.read_exact(&mut len8)?;
        let out_count = u64::from_le_bytes(len8);
        let mut output = Vec::with_capacity(usize::try_from(out_count).unwrap_or(0));
        let mut word = [0u8; 4];
        for _ in 0..out_count {
            reader.read_exact(&mut word)?;
            output.push(i32::from_le_bytes(word));
        }
        Ok(Trace::from_parts(records, output))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_program;
    use dee_isa::Assembler;

    fn branchy_trace() -> Trace {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 5);
        asm.li(r2, 0);
        asm.label("top");
        asm.sw(r1, Reg::ZERO, 64);
        asm.lw(r2, Reg::ZERO, 64);
        asm.call_label("bump");
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r2);
        asm.halt();
        asm.label("bump");
        asm.addi(r1, r1, -1);
        asm.ret();
        let p = asm.assemble().unwrap();
        trace_program(&p, &[], 10_000).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let restored = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(restored.records(), trace.records());
        assert_eq!(restored.output(), trace.output());
        assert_eq!(restored.output_checksum(), trace.output_checksum());
    }

    #[test]
    fn record_size_is_fixed() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        assert_eq!(
            bytes.len(),
            8 + 8 + 20 * trace.len() + 8 + 4 * trace.output().len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&b"NOTATRACE........."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_rejected() {
        let trace = branchy_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(Trace::read_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn bad_register_byte_rejected() {
        // Hand-build a stream with one record whose src0 byte is an
        // out-of-range (but non-sentinel) register.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        let mut record = [0u8; 20];
        record[4] = 0x40; // register 64: invalid
        record[5] = NO_REG;
        record[6] = NO_REG;
        bytes.extend_from_slice(&record);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("src0"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::from_parts(vec![], vec![7, 8]);
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let restored = Trace::read_from(bytes.as_slice()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.output(), &[7, 8]);
    }
}
