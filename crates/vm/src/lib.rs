//! Functional interpreter and dynamic trace capture for the
//! [`dee-isa`](dee_isa) toy ISA.
//!
//! The DEE paper's evaluation is *trace driven*: every execution model is a
//! post-processing of the program's dynamic instruction stream. This crate
//! provides:
//!
//! * [`Machine`] — an architectural-level interpreter (registers, flat
//!   word-addressed memory, output stream) with single-step execution;
//! * [`TraceRecord`] — one dynamic instruction: static address, registers
//!   read/written, memory words read/written, branch outcome, call depth;
//! * [`Trace`] — a captured run plus derived statistics (branch counts,
//!   taken rate, branch-path lengths), the input to the
//!   `dee-ilpsim` models and the `dee-predict` accuracy harness.
//!
//! All instructions have unit latency and there are no exceptions, matching
//! the paper's machine assumptions (§5.1).
//!
//! # Example
//!
//! ```
//! use dee_isa::{Assembler, Reg};
//! use dee_vm::trace_program;
//!
//! let mut asm = Assembler::new();
//! let r1 = Reg::new(1);
//! asm.li(r1, 3);
//! asm.label("top");
//! asm.addi(r1, r1, -1);
//! asm.bgt_label(r1, Reg::ZERO, "top");
//! asm.out(r1);
//! asm.halt();
//! let program = asm.assemble()?;
//!
//! let trace = trace_program(&program, &[], 1_000)?;
//! assert_eq!(trace.output(), &[0]);
//! assert_eq!(trace.num_cond_branches(), 3); // three loop iterations
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod decoded;
mod machine;
mod serialize;
mod trace;

pub use chunk::{CaptureChunks, TraceChunkSource, TraceChunks, DEFAULT_CHUNK_RECORDS};
pub use decoded::{
    trace_decoded, trace_program_decoded, trace_program_with, DecodeError, DecodedMachine,
    DecodedProgram, Engine, JrTable, ParseEngineError,
};
pub use machine::{Machine, MachineState, RunResult, StepOutcome, VmError, DEFAULT_MEM_WORDS};
pub use serialize::{TraceReader, RECORD_BYTES, TRACE_FORMAT_VERSION};
pub use trace::{output_checksum, trace_program, BranchOutcome, Trace, TraceRecord};
