use dee_isa::{Program, Reg};

use crate::machine::{Machine, StepOutcome, VmError};

/// The outcome of a dynamic conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchOutcome {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The static taken-target.
    pub target: u32,
}

/// One dynamic instruction in a captured trace.
///
/// Records everything the timing models need: the static address (for
/// predictors and reconvergence analysis), register sources and sink (for
/// minimal data dependences via renaming), effective memory addresses (for
/// memory flow dependences), the branch outcome, and the call depth (for
/// depth-aware dynamic reconvergence).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Static instruction address.
    pub pc: u32,
    /// Registers read (reads of `r0` omitted).
    pub srcs: [Option<Reg>; 2],
    /// Register written (writes to `r0` omitted).
    pub dst: Option<Reg>,
    /// Word address read, for loads.
    pub mem_read: Option<u32>,
    /// Word address written, for stores.
    pub mem_write: Option<u32>,
    /// Branch outcome, for conditional branches.
    pub branch: Option<BranchOutcome>,
    /// Call depth at execution (0 = top level).
    pub depth: u32,
}

impl TraceRecord {
    /// Whether this record is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        self.branch.is_some()
    }
}

/// A captured dynamic execution: the record stream plus the program output.
///
/// Use [`trace_program`] to produce one. The paper's notion of a *branch
/// path* — "the dynamic code between branches, including the exit branch" —
/// is exposed through [`path_bounds`](Trace::path_bounds) and the derived
/// statistics.
#[derive(Clone, Debug)]
pub struct Trace {
    records: Vec<TraceRecord>,
    output: Vec<i32>,
}

impl Trace {
    /// Wraps a raw record stream and output (mostly for tests; prefer
    /// [`trace_program`]).
    #[must_use]
    pub fn from_parts(records: Vec<TraceRecord>, output: Vec<i32>) -> Self {
        Trace { records, output }
    }

    /// The dynamic instruction records, in execution order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The program's output stream.
    #[must_use]
    pub fn output(&self) -> &[i32] {
        &self.output
    }

    /// Number of dynamic conditional branches.
    #[must_use]
    pub fn num_cond_branches(&self) -> usize {
        self.records.iter().filter(|r| r.is_cond_branch()).count()
    }

    /// Iterates `(pc, outcome)` for every dynamic conditional branch, in
    /// execution order.
    ///
    /// This is the static/dynamic cross-check hook: `dee-analyze`'s branch
    /// census consumes these pairs to verify that every dynamic branch is a
    /// static census member with a matching taken-target.
    pub fn branch_outcomes(&self) -> impl Iterator<Item = (u32, BranchOutcome)> + '_ {
        self.records
            .iter()
            .filter_map(|r| r.branch.map(|b| (r.pc, b)))
    }

    /// Fraction of dynamic conditional branches that were taken, or `None`
    /// when the trace has no branches.
    #[must_use]
    pub fn taken_rate(&self) -> Option<f64> {
        let branches: Vec<_> = self.records.iter().filter_map(|r| r.branch).collect();
        if branches.is_empty() {
            return None;
        }
        let taken = branches.iter().filter(|b| b.taken).count();
        Some(taken as f64 / branches.len() as f64)
    }

    /// Start indices (into [`records`](Trace::records)) of each branch path.
    ///
    /// A branch path ends at each conditional branch (inclusive); a final
    /// partial path covers any trailing non-branch instructions. The result
    /// always starts with 0 for non-empty traces.
    #[must_use]
    pub fn path_bounds(&self) -> Vec<u32> {
        let mut bounds = Vec::new();
        if self.records.is_empty() {
            return bounds;
        }
        bounds.push(0);
        for (i, r) in self.records.iter().enumerate() {
            if r.is_cond_branch() && i + 1 < self.records.len() {
                bounds.push((i + 1) as u32);
            }
        }
        bounds
    }

    /// Mean branch-path length in instructions (the paper reports ~5 for
    /// SPECint92-like code).
    #[must_use]
    pub fn mean_path_len(&self) -> f64 {
        let bounds = self.path_bounds();
        if bounds.is_empty() {
            return 0.0;
        }
        self.records.len() as f64 / bounds.len() as f64
    }

    /// A stable checksum of the output stream, for validating workloads
    /// across execution engines.
    #[must_use]
    pub fn output_checksum(&self) -> u64 {
        output_checksum(&self.output)
    }
}

/// FNV-1a over the output words; used to validate that different execution
/// engines (functional VM, Levo model) computed identical results.
#[must_use]
pub fn output_checksum(output: &[i32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &word in output {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Runs `program` on a fresh [`Machine`] with `initial_memory` loaded at
/// word 0, capturing the full dynamic trace.
///
/// # Errors
///
/// Returns [`VmError::StepLimit`] if the program does not halt within
/// `limit` dynamic instructions, [`VmError::ImageTooLarge`] when the
/// initial memory does not fit the machine, or any interpreter fault.
pub fn trace_program(
    program: &Program,
    initial_memory: &[i32],
    limit: u64,
) -> Result<Trace, VmError> {
    let mut machine = Machine::new();
    machine.try_load_memory(initial_memory)?;
    let mut records = Vec::new();
    loop {
        if machine.executed() >= limit {
            return Err(VmError::StepLimit { limit });
        }
        let (outcome, record) = machine.step(program)?;
        records.push(record);
        if outcome == StepOutcome::Halted {
            break;
        }
    }
    Ok(Trace {
        records,
        output: machine.output().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::Assembler;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn countdown_trace(n: i32) -> Trace {
        let mut asm = Assembler::new();
        asm.li(r(1), n);
        asm.label("top");
        asm.addi(r(1), r(1), -1);
        asm.bgt_label(r(1), Reg::ZERO, "top");
        asm.out(r(1));
        asm.halt();
        let p = asm.assemble().unwrap();
        trace_program(&p, &[], 10_000).unwrap()
    }

    #[test]
    fn branch_outcomes_yields_every_dynamic_branch() {
        let t = countdown_trace(3);
        let outcomes: Vec<_> = t.branch_outcomes().collect();
        assert_eq!(outcomes.len(), t.num_cond_branches());
        // The countdown branch sits at pc 2 and is taken twice, then falls
        // through.
        assert!(outcomes.iter().all(|&(pc, b)| pc == 2 && b.target == 1));
        assert_eq!(outcomes.iter().filter(|&&(_, b)| b.taken).count(), 2);
    }

    #[test]
    fn oversized_initial_memory_is_a_typed_error() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let image = vec![0; crate::DEFAULT_MEM_WORDS + 1];
        assert!(matches!(
            trace_program(&p, &image, 10),
            Err(VmError::ImageTooLarge { .. })
        ));
    }

    #[test]
    fn trace_captures_every_dynamic_instruction() {
        let t = countdown_trace(4);
        // li + 4*(addi+branch) + out + halt = 11
        assert_eq!(t.len(), 11);
        assert_eq!(t.num_cond_branches(), 4);
        assert_eq!(t.output(), &[0]);
    }

    #[test]
    fn taken_rate_counts_loop_back_edges() {
        let t = countdown_trace(4);
        // 3 taken (continue), 1 not taken (exit).
        assert_eq!(t.taken_rate(), Some(0.75));
    }

    #[test]
    fn taken_rate_none_without_branches() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 10).unwrap();
        assert_eq!(t.taken_rate(), None);
    }

    #[test]
    fn path_bounds_split_at_branches() {
        let t = countdown_trace(2);
        // records: li, addi, bgt(T), addi, bgt(N), out, halt
        assert_eq!(t.path_bounds(), vec![0, 3, 5]);
        assert!((t.mean_path_len() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_bounds_empty_trace() {
        let t = Trace::from_parts(vec![], vec![]);
        assert!(t.path_bounds().is_empty());
        assert_eq!(t.mean_path_len(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn initial_memory_visible_to_program() {
        let mut asm = Assembler::new();
        asm.lw(r(1), Reg::ZERO, 2);
        asm.out(r(1));
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[10, 20, 30], 10).unwrap();
        assert_eq!(t.output(), &[30]);
        assert_eq!(t.records()[0].mem_read, Some(2));
    }

    #[test]
    fn checksum_stable_and_discriminating() {
        let a = output_checksum(&[1, 2, 3]);
        let b = output_checksum(&[1, 2, 3]);
        let c = output_checksum(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(output_checksum(&[]), output_checksum(&[0]));
    }

    #[test]
    fn step_limit_propagates() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.j_label("spin");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(
            trace_program(&p, &[], 10).unwrap_err(),
            VmError::StepLimit { limit: 10 }
        );
    }
}
