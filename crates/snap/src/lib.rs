//! `dee-snap` — serializable VM snapshots (`DEESNAP1`) for warm-start
//! replay, range simulation, and time travel.
//!
//! A snapshot captures the *complete* simulation state at a record index
//! `k` of a published trace artifact: the machine's architectural state
//! (registers, pc, call depth, output so far, and the data-memory image
//! delta-compressed against the program's initial image), plus the
//! serialized state of every branch predictor that has consumed the
//! branch outcomes of records `[0, k)`. The convention threaded through
//! every producer and consumer:
//!
//! > **State at record `k`** means the machine is about to execute the
//! > instruction of record `k`, and each predictor has performed its
//! > `predict` + `resolve` pair for every conditional branch in records
//! > `[0, k)` — and nothing else.
//!
//! With that convention, restoring a snapshot at `k` and replaying
//! records `[k, n)` is byte-identical to replaying `[0, n)` from
//! scratch: same machine trajectory, same predictions, same
//! mispredict flags, same output.
//!
//! # On-disk format (`DEESNAP1`)
//!
//! Little-endian throughout:
//!
//! ```text
//! "DEESNAP1"               8-byte magic
//! u32  snap version        (1)
//! u32  trace format version
//! u64  parent digest       ArtifactKey digest of the parent trace
//! u64  record index        k
//! u32  reg count           then reg count × i32 registers
//! u32  pc   u8 halted   u32 depth   u64 executed
//! u32  output len          then output len × i32 words
//! u32  mem words
//! u32  dirty count         words that differ from the initial image
//! u32  encoded len         then the LZ stream of the sparse delta:
//!                          dirty count × (u32 index, i32 word ⊕ base),
//!                          indexes strictly increasing
//! u32  predictor count     then per predictor:
//!      u8 name len, name bytes, u32 blob len, blob bytes
//! u32  prng stream count   then the same layout per named stream
//! u64  checksum64 over every preceding byte
//! ```
//!
//! The magic-plus-trailing-checksum framing is exactly what
//! [`dee_store::verify_snapshot_bytes`] checks, so the store can verify,
//! quarantine, and replicate snapshots without understanding this
//! payload. Snapshots are deterministic — no timestamps, no absolute
//! paths — so two nodes that cut a snapshot at the same record of the
//! same artifact publish byte-identical files, which is what lets them
//! flow through cluster anti-entropy like any other artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dee_store::{
    checksum64, compress, decompress, verify_snapshot_bytes, ArtifactKey, Store, SNAPSHOT_EXT,
    SNAPSHOT_MAGIC,
};
use dee_vm::MachineState;

/// Version of the `DEESNAP1` payload layout.
pub const SNAP_VERSION: u32 = 1;

/// Upper bound on any declared count/length field, as a corruption
/// backstop: no legitimate snapshot section exceeds this many entries
/// or bytes (memory is ≤ 4 MiB of words, predictor tables are smaller).
const MAX_SECTION: usize = 1 << 28;

/// A decoded snapshot: complete simulation state at one record index of
/// a parent trace artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Trace-format version of the parent artifact.
    pub trace_format_version: u32,
    /// The parent trace's [`ArtifactKey`] digest — a snapshot can never
    /// warm-start a different program/input than it was cut from.
    pub parent_digest: u64,
    /// The record index `k` this state corresponds to.
    pub record_index: u64,
    /// Machine architectural state (about to execute record `k`).
    pub machine: MachineState,
    /// Serialized predictor states, keyed by predictor name, each having
    /// consumed exactly the branches of records `[0, k)`.
    pub predictors: Vec<(String, Vec<u8>)>,
    /// Named PRNG stream states (empty for deterministic workloads; the
    /// section exists so stochastic drivers can checkpoint their streams
    /// alongside the machine).
    pub prng_streams: Vec<(String, Vec<u8>)>,
}

/// Header-level facts about a snapshot, readable without the parent's
/// initial memory image (used by `dee snap ls`/`info`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Trace-format version of the parent artifact.
    pub trace_format_version: u32,
    /// The parent trace's key digest.
    pub parent_digest: u64,
    /// The record index the snapshot was cut at.
    pub record_index: u64,
    /// The machine's data-memory size in words.
    pub mem_words: u32,
    /// Dynamic instructions executed at the cut.
    pub executed: u64,
    /// Output words produced at the cut.
    pub output_words: u32,
    /// Whether the machine had already halted.
    pub halted: bool,
    /// Predictor names carried by the snapshot.
    pub predictors: Vec<String>,
}

/// The filename a snapshot of `key` at `record_index` publishes under:
/// the parent artifact's stem plus `-r<index>.dsnp`.
#[must_use]
pub fn snapshot_filename(key: &ArtifactKey, record_index: u64) -> String {
    let base = key.filename();
    let stem = base
        .strip_suffix(&format!(".{}", dee_store::ARTIFACT_EXT))
        .unwrap_or(&base);
    format!("{stem}-r{record_index}.{SNAPSHOT_EXT}")
}

/// Parses the record index out of a snapshot filename belonging to
/// `key`; `None` when the name is not one of `key`'s snapshots.
#[must_use]
pub fn parse_record_index(name: &str, key: &ArtifactKey) -> Option<u64> {
    let base = key.filename();
    let stem = base
        .strip_suffix(&format!(".{}", dee_store::ARTIFACT_EXT))
        .unwrap_or(&base);
    let rest = name.strip_prefix(&format!("{stem}-r"))?;
    let digits = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    digits.parse().ok()
}

/// Finds the published snapshot of `key` with the largest record index
/// `≤ at` and loads it. Corrupt candidates are quarantined by the store
/// and the next-nearest is tried, so one flipped byte degrades the
/// warm start instead of failing it. Returns the winning record index
/// and raw bytes; `None` when no intact snapshot qualifies.
#[must_use]
pub fn nearest_snapshot(store: &Store, key: &ArtifactKey, at: u64) -> Option<(u64, Vec<u8>)> {
    let mut candidates: Vec<(u64, String)> = store
        .list_snapshots()
        .ok()?
        .into_iter()
        .filter_map(|entry| {
            let index = parse_record_index(&entry.name, key)?;
            (index <= at).then_some((index, entry.name))
        })
        .collect();
    candidates.sort_by_key(|&(index, _)| std::cmp::Reverse(index));
    for (index, name) in candidates {
        match store.load_snapshot(&name) {
            Ok(Some(bytes)) => return Some((index, bytes)),
            // Absent (raced) or quarantined-corrupt: try the next older.
            Ok(None) | Err(_) => continue,
        }
    }
    None
}

/// The standard snapshot predictor roster: one instance of each request
/// predictor the serve tier resolves names to (`twobit`, `gshare`, `pap`,
/// `taken`), with the serve tier's exact geometries. A snapshot cut with
/// this roster carries a warm-start blob for every predictor a
/// `/simulate_range` request can name; a geometry mismatch here would
/// make the blobs unrestorable there.
#[must_use]
pub fn standard_predictors() -> Vec<Box<dyn dee_predict::BranchPredictor>> {
    vec![
        Box::new(dee_predict::TwoBitCounter::new()),
        Box::new(dee_predict::Gshare::new(12, 8)),
        Box::new(dee_predict::PapAdaptive::new()),
        Box::new(dee_predict::AlwaysTaken::new()),
    ]
}

/// Steps a fresh machine through `program`, cutting a snapshot every
/// `stride` records (at records `stride`, `2·stride`, … while the
/// machine is still running) and publishing each alongside the parent
/// artifact under [`snapshot_filename`]. The [`standard_predictors`]
/// roster is replayed in lockstep — the same `predict` + `resolve`
/// sequence trace preparation issues — so a snapshot at `k` carries each
/// predictor's exact state after records `[0, k)`. Snapshots are
/// deterministic, so republishing over an existing one is byte-identical
/// and idempotent. Returns how many snapshots were published.
///
/// # Errors
///
/// Propagates VM faults and store write failures.
pub fn publish_checkpoints(
    store: &Store,
    key: &ArtifactKey,
    program: &dee_isa::Program,
    initial_memory: &[i32],
    stride: u64,
) -> Result<usize, String> {
    let stride = stride.max(1);
    let mut machine = dee_vm::Machine::new();
    machine
        .try_load_memory(initial_memory)
        .map_err(|e| e.to_string())?;
    let mut predictors = standard_predictors();
    let mut published = 0usize;
    'run: loop {
        for _ in 0..stride {
            if machine.is_halted() {
                break 'run;
            }
            let (_, record) = machine.step(program).map_err(|e| e.to_string())?;
            if let Some(outcome) = record.branch {
                for p in &mut predictors {
                    let _ = p.predict(record.pc);
                    p.resolve(record.pc, outcome.taken);
                }
            }
        }
        if machine.is_halted() {
            break;
        }
        let at = machine.executed();
        let snapshot = Snapshot {
            trace_format_version: dee_vm::TRACE_FORMAT_VERSION,
            parent_digest: key.digest,
            record_index: at,
            machine: machine.snapshot_state(),
            predictors: predictors
                .iter()
                .map(|p| (p.name().to_string(), p.save_state()))
                .collect(),
            prng_streams: Vec::new(),
        };
        store
            .put_snapshot(
                &snapshot_filename(key, at),
                &snapshot.encode(initial_memory),
            )
            .map_err(|e| e.to_string())?;
        published += 1;
    }
    Ok(published)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_section(out: &mut Vec<u8>, entries: &[(String, Vec<u8>)]) {
    put_u32(out, entries.len() as u32);
    for (name, blob) in entries {
        debug_assert!(name.len() <= u8::MAX as usize, "section name too long");
        out.push(name.len() as u8);
        out.extend_from_slice(name.as_bytes());
        put_u32(out, blob.len() as u32);
        out.extend_from_slice(blob);
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "snapshot truncated".to_string())?;
        let run = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(run)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i32(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn counted(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n > MAX_SECTION {
            return Err(format!("snapshot {what} count {n} implausibly large"));
        }
        Ok(n)
    }

    fn section(&mut self, what: &str) -> Result<Vec<(String, Vec<u8>)>, String> {
        let count = self.counted(what)?;
        let mut entries = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name_len = self.u8()? as usize;
            let name = String::from_utf8(self.take(name_len)?.to_vec())
                .map_err(|_| format!("snapshot {what} name not utf-8"))?;
            let blob_len = self.counted(what)?;
            entries.push((name, self.take(blob_len)?.to_vec()));
        }
        Ok(entries)
    }
}

impl Snapshot {
    /// Serializes the snapshot, delta-compressing the memory image
    /// against `initial_memory` (the image the parent trace started
    /// from, zero-extended to the machine's memory size).
    #[must_use]
    pub fn encode(&self, initial_memory: &[i32]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAP_VERSION);
        put_u32(&mut out, self.trace_format_version);
        put_u64(&mut out, self.parent_digest);
        put_u64(&mut out, self.record_index);
        let m = &self.machine;
        put_u32(&mut out, m.regs.len() as u32);
        for &r in &m.regs {
            out.extend_from_slice(&r.to_le_bytes());
        }
        put_u32(&mut out, m.pc);
        out.push(u8::from(m.halted));
        put_u32(&mut out, m.depth);
        put_u64(&mut out, m.executed);
        put_u32(&mut out, m.output.len() as u32);
        for &w in &m.output {
            out.extend_from_slice(&w.to_le_bytes());
        }
        put_u32(&mut out, m.mem.len() as u32);
        let mut dirty = 0u32;
        let mut delta = Vec::new();
        for (i, &word) in m.mem.iter().enumerate() {
            let base = initial_memory.get(i).copied().unwrap_or(0);
            if word != base {
                dirty += 1;
                delta.extend_from_slice(&(i as u32).to_le_bytes());
                delta.extend_from_slice(&(word ^ base).to_le_bytes());
            }
        }
        put_u32(&mut out, dirty);
        let encoded = compress(&delta);
        put_u32(&mut out, encoded.len() as u32);
        out.extend_from_slice(&encoded);
        put_section(&mut out, &self.predictors);
        put_section(&mut out, &self.prng_streams);
        let sum = checksum64(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes and fully validates a snapshot, reconstructing the memory
    /// image against the same `initial_memory` it was encoded with.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first framing or layout
    /// problem; callers treat any error as corruption (quarantine).
    pub fn decode(bytes: &[u8], initial_memory: &[i32]) -> Result<Snapshot, String> {
        verify_snapshot_bytes(bytes)?;
        let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 8];
        let mut cur = Cursor::new(body);
        let version = cur.u32()?;
        if version != SNAP_VERSION {
            return Err(format!(
                "snapshot version {version} (this build reads v{SNAP_VERSION})"
            ));
        }
        let trace_format_version = cur.u32()?;
        let parent_digest = cur.u64()?;
        let record_index = cur.u64()?;
        let reg_count = cur.counted("register")?;
        let mut reg_values = Vec::with_capacity(reg_count);
        for _ in 0..reg_count {
            reg_values.push(cur.i32()?);
        }
        let regs = <[i32; dee_vm::MachineState::REG_COUNT]>::try_from(reg_values)
            .map_err(|v: Vec<i32>| format!("snapshot has {} registers", v.len()))?;
        let pc = cur.u32()?;
        let halted = match cur.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("bad halted flag {other}")),
        };
        let depth = cur.u32()?;
        let executed = cur.u64()?;
        let output_len = cur.counted("output")?;
        let mut output = Vec::with_capacity(output_len);
        for _ in 0..output_len {
            output.push(cur.i32()?);
        }
        let mem_words = cur.counted("memory")?;
        let dirty = cur.counted("memory-dirty")?;
        let enc_len = cur.counted("memory-delta")?;
        let encoded = cur.take(enc_len)?;
        let delta = decompress(encoded, dirty * 8)?;
        if delta.len() != dirty * 8 {
            return Err(format!(
                "memory delta decompressed to {} bytes, want {}",
                delta.len(),
                dirty * 8
            ));
        }
        let mut mem: Vec<i32> = (0..mem_words)
            .map(|i| initial_memory.get(i).copied().unwrap_or(0))
            .collect();
        let mut last_index: Option<usize> = None;
        for pair in delta.chunks_exact(8) {
            let index = u32::from_le_bytes(pair[..4].try_into().expect("4 bytes")) as usize;
            let xor = i32::from_le_bytes(pair[4..].try_into().expect("4 bytes"));
            if index >= mem_words {
                return Err(format!("dirty word index {index} out of range"));
            }
            if last_index.is_some_and(|prev| index <= prev) {
                return Err("dirty word indexes not strictly increasing".to_string());
            }
            last_index = Some(index);
            mem[index] ^= xor;
        }
        let predictors = cur.section("predictor")?;
        let prng_streams = cur.section("prng")?;
        if cur.pos != body.len() {
            return Err(format!(
                "snapshot has {} trailing payload bytes",
                body.len() - cur.pos
            ));
        }
        Ok(Snapshot {
            trace_format_version,
            parent_digest,
            record_index,
            machine: MachineState {
                regs,
                mem,
                pc,
                halted,
                depth,
                executed,
                output,
            },
            predictors,
            prng_streams,
        })
    }

    /// Reads header-level facts without reconstructing the memory image
    /// (no initial-memory needed) — the `dee snap info` path.
    ///
    /// # Errors
    ///
    /// As [`Snapshot::decode`].
    pub fn info(bytes: &[u8]) -> Result<SnapshotInfo, String> {
        verify_snapshot_bytes(bytes)?;
        let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 8];
        let mut cur = Cursor::new(body);
        let version = cur.u32()?;
        if version != SNAP_VERSION {
            return Err(format!(
                "snapshot version {version} (this build reads v{SNAP_VERSION})"
            ));
        }
        let trace_format_version = cur.u32()?;
        let parent_digest = cur.u64()?;
        let record_index = cur.u64()?;
        let reg_count = cur.counted("register")?;
        cur.take(reg_count * 4)?;
        let _pc = cur.u32()?;
        let halted = cur.u8()? != 0;
        let _depth = cur.u32()?;
        let executed = cur.u64()?;
        let output_words = cur.counted("output")? as u32;
        cur.take(output_words as usize * 4)?;
        let mem_words = cur.counted("memory")? as u32;
        let _dirty = cur.counted("memory-dirty")?;
        let enc_len = cur.counted("memory-delta")?;
        cur.take(enc_len)?;
        let predictors = cur
            .section("predictor")?
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        Ok(SnapshotInfo {
            trace_format_version,
            parent_digest,
            record_index,
            mem_words,
            executed,
            output_words,
            halted,
            predictors,
        })
    }

    /// The predictor blob for `name`, when carried.
    #[must_use]
    pub fn predictor_state(&self, name: &str) -> Option<&[u8]> {
        self.predictors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, blob)| blob.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{Assembler, Reg};
    use dee_predict::{BranchPredictor, Gshare, PapAdaptive, TwoBitCounter};
    use dee_vm::Machine;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dee_snap_unit_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn looped(n: i32) -> dee_isa::Program {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, n);
        asm.label("top");
        asm.sw(r1, Reg::ZERO, 128);
        asm.out(r1);
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        asm.assemble().unwrap()
    }

    fn mid_run_snapshot(initial_memory: &[i32]) -> Snapshot {
        let program = looped(50);
        let mut machine = Machine::new();
        machine.try_load_memory(initial_memory).unwrap();
        let mut predictor = TwoBitCounter::new();
        for _ in 0..120 {
            let (_, record) = machine.step(&program).unwrap();
            if let Some(outcome) = record.branch {
                predictor.predict(record.pc);
                predictor.resolve(record.pc, outcome.taken);
            }
        }
        Snapshot {
            trace_format_version: dee_vm::TRACE_FORMAT_VERSION,
            parent_digest: 0xdead_beef_0123_4567,
            record_index: 120,
            machine: machine.snapshot_state(),
            predictors: vec![("2bc".to_string(), predictor.save_state())],
            prng_streams: vec![("loadgen".to_string(), vec![9, 9, 9, 9])],
        }
    }

    #[test]
    fn encode_decode_round_trip_is_lossless_and_deterministic() {
        let initial = vec![3, 1, 4, 1, 5];
        let snap = mid_run_snapshot(&initial);
        let bytes = snap.encode(&initial);
        assert_eq!(bytes, snap.encode(&initial), "encoding is deterministic");
        verify_snapshot_bytes(&bytes).expect("store-level framing verifies");
        let decoded = Snapshot::decode(&bytes, &initial).expect("decodes");
        assert_eq!(decoded, snap);
        let info = Snapshot::info(&bytes).expect("info reads");
        assert_eq!(info.record_index, 120);
        assert_eq!(info.parent_digest, snap.parent_digest);
        assert_eq!(info.mem_words, snap.machine.mem.len() as u32);
        assert_eq!(info.predictors, vec!["2bc".to_string()]);
        assert!(!info.halted);
    }

    #[test]
    fn memory_delta_stays_small() {
        // 4 MiB of machine memory with a handful of dirty words must
        // compress to well under a kilobyte — that is the point of
        // delta-compressing against the initial image.
        let initial = vec![7; 4096];
        let snap = mid_run_snapshot(&initial);
        let bytes = snap.encode(&initial);
        assert!(
            bytes.len() < 4096,
            "snapshot is {} bytes; delta compression regressed",
            bytes.len()
        );
    }

    #[test]
    fn restored_machine_resumes_bit_identically() {
        let program = looped(30);
        let initial = vec![11, 22, 33];
        // Oracle: run to completion in one go.
        let mut oracle = Machine::new();
        oracle.try_load_memory(&initial).unwrap();
        let mut oracle_records = Vec::new();
        loop {
            let (outcome, record) = oracle.step(&program).unwrap();
            oracle_records.push(record);
            if outcome == dee_vm::StepOutcome::Halted {
                break;
            }
        }
        // Cut a snapshot mid-run, round-trip it through bytes, restore
        // into a fresh machine, and replay the tail.
        let cut = 37usize;
        let mut machine = Machine::new();
        machine.try_load_memory(&initial).unwrap();
        let mut records = Vec::new();
        for _ in 0..cut {
            let (_, record) = machine.step(&program).unwrap();
            records.push(record);
        }
        let snap = Snapshot {
            trace_format_version: dee_vm::TRACE_FORMAT_VERSION,
            parent_digest: 1,
            record_index: cut as u64,
            machine: machine.snapshot_state(),
            predictors: vec![],
            prng_streams: vec![],
        };
        let decoded = Snapshot::decode(&snap.encode(&initial), &initial).expect("decodes");
        let mut resumed = Machine::new();
        resumed.restore_state(&decoded.machine);
        loop {
            let (outcome, record) = resumed.step(&program).unwrap();
            records.push(record);
            if outcome == dee_vm::StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(records, oracle_records, "warm tail diverged from oracle");
        assert_eq!(resumed.output(), oracle.output());
    }

    #[test]
    fn predictor_blobs_resume_all_three_predictors() {
        // Drive all three stateful predictors over a prefix, snapshot,
        // restore, and check the suffix behaves identically.
        let outcomes: Vec<(u32, bool)> = (0..500u32).map(|i| (i % 19, i % 3 != 1)).collect();
        let (prefix, suffix) = outcomes.split_at(310);
        let mut originals: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(TwoBitCounter::new()),
            Box::new(Gshare::new(12, 8)),
            Box::new(PapAdaptive::new()),
        ];
        for p in &mut originals {
            for &(pc, taken) in prefix {
                p.predict(pc);
                p.resolve(pc, taken);
            }
        }
        let snap = Snapshot {
            trace_format_version: 1,
            parent_digest: 2,
            record_index: prefix.len() as u64,
            machine: Machine::new().snapshot_state(),
            predictors: originals
                .iter()
                .map(|p| (p.name().to_string(), p.save_state()))
                .collect(),
            prng_streams: vec![],
        };
        let initial: Vec<i32> = vec![];
        let decoded = Snapshot::decode(&snap.encode(&initial), &initial).expect("decodes");
        let mut restored: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(TwoBitCounter::new()),
            Box::new(Gshare::new(12, 8)),
            Box::new(PapAdaptive::new()),
        ];
        for r in &mut restored {
            let blob = decoded.predictor_state(r.name()).expect("blob carried");
            r.load_state(blob).expect("loads");
        }
        for (p, r) in originals.iter_mut().zip(&mut restored) {
            for &(pc, taken) in suffix {
                assert_eq!(p.predict(pc), r.predict(pc), "{} diverged", p.name());
                p.resolve(pc, taken);
                r.resolve(pc, taken);
            }
        }
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let initial = vec![1, 2, 3];
        let snap = mid_run_snapshot(&initial);
        let bytes = snap.encode(&initial);
        // Flip one byte at a spread of offsets: every flip must fail
        // decode (almost always at the checksum; interior flips that
        // also break layout must never panic).
        for offset in (0..bytes.len()).step_by(bytes.len() / 23 + 1) {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x10;
            assert!(
                Snapshot::decode(&bad, &initial).is_err(),
                "flip at {offset} went undetected"
            );
        }
        // Truncations too.
        for cut in [0, 7, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(Snapshot::decode(&bytes[..cut], &initial).is_err());
        }
    }

    #[test]
    fn filenames_round_trip_and_nearest_picks_the_floor() {
        let key = ArtifactKey::new("fig5", "small", "listing", &[1, 2, 3]);
        let name = snapshot_filename(&key, 8192);
        assert!(name.ends_with("-r8192.dsnp"), "{name}");
        assert!(dee_store::valid_artifact_name(&name), "{name}");
        assert_eq!(parse_record_index(&name, &key), Some(8192));
        let other = ArtifactKey::new("fig5", "tiny", "listing", &[1, 2, 3]);
        assert_eq!(parse_record_index(&name, &other), None);

        let dir = scratch("nearest");
        let store = Store::open(&dir).unwrap();
        let initial = vec![1, 2, 3];
        for index in [0u64, 4096, 8192, 12288] {
            let mut snap = mid_run_snapshot(&initial);
            snap.record_index = index;
            store
                .put_snapshot(&snapshot_filename(&key, index), &snap.encode(&initial))
                .unwrap();
        }
        assert_eq!(
            nearest_snapshot(&store, &key, 9000).map(|(i, _)| i),
            Some(8192)
        );
        assert_eq!(
            nearest_snapshot(&store, &key, 4096).map(|(i, _)| i),
            Some(4096)
        );
        assert_eq!(
            nearest_snapshot(&store, &key, u64::MAX).map(|(i, _)| i),
            Some(12288)
        );
        // Corrupt the nearest candidate on disk: it is quarantined and
        // the next older snapshot wins.
        let victim = dir.join(snapshot_filename(&key, 8192));
        let mut bad = std::fs::read(&victim).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        std::fs::write(&victim, &bad).unwrap();
        assert_eq!(
            nearest_snapshot(&store, &key, 9000).map(|(i, _)| i),
            Some(4096)
        );
        assert!(!victim.exists(), "corrupt snapshot quarantined");
        // At record 0 only the r0 snapshot qualifies.
        assert_eq!(nearest_snapshot(&store, &key, 0).map(|(i, _)| i), Some(0));
        std::fs::remove_dir_all(dir).ok();
    }
}
