//! `espresso` stand-in: two-level logic minimization on bit-vector cubes.
//!
//! SPEC's `espresso` minimizes PLA logic; its hot kernels are cube-level
//! bit-vector operations: distance tests, merging, and containment checks.
//! This workload performs Quine–McCluskey-style reduction on an ON-set of
//! cubes, exactly the operation mix of espresso's `expand`/`irredundant`
//! passes:
//!
//! 1. **Merge passes**: two cubes `(value, dc)` with identical don't-care
//!    masks whose values differ in exactly one bit combine into one cube
//!    with that bit marked don't-care (popcount via the `x &= x-1` loop);
//!    repeated until a pass merges nothing.
//! 2. **Containment elimination**: drop any cube covered by another
//!    surviving cube.
//!
//! Output: per-surviving-cube `(value, dc)` pairs in order, then the
//! survivor count and pass count.

use dee_isa::{Assembler, Reg};

use crate::{Scale, Workload, XorShift32};

/// Variables per cube (bits in value/mask words).
const VARS: i32 = 10;

/// Memory map: cube arrays are parallel `value[]` / `dc[]` / `live[]`
/// regions with capacity for growth during merging.
const N_ADDR: i32 = 0;
const CUBE_BASE: i32 = 16;

/// Capacity: merging can add at most n*(n-1)/2 cubes per pass but dedup
/// keeps growth modest; we budget generously.
fn capacity(n: i32) -> i32 {
    8 * n + 64
}

/// Number of initial cubes per scale.
#[must_use]
pub fn cube_count(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 24,
        Scale::Small => 60,
        Scale::Medium => 110,
        Scale::Large => 240,
    }
}

/// Generates the initial ON-set: random minterm-ish cubes (a few don't-care
/// bits so merging has work to do).
#[must_use]
pub fn generate_cubes(count: usize, seed: u32) -> Vec<(i32, i32)> {
    let mut rng = XorShift32::new(seed);
    let all = (1u32 << VARS) - 1;
    let mut cubes = Vec::with_capacity(count);
    while cubes.len() < count {
        let dc = if rng.below(4) == 0 {
            1 << rng.below(VARS as u32)
        } else {
            0
        };
        let value = (rng.next_u32() & all) as i32 & !dc;
        if !cubes.contains(&(value, dc)) {
            cubes.push((value, dc));
        }
    }
    cubes
}

fn popcount_loop(mut x: i32) -> i32 {
    let mut count = 0;
    while x != 0 {
        x &= x.wrapping_sub(1);
        count += 1;
    }
    count
}

/// Reference minimizer; must match the assembly bit-for-bit (same scan
/// order, same dedup policy).
#[must_use]
pub fn reference_minimize(initial: &[(i32, i32)]) -> Vec<i32> {
    let mut values: Vec<i32> = initial.iter().map(|c| c.0).collect();
    let mut dcs: Vec<i32> = initial.iter().map(|c| c.1).collect();
    let mut passes = 0i32;
    loop {
        passes += 1;
        let n = values.len();
        let mut live = vec![true; n];
        let mut new_values = Vec::new();
        let mut new_dcs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if dcs[i] != dcs[j] {
                    continue;
                }
                let diff = values[i] ^ values[j];
                if popcount_loop(diff) != 1 {
                    continue;
                }
                let mv = values[i] & !diff;
                let md = dcs[i] | diff;
                live[i] = false;
                live[j] = false;
                // Linear-scan dedup over the new list.
                let mut dup = false;
                for k in 0..new_values.len() {
                    if new_values[k] == mv && new_dcs[k] == md {
                        dup = true;
                        break;
                    }
                }
                if !dup {
                    new_values.push(mv);
                    new_dcs.push(md);
                }
            }
        }
        if new_values.is_empty() {
            break;
        }
        // Survivors keep their order, merged cubes append after.
        let mut next_values = Vec::new();
        let mut next_dcs = Vec::new();
        for i in 0..n {
            if live[i] {
                next_values.push(values[i]);
                next_dcs.push(dcs[i]);
            }
        }
        next_values.extend_from_slice(&new_values);
        next_dcs.extend_from_slice(&new_dcs);
        values = next_values;
        dcs = next_dcs;
    }

    // Containment: cube j covers cube i iff dc_i ⊆ dc_j and their values
    // agree outside dc_j. Earlier cube wins ties (i removed only if a
    // distinct live j covers it; among identical cubes the first survives).
    let n = values.len();
    let mut live = vec![true; n];
    for i in 0..n {
        if !live[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !live[j] {
                continue;
            }
            let covers = (dcs[i] & dcs[j]) == dcs[i]
                && (values[i] & !dcs[j]) == values[j]
                && (dcs[i] != dcs[j] || values[i] != values[j] || j < i);
            if covers {
                live[i] = false;
                break;
            }
        }
    }

    let mut out = Vec::new();
    let mut survivors = 0i32;
    for i in 0..n {
        if live[i] {
            out.push(values[i]);
            out.push(dcs[i]);
            survivors += 1;
        }
    }
    out.push(survivors);
    out.push(passes);
    out
}

/// Builds the workload at `scale`.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let cubes = generate_cubes(cube_count(scale), 0xE5_0301);
    let n0 = cubes.len() as i32;
    let cap = capacity(n0);
    // Parallel arrays: val[cap], dc[cap], live[cap], plus a second buffer
    // set (newval/newdc) and next buffers.
    let val_b = CUBE_BASE;
    let dc_b = val_b + cap;
    let live_b = dc_b + cap;
    let nv_b = live_b + cap;
    let nd_b = nv_b + cap;
    let xv_b = nd_b + cap;
    let xd_b = xv_b + cap;

    let program = {
        let mut asm = Assembler::new();
        let (r_n, r_i, r_j, r_t) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_vi, r_di, r_vj, r_dj) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
        let (r_diff, r_cnt, r_nn, r_addr) = (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));
        let (r_mv, r_md, r_k, r_passes) = (Reg::new(13), Reg::new(14), Reg::new(15), Reg::new(16));
        let (r_t2, r_xn) = (Reg::new(17), Reg::new(18));

        asm.lw(r_n, Reg::ZERO, N_ADDR);
        asm.li(r_passes, 0);

        // ================= merge passes =================
        asm.label("pass");
        asm.addi(r_passes, r_passes, 1);
        // live[i] = 1 for all i
        asm.li(r_i, 0);
        asm.label("init_live");
        asm.bge_label(r_i, r_n, "init_done");
        asm.li(r_t, 1);
        asm.li(r_addr, live_b);
        asm.add(r_addr, r_addr, r_i);
        asm.sw(r_t, r_addr, 0);
        asm.addi(r_i, r_i, 1);
        asm.j_label("init_live");
        asm.label("init_done");
        asm.li(r_nn, 0); // new-cube count

        asm.li(r_i, 0);
        asm.label("i_loop");
        asm.bge_label(r_i, r_n, "pass_end");
        asm.addi(r_j, r_i, 1);
        asm.label("j_loop");
        asm.bge_label(r_j, r_n, "i_next");
        // load cubes i and j
        asm.li(r_addr, dc_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_di, r_t, 0);
        asm.add(r_t, r_addr, r_j);
        asm.lw(r_dj, r_t, 0);
        asm.bne_label(r_di, r_dj, "j_next");
        asm.li(r_addr, val_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_vi, r_t, 0);
        asm.add(r_t, r_addr, r_j);
        asm.lw(r_vj, r_t, 0);
        asm.xor(r_diff, r_vi, r_vj);
        // popcount(diff) via x &= x-1
        asm.li(r_cnt, 0);
        asm.mv(r_t, r_diff);
        asm.label("pop_loop");
        asm.beq_label(r_t, Reg::ZERO, "pop_done");
        asm.addi(r_t2, r_t, -1);
        asm.and(r_t, r_t, r_t2);
        asm.addi(r_cnt, r_cnt, 1);
        asm.j_label("pop_loop");
        asm.label("pop_done");
        asm.li(r_t, 1);
        asm.bne_label(r_cnt, r_t, "j_next");
        // merge: mv = vi & ~diff; md = di | diff
        asm.li(r_t, -1);
        asm.xor(r_t, r_diff, r_t); // ~diff
        asm.and(r_mv, r_vi, r_t);
        asm.or(r_md, r_di, r_diff);
        // live[i] = live[j] = 0
        asm.li(r_addr, live_b);
        asm.add(r_t, r_addr, r_i);
        asm.sw(Reg::ZERO, r_t, 0);
        asm.add(r_t, r_addr, r_j);
        asm.sw(Reg::ZERO, r_t, 0);
        // dedup scan over new list
        asm.li(r_k, 0);
        asm.label("dedup");
        asm.bge_label(r_k, r_nn, "append");
        asm.li(r_addr, nv_b);
        asm.add(r_t, r_addr, r_k);
        asm.lw(r_t2, r_t, 0);
        asm.bne_label(r_t2, r_mv, "dedup_next");
        asm.li(r_addr, nd_b);
        asm.add(r_t, r_addr, r_k);
        asm.lw(r_t2, r_t, 0);
        asm.beq_label(r_t2, r_md, "j_next"); // duplicate: skip append
        asm.label("dedup_next");
        asm.addi(r_k, r_k, 1);
        asm.j_label("dedup");
        asm.label("append");
        asm.li(r_addr, nv_b);
        asm.add(r_t, r_addr, r_nn);
        asm.sw(r_mv, r_t, 0);
        asm.li(r_addr, nd_b);
        asm.add(r_t, r_addr, r_nn);
        asm.sw(r_md, r_t, 0);
        asm.addi(r_nn, r_nn, 1);
        asm.label("j_next");
        asm.addi(r_j, r_j, 1);
        asm.j_label("j_loop");
        asm.label("i_next");
        asm.addi(r_i, r_i, 1);
        asm.j_label("i_loop");

        asm.label("pass_end");
        asm.beq_label(r_nn, Reg::ZERO, "containment");
        // Rebuild: survivors (live) then merged cubes, into x buffers.
        asm.li(r_xn, 0);
        asm.li(r_i, 0);
        asm.label("rb_loop");
        asm.bge_label(r_i, r_n, "rb_new");
        asm.li(r_addr, live_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_t2, r_t, 0);
        asm.beq_label(r_t2, Reg::ZERO, "rb_next");
        asm.li(r_addr, val_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_vi, r_t, 0);
        asm.li(r_addr, dc_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_di, r_t, 0);
        asm.li(r_addr, xv_b);
        asm.add(r_t, r_addr, r_xn);
        asm.sw(r_vi, r_t, 0);
        asm.li(r_addr, xd_b);
        asm.add(r_t, r_addr, r_xn);
        asm.sw(r_di, r_t, 0);
        asm.addi(r_xn, r_xn, 1);
        asm.label("rb_next");
        asm.addi(r_i, r_i, 1);
        asm.j_label("rb_loop");
        asm.label("rb_new");
        asm.li(r_i, 0);
        asm.label("rbn_loop");
        asm.bge_label(r_i, r_nn, "rb_copy");
        asm.li(r_addr, nv_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_vi, r_t, 0);
        asm.li(r_addr, nd_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_di, r_t, 0);
        asm.li(r_addr, xv_b);
        asm.add(r_t, r_addr, r_xn);
        asm.sw(r_vi, r_t, 0);
        asm.li(r_addr, xd_b);
        asm.add(r_t, r_addr, r_xn);
        asm.sw(r_di, r_t, 0);
        asm.addi(r_xn, r_xn, 1);
        asm.addi(r_i, r_i, 1);
        asm.j_label("rbn_loop");
        // Copy x buffers back to val/dc, n = xn, repeat.
        asm.label("rb_copy");
        asm.li(r_i, 0);
        asm.label("cp_loop");
        asm.bge_label(r_i, r_xn, "cp_done");
        asm.li(r_addr, xv_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_vi, r_t, 0);
        asm.li(r_addr, val_b);
        asm.add(r_t, r_addr, r_i);
        asm.sw(r_vi, r_t, 0);
        asm.li(r_addr, xd_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_di, r_t, 0);
        asm.li(r_addr, dc_b);
        asm.add(r_t, r_addr, r_i);
        asm.sw(r_di, r_t, 0);
        asm.addi(r_i, r_i, 1);
        asm.j_label("cp_loop");
        asm.label("cp_done");
        asm.mv(r_n, r_xn);
        asm.j_label("pass");

        // ================= containment =================
        asm.label("containment");
        // live[] reset to 1.
        asm.li(r_i, 0);
        asm.label("c_init");
        asm.bge_label(r_i, r_n, "c_init_done");
        asm.li(r_t, 1);
        asm.li(r_addr, live_b);
        asm.add(r_addr, r_addr, r_i);
        asm.sw(r_t, r_addr, 0);
        asm.addi(r_i, r_i, 1);
        asm.j_label("c_init");
        asm.label("c_init_done");

        asm.li(r_i, 0);
        asm.label("c_i");
        asm.bge_label(r_i, r_n, "emit");
        asm.li(r_addr, live_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_t2, r_t, 0);
        asm.beq_label(r_t2, Reg::ZERO, "c_i_next");
        asm.li(r_addr, val_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_vi, r_t, 0);
        asm.li(r_addr, dc_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_di, r_t, 0);
        asm.li(r_j, 0);
        asm.label("c_j");
        asm.bge_label(r_j, r_n, "c_i_next");
        asm.beq_label(r_j, r_i, "c_j_next");
        asm.li(r_addr, live_b);
        asm.add(r_t, r_addr, r_j);
        asm.lw(r_t2, r_t, 0);
        asm.beq_label(r_t2, Reg::ZERO, "c_j_next");
        asm.li(r_addr, dc_b);
        asm.add(r_t, r_addr, r_j);
        asm.lw(r_dj, r_t, 0);
        // dc_i subset of dc_j?
        asm.and(r_t2, r_di, r_dj);
        asm.bne_label(r_t2, r_di, "c_j_next");
        asm.li(r_addr, val_b);
        asm.add(r_t, r_addr, r_j);
        asm.lw(r_vj, r_t, 0);
        // values agree outside dc_j?
        asm.li(r_t, -1);
        asm.xor(r_t, r_dj, r_t); // ~dc_j
        asm.and(r_t2, r_vi, r_t);
        asm.bne_label(r_t2, r_vj, "c_j_next");
        // identical cubes: only j < i removes i
        asm.bne_label(r_di, r_dj, "c_kill");
        asm.bne_label(r_vi, r_vj, "c_kill");
        asm.bge_label(r_j, r_i, "c_j_next");
        asm.label("c_kill");
        asm.li(r_addr, live_b);
        asm.add(r_t, r_addr, r_i);
        asm.sw(Reg::ZERO, r_t, 0);
        asm.j_label("c_i_next");
        asm.label("c_j_next");
        asm.addi(r_j, r_j, 1);
        asm.j_label("c_j");
        asm.label("c_i_next");
        asm.addi(r_i, r_i, 1);
        asm.j_label("c_i");

        // ================= emit =================
        asm.label("emit");
        asm.li(r_xn, 0); // survivors
        asm.li(r_i, 0);
        asm.label("e_loop");
        asm.bge_label(r_i, r_n, "e_done");
        asm.li(r_addr, live_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_t2, r_t, 0);
        asm.beq_label(r_t2, Reg::ZERO, "e_next");
        asm.li(r_addr, val_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_vi, r_t, 0);
        asm.out(r_vi);
        asm.li(r_addr, dc_b);
        asm.add(r_t, r_addr, r_i);
        asm.lw(r_di, r_t, 0);
        asm.out(r_di);
        asm.addi(r_xn, r_xn, 1);
        asm.label("e_next");
        asm.addi(r_i, r_i, 1);
        asm.j_label("e_loop");
        asm.label("e_done");
        asm.out(r_xn);
        asm.out(r_passes);
        asm.halt();
        asm.assemble().expect("espresso assembles")
    };

    let mut initial_memory = vec![0i32; CUBE_BASE as usize];
    initial_memory[N_ADDR as usize] = n0;
    initial_memory.resize((val_b + cap) as usize, 0);
    for (i, &(v, _)) in cubes.iter().enumerate() {
        initial_memory[(val_b + i as i32) as usize] = v;
    }
    initial_memory.resize((dc_b + cap) as usize, 0);
    for (i, &(_, d)) in cubes.iter().enumerate() {
        initial_memory[(dc_b + i as i32) as usize] = d;
    }
    assert!(xd_b + cap < (1 << 20), "memory layout fits");

    let expected_output = reference_minimize(&cubes);
    Workload {
        name: "espresso".to_string(),
        program,
        initial_memory,
        expected_output,
        step_limit: 400_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcount_loop_matches_builtin() {
        for x in [0i32, 1, 2, 3, 255, -1, i32::MIN, 0x0F0F] {
            assert_eq!(popcount_loop(x), x.count_ones() as i32, "x={x}");
        }
    }

    #[test]
    fn adjacent_minterms_merge() {
        // 000 and 001 merge into 00- ; output should be one cube.
        let out = reference_minimize(&[(0b000, 0), (0b001, 0)]);
        assert_eq!(out, vec![0b000, 0b001, 1, 2]); // value 0, dc bit0; 1 cube; 2 passes
    }

    #[test]
    fn full_square_merges_to_single_cube() {
        // {00, 01, 10, 11} over 2 bits -> one cube with both bits dc.
        let out = reference_minimize(&[(0b00, 0), (0b01, 0), (0b10, 0), (0b11, 0)]);
        let survivors = out[out.len() - 2];
        assert_eq!(survivors, 1);
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 0b11);
    }

    #[test]
    fn contained_cube_removed() {
        // (0b0, dc=0b1) covers (0b0, dc=0) and (0b1, dc=0)... those merge
        // anyway; use a non-mergeable pair: big cube + distinct minterm
        // inside it with different dc masks (no merge: masks differ).
        let out = reference_minimize(&[(0b000, 0b011), (0b010, 0b000)]);
        let survivors = out[out.len() - 2];
        assert_eq!(survivors, 1, "minterm inside the larger cube is dropped");
        assert_eq!(&out[0..2], &[0b000, 0b011]);
    }

    #[test]
    fn disjoint_cubes_all_survive() {
        let cubes = [(0b0001, 0), (0b0100, 0), (0b1111, 0)];
        let out = reference_minimize(&cubes);
        let survivors = out[out.len() - 2];
        assert_eq!(survivors, 3);
    }

    #[test]
    fn assembly_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 10_000);
    }

    #[test]
    fn generator_yields_unique_cubes() {
        let cubes = generate_cubes(50, 1);
        for (i, a) in cubes.iter().enumerate() {
            for b in &cubes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
