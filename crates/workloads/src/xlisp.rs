//! `xlisp` stand-in: N-queens backtracking search.
//!
//! The paper's xlisp input is `li-input.lsp` — the 9-queens problem. The
//! original runs a Lisp interpreter over a queens program; the hot dynamic
//! behaviour is a backtracking search with data-dependent branches (column
//! and diagonal conflict tests). This workload implements that search
//! directly with an explicit row/column trial stack in memory.
//!
//! Output: the number of solutions, then the board size.

use dee_isa::{Assembler, Reg};

use crate::{Scale, Workload};

/// Board size per scale (9 at `Medium`, matching the paper's input).
#[must_use]
pub fn board_size(scale: Scale) -> i32 {
    match scale {
        Scale::Tiny => 5,
        Scale::Small => 7,
        Scale::Medium => 9,
        Scale::Large => 10,
    }
}

/// Reference implementation: counts N-queens solutions by the same
/// column-trial backtracking the assembly uses.
#[must_use]
pub fn reference_count(n: i32) -> i32 {
    assert!(n >= 1, "board size must be positive");
    let n = n as usize;
    let mut cols = vec![-1i32; n];
    let mut count = 0i32;
    let mut row: i32 = 0;
    while row >= 0 {
        let r = row as usize;
        cols[r] += 1;
        if cols[r] >= n as i32 {
            cols[r] = -1;
            row -= 1;
            continue;
        }
        let mut ok = true;
        for i in 0..r {
            let d = cols[i] - cols[r];
            if d == 0 || d.abs() == (r - i) as i32 {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if r + 1 == n {
            count += 1;
        } else {
            row += 1;
        }
    }
    count
}

/// Word address of the column-trial array.
const COLS_BASE: i32 = 16;

/// Builds the workload at `scale`.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let n = board_size(scale);
    let program = {
        let mut asm = Assembler::new();
        let (r_n, r_row, r_count, r_base) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_t, r_addr, r_col, r_i) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
        let (r_ci, r_diff, r_dist, r_last) =
            (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));

        asm.lw(r_n, Reg::ZERO, 0); // N
        asm.li(r_count, 0);
        asm.li(r_row, 0);
        asm.li(r_base, COLS_BASE);
        asm.li(r_t, -1);
        asm.sw(r_t, r_base, 0); // cols[0] = -1

        asm.label("loop");
        asm.blt_label(r_row, Reg::ZERO, "done");
        asm.add(r_addr, r_base, r_row);
        asm.lw(r_col, r_addr, 0);
        asm.addi(r_col, r_col, 1);
        asm.sw(r_col, r_addr, 0); // cols[row] += 1
        asm.bge_label(r_col, r_n, "backtrack");

        // Conflict scan over rows 0..row.
        asm.li(r_i, 0);
        asm.label("check");
        asm.bge_label(r_i, r_row, "place_ok");
        asm.add(r_t, r_base, r_i);
        asm.lw(r_ci, r_t, 0);
        asm.beq_label(r_ci, r_col, "loop"); // column conflict: next trial
        asm.sub(r_diff, r_ci, r_col);
        asm.sub(r_dist, r_row, r_i);
        asm.bge_label(r_diff, Reg::ZERO, "abs_done");
        asm.sub(r_diff, Reg::ZERO, r_diff);
        asm.label("abs_done");
        asm.beq_label(r_diff, r_dist, "loop"); // diagonal conflict
        asm.addi(r_i, r_i, 1);
        asm.j_label("check");

        asm.label("place_ok");
        asm.addi(r_last, r_n, -1);
        asm.bne_label(r_row, r_last, "descend");
        asm.addi(r_count, r_count, 1); // full board: count and keep scanning
        asm.j_label("loop");

        asm.label("descend");
        asm.addi(r_row, r_row, 1);
        asm.add(r_addr, r_base, r_row);
        asm.li(r_t, -1);
        asm.sw(r_t, r_addr, 0); // cols[row] = -1
        asm.j_label("loop");

        asm.label("backtrack");
        asm.li(r_t, -1);
        asm.sw(r_t, r_addr, 0); // reset trial column before retreating
        asm.addi(r_row, r_row, -1);
        asm.j_label("loop");

        asm.label("done");
        asm.out(r_count);
        asm.out(r_n);
        asm.halt();
        asm.assemble().expect("xlisp assembles")
    };

    let initial_memory = vec![n];
    let expected_output = vec![reference_count(n), n];
    Workload {
        name: "xlisp".to_string(),
        program,
        initial_memory,
        expected_output,
        step_limit: 200_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_counts() {
        // OEIS A000170.
        assert_eq!(reference_count(1), 1);
        assert_eq!(reference_count(4), 2);
        assert_eq!(reference_count(5), 10);
        assert_eq!(reference_count(6), 4);
        assert_eq!(reference_count(7), 40);
        assert_eq!(reference_count(8), 92);
    }

    #[test]
    fn assembly_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 1_000, "nontrivial dynamic length");
    }

    #[test]
    fn assembly_matches_reference_small() {
        let w = build(Scale::Small);
        w.validate().expect("runs and validates");
    }

    #[test]
    fn trace_is_branch_dense() {
        let w = build(Scale::Tiny);
        let trace = w.capture_trace().unwrap();
        let density = trace.num_cond_branches() as f64 / trace.len() as f64;
        assert!(density > 0.15, "queens should be branchy, got {density:.3}");
    }

    #[test]
    fn nine_queens_count_is_352() {
        assert_eq!(reference_count(9), 352);
    }
}
