//! Name → constructor registry for workloads.
//!
//! The paper's evaluation is a fixed five-benchmark array; everything
//! downstream (the bench `Suite`, the trace store, the CLI) used to
//! hard-code that list. The registry makes the workload set an open,
//! uniform namespace instead: builtins, the interpreter-on-interpreter
//! workload ([`crate::synacor`]), and `dee-gen` synthetic programs all
//! register through the same `name → build(Scale)` interface, so no
//! consumer needs special cases for where a workload came from.

use crate::{cc1, compress, eqntott, espresso, sc, synacor, xlisp, Scale, Workload};

/// The paper's benchmark set, in the paper's order (SPECint92 minus `sc`,
/// which §5 excluded as too predictable).
pub const PAPER_WORKLOADS: [&str; 5] = ["cc1", "compress", "eqntott", "espresso", "xlisp"];

/// A workload constructor: builds the program + input image at a scale.
pub type WorkloadCtor = Box<dyn Fn(Scale) -> Workload + Send + Sync>;

/// An extensible name → constructor table.
///
/// Insertion order is preserved: [`WorkloadRegistry::names`] and
/// [`WorkloadRegistry::build_all`] enumerate in registration order, so the
/// builtin registry keeps the paper's ordering for the first five entries.
#[derive(Default)]
pub struct WorkloadRegistry {
    entries: Vec<(String, WorkloadCtor)>,
}

impl WorkloadRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        WorkloadRegistry::default()
    }

    /// The builtin set: the paper's five, then the post-paper additions —
    /// `synacor` (the bytecode-interpreter workload) and `sc` (implemented
    /// but excluded from the paper's suite).
    #[must_use]
    pub fn builtin() -> Self {
        let mut registry = WorkloadRegistry::new();
        registry.register("cc1", cc1::build);
        registry.register("compress", compress::build);
        registry.register("eqntott", eqntott::build);
        registry.register("espresso", espresso::build);
        registry.register("xlisp", xlisp::build);
        registry.register("synacor", synacor::build);
        registry.register("sc", sc::build);
        registry
    }

    /// Registers a constructor under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate names would make
    /// lookups ambiguous, which is a build error, not a runtime condition.
    pub fn register<F>(&mut self, name: impl Into<String>, build: F) -> &mut Self
    where
        F: Fn(Scale) -> Workload + Send + Sync + 'static,
    {
        let name = name.into();
        assert!(
            !self.contains(&name),
            "workload `{name}` is already registered"
        );
        self.entries.push((name, Box::new(build)));
        self
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Builds the named workload at `scale`, or `None` if unregistered.
    #[must_use]
    pub fn build(&self, name: &str, scale: Scale) -> Option<Workload> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ctor)| ctor(scale))
    }

    /// Builds each named workload in the given order.
    ///
    /// # Errors
    ///
    /// Returns the first unregistered name.
    pub fn build_many(
        &self,
        names: &[impl AsRef<str>],
        scale: Scale,
    ) -> Result<Vec<Workload>, String> {
        names
            .iter()
            .map(|name| {
                let name = name.as_ref();
                self.build(name, scale)
                    .ok_or_else(|| format!("unknown workload `{name}`"))
            })
            .collect()
    }

    /// Builds every registered workload, in registration order.
    #[must_use]
    pub fn build_all(&self, scale: Scale) -> Vec<Workload> {
        self.entries.iter().map(|(_, ctor)| ctor(scale)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_leads_with_the_paper_suite() {
        let registry = WorkloadRegistry::builtin();
        let names = registry.names();
        assert_eq!(&names[..5], &PAPER_WORKLOADS);
        assert!(registry.contains("synacor"));
        assert!(registry.contains("sc"));
    }

    #[test]
    fn build_many_matches_direct_construction() {
        let registry = WorkloadRegistry::builtin();
        let via_registry = registry
            .build_many(&["xlisp", "compress"], Scale::Tiny)
            .unwrap();
        assert_eq!(via_registry[0].name, "xlisp");
        assert_eq!(via_registry[1].name, "compress");
        assert_eq!(
            via_registry[0].program,
            crate::xlisp::build(Scale::Tiny).program
        );
    }

    #[test]
    fn unknown_names_error_and_custom_registration_works() {
        let mut registry = WorkloadRegistry::builtin();
        assert!(registry.build("warp9", Scale::Tiny).is_none());
        assert!(registry.build_many(&["cc1", "warp9"], Scale::Tiny).is_err());
        registry.register("alias-xlisp", |scale| {
            let mut w = crate::xlisp::build(scale);
            w.name = "alias-xlisp".to_string();
            w
        });
        let w = registry.build("alias-xlisp", Scale::Tiny).unwrap();
        assert_eq!(w.name, "alias-xlisp");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        WorkloadRegistry::builtin().register("cc1", crate::cc1::build);
    }
}
