//! `sc` stand-in: iterative spreadsheet recalculation.
//!
//! The paper evaluated five of the six SPECint92 integer benchmarks: "The
//! sc benchmark was not included as it was significantly more predictable
//! than the others." This module implements the sixth anyway — a
//! spreadsheet recalculation kernel with the same character as `sc`
//! (regular row/column sweeps, range sums, rare data-dependent clamps) —
//! so the exclusion rationale is *measurable*: its 2-bit-counter accuracy
//! sits well above the five evaluated workloads (tested below, and
//! reported by the `predictor_accuracy` experiment).
//!
//! It is deliberately **not** part of [`all_workloads`](crate::all_workloads),
//! mirroring the paper's suite.
//!
//! Layout: an `R × C` grid, row-major. Columns `0..C-2` hold data; column
//! `C-2` is the row sum of the data cells; column `C-1` is a running total
//! (this row's sum plus the previous row's total), clamped when it
//! overflows a threshold. Each recalculation pass also drifts the data
//! cells, so passes are not idempotent. Output: the final totals column
//! and the grand total.

use dee_isa::{Assembler, Reg};

use crate::{Scale, Workload, XorShift32};

const R_ADDR: i32 = 0;
const C_ADDR: i32 = 1;
const K_ADDR: i32 = 2; // recalculation passes
const VAL_BASE: i32 = 16;
const CLAMP: i32 = 1_000_000;

/// Grid dimensions and pass count per scale: (rows, cols, passes).
#[must_use]
pub fn dimensions(scale: Scale) -> (i32, i32, i32) {
    match scale {
        Scale::Tiny => (16, 18, 8),
        Scale::Small => (24, 20, 30),
        Scale::Medium => (40, 22, 90),
        Scale::Large => (56, 26, 220),
    }
}

/// Generates the initial data cells.
#[must_use]
pub fn generate_grid(rows: i32, cols: i32, seed: u32) -> Vec<i32> {
    let mut rng = XorShift32::new(seed);
    let mut grid = vec![0i32; (rows * cols) as usize];
    for r in 0..rows {
        for c in 0..(cols - 2) {
            grid[(r * cols + c) as usize] = rng.below(500) as i32;
        }
    }
    grid
}

/// Reference recalculation; must match the assembly bit-for-bit.
#[must_use]
pub fn reference_recalc(rows: i32, cols: i32, passes: i32, grid: &[i32]) -> Vec<i32> {
    let mut grid = grid.to_vec();
    let at = |r: i32, c: i32| (r * cols + c) as usize;
    for pass in 0..passes {
        let mut prev_total = 0i32;
        for r in 0..rows {
            // Drift the data cells (keeps passes distinct).
            for c in 0..(cols - 2) {
                let cell = &mut grid[at(r, c)];
                *cell = cell.wrapping_add(r + c + pass);
            }
            // Row sum.
            let mut sum = 0i32;
            for c in 0..(cols - 2) {
                sum = sum.wrapping_add(grid[at(r, c)]);
            }
            grid[at(r, cols - 2)] = sum;
            // Running total with a rare clamp.
            let mut total = prev_total.wrapping_add(sum);
            if total > CLAMP {
                total -= CLAMP;
            }
            grid[at(r, cols - 1)] = total;
            prev_total = total;
        }
    }
    let mut out: Vec<i32> = (0..rows).map(|r| grid[at(r, cols - 1)]).collect();
    let grand = out.iter().fold(0i32, |a, &b| a.wrapping_add(b));
    out.push(grand);
    out
}

/// Builds the workload at `scale`.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let (rows, cols, passes) = dimensions(scale);
    let grid = generate_grid(rows, cols, 0x5C_0001);

    let program = {
        let mut asm = Assembler::new();
        let (r_rows, r_cols, r_k, r_pass) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_r, r_c, r_addr, r_t) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
        let (r_sum, r_total, r_row_base, r_lim) =
            (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));
        let (r_t2, r_clamp) = (Reg::new(13), Reg::new(14));

        asm.lw(r_rows, Reg::ZERO, R_ADDR);
        asm.lw(r_cols, Reg::ZERO, C_ADDR);
        asm.lw(r_k, Reg::ZERO, K_ADDR);
        asm.li(r_clamp, CLAMP);
        asm.li(r_pass, 0);

        asm.label("pass_loop");
        asm.bge_label(r_pass, r_k, "emit");
        asm.li(r_total, 0);
        asm.li(r_r, 0);

        asm.label("row_loop");
        asm.bge_label(r_r, r_rows, "pass_next");
        // row_base = VAL_BASE + r*cols
        asm.mul(r_row_base, r_r, r_cols);
        asm.addi(r_row_base, r_row_base, VAL_BASE);
        asm.addi(r_lim, r_cols, -2);

        // Drift data cells: grid[r][c] += r + c + pass.
        asm.li(r_c, 0);
        asm.label("drift_loop");
        asm.bge_label(r_c, r_lim, "sum_start");
        asm.add(r_addr, r_row_base, r_c);
        asm.lw(r_t, r_addr, 0);
        asm.add(r_t2, r_r, r_c);
        asm.add(r_t2, r_t2, r_pass);
        asm.add(r_t, r_t, r_t2);
        asm.sw(r_t, r_addr, 0);
        asm.addi(r_c, r_c, 1);
        asm.j_label("drift_loop");

        // Row sum.
        asm.label("sum_start");
        asm.li(r_sum, 0);
        asm.li(r_c, 0);
        asm.label("sum_loop");
        asm.bge_label(r_c, r_lim, "sum_done");
        asm.add(r_addr, r_row_base, r_c);
        asm.lw(r_t, r_addr, 0);
        asm.add(r_sum, r_sum, r_t);
        asm.addi(r_c, r_c, 1);
        asm.j_label("sum_loop");
        asm.label("sum_done");
        asm.add(r_addr, r_row_base, r_lim);
        asm.sw(r_sum, r_addr, 0); // grid[r][cols-2] = sum

        // Running total with rare clamp.
        asm.add(r_total, r_total, r_sum);
        asm.ble_label(r_total, r_clamp, "no_clamp");
        asm.sub(r_total, r_total, r_clamp);
        asm.label("no_clamp");
        asm.addi(r_addr, r_row_base, 0);
        asm.add(r_addr, r_addr, r_lim);
        asm.sw(r_total, r_addr, 1); // grid[r][cols-1]

        asm.addi(r_r, r_r, 1);
        asm.j_label("row_loop");

        asm.label("pass_next");
        asm.addi(r_pass, r_pass, 1);
        asm.j_label("pass_loop");

        // Emit the totals column and the grand total.
        asm.label("emit");
        asm.li(r_t2, 0); // grand total
        asm.li(r_r, 0);
        asm.label("emit_loop");
        asm.bge_label(r_r, r_rows, "emit_done");
        asm.mul(r_addr, r_r, r_cols);
        asm.addi(r_addr, r_addr, VAL_BASE);
        asm.add(r_addr, r_addr, r_cols);
        asm.lw(r_t, r_addr, -1); // grid[r][cols-1]
        asm.out(r_t);
        asm.add(r_t2, r_t2, r_t);
        asm.addi(r_r, r_r, 1);
        asm.j_label("emit_loop");
        asm.label("emit_done");
        asm.out(r_t2);
        asm.halt();
        asm.assemble().expect("sc assembles")
    };

    let mut initial_memory = vec![0i32; VAL_BASE as usize];
    initial_memory[R_ADDR as usize] = rows;
    initial_memory[C_ADDR as usize] = cols;
    initial_memory[K_ADDR as usize] = passes;
    initial_memory.extend_from_slice(&grid);

    let expected_output = reference_recalc(rows, cols, passes, &grid);
    Workload {
        name: "sc".to_string(),
        program,
        initial_memory,
        expected_output,
        step_limit: 200_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_predict::{measure_accuracy, TwoBitCounter};

    #[test]
    fn reference_is_deterministic_and_total_consistent() {
        let grid = generate_grid(8, 8, 3);
        let a = reference_recalc(8, 8, 5, &grid);
        let b = reference_recalc(8, 8, 5, &grid);
        assert_eq!(a, b);
        let grand = *a.last().unwrap();
        let sum: i32 = a[..a.len() - 1].iter().fold(0, |x, &y| x.wrapping_add(y));
        assert_eq!(grand, sum);
    }

    #[test]
    fn assembly_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 3_000);
    }

    #[test]
    fn assembly_matches_reference_small() {
        build(Scale::Small).validate().expect("runs and validates");
    }

    #[test]
    fn sc_is_more_predictable_than_the_evaluated_suite() {
        // The paper's exclusion rationale, reproduced: sc's 2-bit-counter
        // accuracy exceeds every benchmark in the evaluated suite.
        let sc = build(Scale::Tiny);
        let sc_trace = sc.capture_trace().expect("runs");
        let sc_acc = measure_accuracy(&mut TwoBitCounter::new(), &sc_trace).accuracy();
        for w in crate::all_workloads(Scale::Tiny) {
            let trace = w.capture_trace().expect("runs");
            let acc = measure_accuracy(&mut TwoBitCounter::new(), &trace).accuracy();
            assert!(
                sc_acc > acc,
                "sc ({:.3}) should beat {} ({:.3})",
                sc_acc,
                w.name,
                acc
            );
        }
        assert!(sc_acc > 0.93, "sc accuracy {sc_acc:.3}");
    }

    #[test]
    fn clamp_path_is_rarely_taken() {
        // The only data-dependent branch should fire on a small minority
        // of rows — that is what makes sc predictable.
        let (rows, cols, passes) = dimensions(Scale::Small);
        let grid = generate_grid(rows, cols, 0x5C_0001);
        let out = reference_recalc(rows, cols, passes, &grid);
        // Row totals stay clamped; the grand total (last element) may not.
        assert!(out[..out.len() - 1].iter().all(|&v| v <= CLAMP));
    }
}
