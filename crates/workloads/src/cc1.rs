//! `cc1` stand-in: expression tokenizer, recursive-descent parser, and
//! constant folder.
//!
//! SPEC's `cc1` is the GCC front end; its dynamic character is cascaded,
//! poorly-predictable dispatch branches (character classes, token kinds)
//! plus pointer-chasing through recursive structure. This workload is a
//! miniature front end over a synthetic source text:
//!
//! 1. **Tokenizer**: a character-class dispatch loop producing
//!    (kind, value) token pairs (multi-digit numbers, identifiers,
//!    operators, parentheses, statement separators);
//! 2. **Parser/folder**: recursive-descent expression evaluation
//!    (`expr → term → factor`, parenthesised recursion through real
//!    `jal`/`jr` calls with a memory stack), folding each statement to a
//!    constant against a small symbol table.
//!
//! Output: one folded value per statement, then the statement count.

use dee_isa::{Assembler, Reg};

use crate::{Scale, Workload, XorShift32};

/// Token kinds shared by the assembly and the reference.
const T_EOF: i32 = 0;
const T_NUM: i32 = 1;
const T_IDENT: i32 = 2;
const T_PLUS: i32 = 3;
const T_MINUS: i32 = 4;
const T_STAR: i32 = 5;
const T_SLASH: i32 = 6;
const T_LPAREN: i32 = 7;
const T_RPAREN: i32 = 8;
const T_SEMI: i32 = 9;
const T_PERCENT: i32 = 10;

/// Memory map.
const LEN_ADDR: i32 = 0;
const SYM_BASE: i32 = 16; // 26 identifier values
const CHAR_BASE: i32 = 48;
fn tok_base(char_len: i32) -> i32 {
    CHAR_BASE + char_len
}

/// Number of statements per scale.
#[must_use]
pub fn statement_count(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 12,
        Scale::Small => 80,
        Scale::Medium => 400,
        Scale::Large => 1_600,
    }
}

/// The identifier symbol table (values of `a`..`z`).
#[must_use]
pub fn symbol_table() -> [i32; 26] {
    let mut syms = [0i32; 26];
    let mut rng = XorShift32::new(0xCC_0001);
    for s in &mut syms {
        *s = rng.below(1_000) as i32 - 500;
    }
    syms
}

/// Generates the synthetic source text: `count` expression statements.
#[must_use]
pub fn generate_source(count: usize, seed: u32) -> Vec<i32> {
    let mut rng = XorShift32::new(seed);
    let mut text = String::new();
    for _ in 0..count {
        gen_expr(&mut rng, &mut text, 3);
        text.push(';');
        text.push(' ');
    }
    text.bytes().map(i32::from).collect()
}

fn gen_expr(rng: &mut XorShift32, out: &mut String, depth: u32) {
    gen_term(rng, out, depth);
    for _ in 0..rng.below(3) {
        out.push(if rng.below(2) == 0 { '+' } else { '-' });
        gen_term(rng, out, depth);
    }
}

fn gen_term(rng: &mut XorShift32, out: &mut String, depth: u32) {
    gen_factor(rng, out, depth);
    for _ in 0..rng.below(3) {
        out.push(match rng.below(3) {
            0 => '*',
            1 => '/',
            _ => '%',
        });
        gen_factor(rng, out, depth);
    }
}

fn gen_factor(rng: &mut XorShift32, out: &mut String, depth: u32) {
    match rng.below(if depth > 0 { 8 } else { 5 }) {
        0..=2 => {
            let n = rng.below(100);
            out.push_str(&n.to_string());
        }
        3 | 4 => {
            let c = (b'a' + rng.below(10) as u8) as char;
            out.push(c);
        }
        5 => {
            out.push('-');
            gen_factor(rng, out, depth - 1);
        }
        _ => {
            out.push('(');
            gen_expr(rng, out, depth - 1);
            out.push(')');
        }
    }
}

/// Reference tokenizer, identical classification to the assembly.
#[must_use]
pub fn reference_tokenize(chars: &[i32]) -> Vec<(i32, i32)> {
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == i32::from(b' ') {
            i += 1;
        } else if (i32::from(b'0')..=i32::from(b'9')).contains(&c) {
            let mut value = 0i32;
            while i < chars.len() && (i32::from(b'0')..=i32::from(b'9')).contains(&chars[i]) {
                value = value
                    .wrapping_mul(10)
                    .wrapping_add(chars[i] - i32::from(b'0'));
                i += 1;
            }
            tokens.push((T_NUM, value));
        } else if (i32::from(b'a')..=i32::from(b'z')).contains(&c) {
            tokens.push((T_IDENT, c - i32::from(b'a')));
            i += 1;
        } else {
            let kind = match c as u8 {
                b'+' => T_PLUS,
                b'-' => T_MINUS,
                b'*' => T_STAR,
                b'/' => T_SLASH,
                b'(' => T_LPAREN,
                b')' => T_RPAREN,
                b';' => T_SEMI,
                b'%' => T_PERCENT,
                _ => T_EOF, // generator never emits anything else
            };
            tokens.push((kind, 0));
            i += 1;
        }
    }
    tokens.push((T_EOF, 0));
    tokens
}

/// Reference parser/evaluator (wrapping arithmetic, `/0` and `%0` yield 0,
/// matching the VM's ALU semantics).
#[must_use]
pub fn reference_evaluate(tokens: &[(i32, i32)], syms: &[i32; 26]) -> Vec<i32> {
    struct P<'a> {
        toks: &'a [(i32, i32)],
        pos: usize,
        syms: &'a [i32; 26],
    }
    impl P<'_> {
        fn kind(&self) -> i32 {
            self.toks[self.pos].0
        }
        fn value(&self) -> i32 {
            self.toks[self.pos].1
        }
        fn advance(&mut self) {
            self.pos += 1;
        }
        fn expr(&mut self) -> i32 {
            let mut acc = self.term();
            loop {
                match self.kind() {
                    k if k == T_PLUS => {
                        self.advance();
                        acc = acc.wrapping_add(self.term());
                    }
                    k if k == T_MINUS => {
                        self.advance();
                        acc = acc.wrapping_sub(self.term());
                    }
                    _ => return acc,
                }
            }
        }
        fn term(&mut self) -> i32 {
            let mut acc = self.factor();
            loop {
                match self.kind() {
                    k if k == T_STAR => {
                        self.advance();
                        acc = acc.wrapping_mul(self.factor());
                    }
                    k if k == T_SLASH => {
                        self.advance();
                        let d = self.factor();
                        acc = if d == 0 { 0 } else { acc.wrapping_div(d) };
                    }
                    k if k == T_PERCENT => {
                        self.advance();
                        let d = self.factor();
                        acc = if d == 0 { 0 } else { acc.wrapping_rem(d) };
                    }
                    _ => return acc,
                }
            }
        }
        fn factor(&mut self) -> i32 {
            match self.kind() {
                k if k == T_NUM => {
                    let v = self.value();
                    self.advance();
                    v
                }
                k if k == T_IDENT => {
                    let v = self.syms[self.value() as usize];
                    self.advance();
                    v
                }
                k if k == T_MINUS => {
                    self.advance();
                    0i32.wrapping_sub(self.factor())
                }
                k if k == T_LPAREN => {
                    self.advance();
                    let v = self.expr();
                    debug_assert_eq!(self.kind(), T_RPAREN);
                    self.advance();
                    v
                }
                other => panic!("unexpected token kind {other}"),
            }
        }
    }
    let mut p = P {
        toks: tokens,
        pos: 0,
        syms,
    };
    let mut out = Vec::new();
    let mut count = 0i32;
    while p.kind() != T_EOF {
        out.push(p.expr());
        count += 1;
        if p.kind() != T_SEMI {
            break;
        }
        p.advance();
    }
    out.push(count);
    out
}

/// Builds the workload at `scale`.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let source = generate_source(statement_count(scale), 0xCC_1234);
    let syms = symbol_table();
    let char_len = source.len() as i32;
    let tbase = tok_base(char_len);

    let program = {
        let mut asm = Assembler::new();
        // ---- Tokenizer ----
        // r1=len, r2=i, r3=c, r4=token write ptr (word addr), r5/r6=temps,
        // r7=value accumulator.
        let (r_len, r_i, r_c, r_tw) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_t5, r_t6, r_val) = (Reg::new(5), Reg::new(6), Reg::new(7));

        asm.lw(r_len, Reg::ZERO, LEN_ADDR);
        asm.li(r_i, 0);
        asm.li(r_tw, tbase);

        asm.label("lex");
        asm.bge_label(r_i, r_len, "lex_eof");
        asm.li(r_t5, CHAR_BASE);
        asm.add(r_t5, r_t5, r_i);
        asm.lw(r_c, r_t5, 0);
        // space
        asm.li(r_t5, i32::from(b' '));
        asm.bne_label(r_c, r_t5, "not_space");
        asm.addi(r_i, r_i, 1);
        asm.j_label("lex");
        asm.label("not_space");
        // digit?
        asm.li(r_t5, i32::from(b'0'));
        asm.blt_label(r_c, r_t5, "not_digit");
        asm.li(r_t5, i32::from(b'9'));
        asm.bgt_label(r_c, r_t5, "not_digit");
        asm.li(r_val, 0);
        asm.label("num_loop");
        asm.muli(r_val, r_val, 10);
        asm.addi(r_t5, r_c, -(i32::from(b'0')));
        asm.add(r_val, r_val, r_t5);
        asm.addi(r_i, r_i, 1);
        asm.bge_label(r_i, r_len, "num_done");
        asm.li(r_t5, CHAR_BASE);
        asm.add(r_t5, r_t5, r_i);
        asm.lw(r_c, r_t5, 0);
        asm.li(r_t5, i32::from(b'0'));
        asm.blt_label(r_c, r_t5, "num_done");
        asm.li(r_t5, i32::from(b'9'));
        asm.bgt_label(r_c, r_t5, "num_done");
        asm.j_label("num_loop");
        asm.label("num_done");
        asm.li(r_t5, T_NUM);
        asm.sw(r_t5, r_tw, 0);
        asm.sw(r_val, r_tw, 1);
        asm.addi(r_tw, r_tw, 2);
        asm.j_label("lex");
        asm.label("not_digit");
        // letter?
        asm.li(r_t5, i32::from(b'a'));
        asm.blt_label(r_c, r_t5, "not_letter");
        asm.li(r_t5, i32::from(b'z'));
        asm.bgt_label(r_c, r_t5, "not_letter");
        asm.li(r_t5, T_IDENT);
        asm.sw(r_t5, r_tw, 0);
        asm.addi(r_t6, r_c, -(i32::from(b'a')));
        asm.sw(r_t6, r_tw, 1);
        asm.addi(r_tw, r_tw, 2);
        asm.addi(r_i, r_i, 1);
        asm.j_label("lex");
        asm.label("not_letter");
        // operator dispatch (cascaded compares — the cc1 flavour)
        for (ch, kind, label) in [
            (b'+', T_PLUS, "op_done"),
            (b'-', T_MINUS, "op_done"),
            (b'*', T_STAR, "op_done"),
            (b'/', T_SLASH, "op_done"),
            (b'(', T_LPAREN, "op_done"),
            (b')', T_RPAREN, "op_done"),
            (b';', T_SEMI, "op_done"),
            (b'%', T_PERCENT, "op_done"),
        ] {
            let skip = format!("not_{ch}");
            asm.li(r_t5, i32::from(ch));
            asm.bne_label(r_c, r_t5, &skip);
            asm.li(r_t6, kind);
            asm.j_label(label);
            asm.label(&skip);
        }
        asm.li(r_t6, T_EOF); // unknown char: treat as EOF kind
        asm.label("op_done");
        asm.sw(r_t6, r_tw, 0);
        asm.sw(Reg::ZERO, r_tw, 1);
        asm.addi(r_tw, r_tw, 2);
        asm.addi(r_i, r_i, 1);
        asm.j_label("lex");
        asm.label("lex_eof");
        asm.li(r_t5, T_EOF);
        asm.sw(r_t5, r_tw, 0);
        asm.sw(Reg::ZERO, r_tw, 1);

        // ---- Parser ----
        // Globals: r20 = token cursor (word addr of current pair),
        // r22 = kind, r23 = value; r2 = function result; r10/r11 locals.
        let (r_res, r_acc, r_acc2) = (Reg::new(2), Reg::new(10), Reg::new(11));
        let (r_cur, r_kind, r_tval, r_k) = (Reg::new(20), Reg::new(22), Reg::new(23), Reg::new(24));
        let (r_cnt, r_cmp) = (Reg::new(25), Reg::new(26));

        asm.li(r_cur, tbase);
        asm.call_label("advance");
        asm.li(r_cnt, 0);
        asm.label("stmt_loop");
        asm.beq_label(r_kind, Reg::ZERO, "finish"); // EOF
        asm.call_label("parse_expr");
        asm.out(r_res);
        asm.addi(r_cnt, r_cnt, 1);
        asm.li(r_cmp, T_SEMI);
        asm.bne_label(r_kind, r_cmp, "finish");
        asm.call_label("advance");
        asm.j_label("stmt_loop");
        asm.label("finish");
        asm.out(r_cnt);
        asm.halt();

        // advance: load (kind, value) at cursor, bump cursor. Leaf.
        asm.label("advance");
        asm.lw(r_kind, r_cur, 0);
        asm.lw(r_tval, r_cur, 1);
        asm.addi(r_cur, r_cur, 2);
        asm.ret();

        // parse_expr: term (('+'|'-') term)*
        asm.label("parse_expr");
        asm.push(Reg::RA);
        asm.call_label("parse_term");
        asm.mv(r_acc, r_res);
        asm.label("expr_loop");
        asm.li(r_cmp, T_PLUS);
        asm.beq_label(r_kind, r_cmp, "expr_plus");
        asm.li(r_cmp, T_MINUS);
        asm.beq_label(r_kind, r_cmp, "expr_minus");
        asm.mv(r_res, r_acc);
        asm.pop(Reg::RA);
        asm.ret();
        asm.label("expr_plus");
        asm.call_label("advance");
        asm.push(r_acc);
        asm.call_label("parse_term");
        asm.pop(r_acc);
        asm.add(r_acc, r_acc, r_res);
        asm.j_label("expr_loop");
        asm.label("expr_minus");
        asm.call_label("advance");
        asm.push(r_acc);
        asm.call_label("parse_term");
        asm.pop(r_acc);
        asm.sub(r_acc, r_acc, r_res);
        asm.j_label("expr_loop");

        // parse_term: factor (('*'|'/'|'%') factor)*
        asm.label("parse_term");
        asm.push(Reg::RA);
        asm.call_label("parse_factor");
        asm.mv(r_acc2, r_res);
        asm.label("term_loop");
        asm.li(r_cmp, T_STAR);
        asm.beq_label(r_kind, r_cmp, "term_mul");
        asm.li(r_cmp, T_SLASH);
        asm.beq_label(r_kind, r_cmp, "term_div");
        asm.li(r_cmp, T_PERCENT);
        asm.beq_label(r_kind, r_cmp, "term_rem");
        asm.mv(r_res, r_acc2);
        asm.pop(Reg::RA);
        asm.ret();
        asm.label("term_mul");
        asm.call_label("advance");
        asm.push(r_acc2);
        asm.call_label("parse_factor");
        asm.pop(r_acc2);
        asm.mul(r_acc2, r_acc2, r_res);
        asm.j_label("term_loop");
        asm.label("term_div");
        asm.call_label("advance");
        asm.push(r_acc2);
        asm.call_label("parse_factor");
        asm.pop(r_acc2);
        asm.div(r_acc2, r_acc2, r_res);
        asm.j_label("term_loop");
        asm.label("term_rem");
        asm.call_label("advance");
        asm.push(r_acc2);
        asm.call_label("parse_factor");
        asm.pop(r_acc2);
        asm.rem(r_acc2, r_acc2, r_res);
        asm.j_label("term_loop");

        // parse_factor: NUM | IDENT | '-' factor | '(' expr ')'
        asm.label("parse_factor");
        asm.push(Reg::RA);
        asm.li(r_cmp, T_NUM);
        asm.bne_label(r_kind, r_cmp, "f_not_num");
        asm.mv(r_res, r_tval);
        asm.call_label("advance");
        asm.pop(Reg::RA);
        asm.ret();
        asm.label("f_not_num");
        asm.li(r_cmp, T_IDENT);
        asm.bne_label(r_kind, r_cmp, "f_not_ident");
        asm.li(r_k, SYM_BASE);
        asm.add(r_k, r_k, r_tval);
        asm.lw(r_res, r_k, 0);
        asm.call_label("advance");
        asm.pop(Reg::RA);
        asm.ret();
        asm.label("f_not_ident");
        asm.li(r_cmp, T_MINUS);
        asm.bne_label(r_kind, r_cmp, "f_paren");
        asm.call_label("advance");
        asm.call_label("parse_factor");
        asm.sub(r_res, Reg::ZERO, r_res);
        asm.pop(Reg::RA);
        asm.ret();
        asm.label("f_paren");
        // Must be '(' by construction.
        asm.call_label("advance");
        asm.call_label("parse_expr");
        asm.call_label("advance"); // consume ')'
        asm.pop(Reg::RA);
        asm.ret();

        asm.assemble().expect("cc1 assembles")
    };

    let mut initial_memory = vec![0i32; CHAR_BASE as usize];
    initial_memory[LEN_ADDR as usize] = char_len;
    for (i, &s) in syms.iter().enumerate() {
        initial_memory[(SYM_BASE as usize) + i] = s;
    }
    initial_memory.extend_from_slice(&source);
    // Token region follows; 2 words per char upper-bounds it.
    assert!(tbase + 2 * char_len + 16 < (1 << 20), "memory layout fits");

    let tokens = reference_tokenize(&source);
    let expected_output = reference_evaluate(&tokens, &syms);
    Workload {
        name: "cc1".to_string(),
        program,
        initial_memory,
        expected_output,
        step_limit: 200_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chars_of(s: &str) -> Vec<i32> {
        s.bytes().map(i32::from).collect()
    }

    #[test]
    fn tokenizer_handles_all_classes() {
        let toks = reference_tokenize(&chars_of("12+ab*(3);"));
        assert_eq!(
            toks,
            vec![
                (T_NUM, 12),
                (T_PLUS, 0),
                (T_IDENT, 0),
                (T_IDENT, 1),
                (T_STAR, 0),
                (T_LPAREN, 0),
                (T_NUM, 3),
                (T_RPAREN, 0),
                (T_SEMI, 0),
                (T_EOF, 0),
            ]
        );
    }

    #[test]
    fn evaluator_precedence_and_unary() {
        let syms = [0i32; 26];
        let toks = reference_tokenize(&chars_of("2+3*4;-5+1;(2+3)*4;"));
        assert_eq!(reference_evaluate(&toks, &syms), vec![14, -4, 20, 3]);
    }

    #[test]
    fn evaluator_division_semantics() {
        let syms = [0i32; 26];
        let toks = reference_tokenize(&chars_of("7/2;7%3;5/0;5%0;"));
        assert_eq!(reference_evaluate(&toks, &syms), vec![3, 1, 0, 0, 4]);
    }

    #[test]
    fn symbols_resolve() {
        let mut syms = [0i32; 26];
        syms[2] = 10; // 'c'
        let toks = reference_tokenize(&chars_of("c*c;"));
        assert_eq!(reference_evaluate(&toks, &syms), vec![100, 1]);
    }

    #[test]
    fn generated_source_is_parseable() {
        let src = generate_source(50, 99);
        let toks = reference_tokenize(&src);
        let out = reference_evaluate(&toks, &symbol_table());
        assert_eq!(*out.last().unwrap(), 50);
    }

    #[test]
    fn assembly_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 1_000);
    }

    #[test]
    fn assembly_matches_reference_small() {
        let w = build(Scale::Small);
        w.validate().expect("runs and validates");
    }
}
