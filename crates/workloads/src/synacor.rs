//! `synacor` — a Synacor-style bytecode interpreter running *on* the toy
//! ISA: interpreter-on-interpreter.
//!
//! The five SPECint92-alikes are direct algorithm ports; this sixth
//! workload stresses DEE with the classic pattern they lack — interpreter
//! dispatch. A small register VM in the Synacor challenge's architecture
//! style (eight 15-bit virtual registers, a value/register operand
//! encoding split at 32768, arithmetic mod 32768, an operand stack,
//! `call`/`ret`) is implemented in toy-ISA assembly. Its fetch loop
//! dispatches every bytecode opcode through a register-indirect `jr` into
//! a branch ladder, and its operand decoder branches on literal-vs-register
//! encodings — both data-dependent in ways a per-PC 2-bit counter
//! struggles with, because many bytecode sites alias onto one host PC.
//!
//! The guest bytecode program computes a checksum of `gcd` values over a
//! 15-bit LCG stream (recursive Euclid via `call`/`ret`, `mod`-driven) and
//! a small bucket histogram via `rmem`/`wmem`, then dumps both.
//!
//! The pure-Rust reference is a second, independent interpreter of the
//! same bytecode ([`run_bytecode`]); the workload validates the toy-ISA
//! interpreter's output against it, so an encoding or semantics bug in
//! either shows up as a mismatch.

use std::collections::HashMap;

use dee_isa::{Assembler, Program, Reg};

use crate::{Scale, Workload};

/// Values `>= OPERAND_LIMIT` encode virtual registers `0..8`.
const OPERAND_LIMIT: i32 = 32768;
/// All guest arithmetic is mod 32768 (15-bit), as in the Synacor machine.
const MODULUS: i32 = 32768;

/// Host word address of the eight virtual registers.
const VREG_BASE: i32 = 8;
/// Host word address of guest address 0 (code and data share one space).
const CODE_BASE: i32 = 64;
/// Host word address of the guest call/operand stack (grows upward).
const VSTACK_BASE: i32 = 49152;
/// Guest address of the histogram scratch area.
const SCRATCH: i32 = 2048;

// Guest opcodes (Synacor numbering; `in` = 20 is unsupported).
const OP_HALT: i32 = 0;
const OP_SET: i32 = 1;
const OP_PUSH: i32 = 2;
const OP_POP: i32 = 3;
const OP_EQ: i32 = 4;
const OP_GT: i32 = 5;
const OP_JMP: i32 = 6;
const OP_JT: i32 = 7;
const OP_JF: i32 = 8;
const OP_ADD: i32 = 9;
const OP_MULT: i32 = 10;
const OP_MOD: i32 = 11;
const OP_AND: i32 = 12;
const OP_OR: i32 = 13;
const OP_NOT: i32 = 14;
const OP_RMEM: i32 = 15;
const OP_WMEM: i32 = 16;
const OP_CALL: i32 = 17;
const OP_RET: i32 = 18;
const OP_OUT: i32 = 19;
const OP_NOOP: i32 = 21;
/// One past the largest understood opcode.
const OP_COUNT: i32 = 22;

/// Encodes guest register `k` as an operand.
const fn vreg(k: i32) -> i32 {
    OPERAND_LIMIT + k
}

/// `gcd` pair count per scale (the guest program's outer-loop bound).
#[must_use]
pub fn pair_count(scale: Scale) -> i32 {
    match scale {
        Scale::Tiny => 25,
        Scale::Small => 170,
        Scale::Medium => 700,
        Scale::Large => 5000,
    }
}

/// A two-pass label assembler for guest bytecode: jump targets may be
/// referenced before they are defined.
struct ByteAsm {
    code: Vec<i32>,
    labels: HashMap<&'static str, i32>,
    fixups: Vec<(usize, &'static str)>,
}

impl ByteAsm {
    fn new() -> Self {
        ByteAsm {
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    fn label(&mut self, name: &'static str) {
        let here = self.code.len() as i32;
        assert!(
            self.labels.insert(name, here).is_none(),
            "guest label `{name}` defined twice"
        );
    }

    fn emit(&mut self, words: &[i32]) {
        self.code.extend_from_slice(words);
    }

    /// Emits `words` followed by a label-valued operand.
    fn emit_to(&mut self, words: &[i32], target: &'static str) {
        self.code.extend_from_slice(words);
        self.fixups.push((self.code.len(), target));
        self.code.push(0);
    }

    fn finish(mut self) -> Vec<i32> {
        for (at, name) in &self.fixups {
            let addr = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("guest label `{name}` never defined"));
            self.code[*at] = addr;
        }
        self.code
    }
}

/// Assembles the guest bytecode program for `n` LCG-driven `gcd` pairs.
///
/// Guest registers: `r0` = loop index, `r1` = bound, `r2` = checksum,
/// `r3`/`r4` = `gcd` arguments (result in `r3`), `r5` = scratch,
/// `r6` = LCG state, `r7` = histogram cell.
#[must_use]
pub fn guest_bytecode(n: i32) -> Vec<i32> {
    assert!((1..MODULUS).contains(&n), "pair count must fit 15 bits");
    let mut asm = ByteAsm::new();
    asm.emit(&[OP_NOOP]);
    asm.emit(&[OP_SET, vreg(6), 9551]); // LCG seed
    asm.emit(&[OP_SET, vreg(0), 1]);
    asm.emit(&[OP_SET, vreg(2), 0]);
    asm.emit(&[OP_SET, vreg(1), n]);

    asm.label("loop");
    asm.emit(&[OP_GT, vreg(5), vreg(0), vreg(1)]);
    asm.emit_to(&[OP_JT, vreg(5)], "finish");
    // Two fresh 15-bit LCG draws become the gcd arguments.
    asm.emit(&[OP_MULT, vreg(6), vreg(6), 5]);
    asm.emit(&[OP_ADD, vreg(6), vreg(6), 7]);
    asm.emit(&[OP_SET, vreg(3), vreg(6)]);
    asm.emit(&[OP_MULT, vreg(6), vreg(6), 5]);
    asm.emit(&[OP_ADD, vreg(6), vreg(6), 7]);
    asm.emit(&[OP_SET, vreg(4), vreg(6)]);
    asm.emit_to(&[OP_CALL], "gcd");
    asm.emit(&[OP_ADD, vreg(2), vreg(2), vreg(3)]);
    // Histogram bucket (gcd & 7) | 8 — exercises and/or — at
    // SCRATCH+8..SCRATCH+15 via rmem/wmem.
    asm.emit(&[OP_AND, vreg(5), vreg(3), 7]);
    asm.emit(&[OP_OR, vreg(5), vreg(5), 8]);
    asm.emit(&[OP_ADD, vreg(5), vreg(5), SCRATCH]);
    asm.emit(&[OP_RMEM, vreg(7), vreg(5)]);
    asm.emit(&[OP_ADD, vreg(7), vreg(7), 1]);
    asm.emit(&[OP_WMEM, vreg(5), vreg(7)]);
    asm.emit(&[OP_ADD, vreg(0), vreg(0), 1]);
    asm.emit_to(&[OP_JMP], "loop");

    // Recursive Euclid: r3 = gcd(r3, r4), r5 saved across the recursion.
    asm.label("gcd");
    asm.emit_to(&[OP_JF, vreg(4)], "gcd_done");
    asm.emit(&[OP_PUSH, vreg(5)]);
    asm.emit(&[OP_MOD, vreg(5), vreg(3), vreg(4)]);
    asm.emit(&[OP_SET, vreg(3), vreg(4)]);
    asm.emit(&[OP_SET, vreg(4), vreg(5)]);
    asm.emit(&[OP_POP, vreg(5)]);
    asm.emit_to(&[OP_CALL], "gcd");
    asm.emit(&[OP_RET]);
    asm.label("gcd_done");
    asm.emit(&[OP_RET]);

    asm.label("finish");
    asm.emit(&[OP_OUT, vreg(2)]);
    asm.emit(&[OP_NOT, vreg(5), vreg(2)]);
    asm.emit(&[OP_OUT, vreg(5)]);
    asm.emit(&[OP_SET, vreg(0), 8]);
    asm.label("dump");
    asm.emit(&[OP_EQ, vreg(5), vreg(0), 16]);
    asm.emit_to(&[OP_JT, vreg(5)], "end");
    asm.emit(&[OP_ADD, vreg(5), vreg(0), SCRATCH]);
    asm.emit(&[OP_RMEM, vreg(7), vreg(5)]);
    asm.emit(&[OP_OUT, vreg(7)]);
    asm.emit(&[OP_ADD, vreg(0), vreg(0), 1]);
    asm.emit_to(&[OP_JMP], "dump");
    asm.label("end");
    asm.emit(&[OP_OUT, vreg(1)]);
    asm.emit(&[OP_HALT]);
    asm.finish()
}

/// Reference interpreter: runs guest bytecode directly in Rust.
///
/// Guest memory is a unified 15-bit address space holding the code image
/// (zero-filled beyond it), exactly as the toy-ISA interpreter maps it at
/// `CODE_BASE`.
///
/// # Panics
///
/// Panics on malformed bytecode (unknown opcode, out-of-range operand,
/// `ret`/`pop` on an empty stack) — the guest program is built by
/// [`guest_bytecode`], so these are build errors.
#[must_use]
pub fn run_bytecode(code: &[i32]) -> Vec<i32> {
    let mut mem = vec![0i32; MODULUS as usize];
    mem[..code.len()].copy_from_slice(code);
    let mut vregs = [0i32; 8];
    let mut stack: Vec<i32> = Vec::new();
    let mut out = Vec::new();
    let mut ip = 0usize;
    let dest = |raw: i32| (raw - OPERAND_LIMIT) as usize;
    loop {
        let op = mem[ip];
        let raw1 = mem.get(ip + 1).copied().unwrap_or(0);
        let raw2 = mem.get(ip + 2).copied().unwrap_or(0);
        let raw3 = mem.get(ip + 3).copied().unwrap_or(0);
        let value = |raw: i32| -> i32 {
            if raw < OPERAND_LIMIT {
                raw
            } else {
                vregs[(raw - OPERAND_LIMIT) as usize]
            }
        };
        match op {
            OP_HALT => return out,
            OP_SET => {
                let v = value(raw2);
                vregs[dest(raw1)] = v;
                ip += 3;
            }
            OP_PUSH => {
                stack.push(value(raw1));
                ip += 2;
            }
            OP_POP => {
                vregs[dest(raw1)] = stack.pop().expect("guest pop on empty stack");
                ip += 2;
            }
            OP_EQ | OP_GT | OP_ADD | OP_MULT | OP_MOD | OP_AND | OP_OR => {
                let b = value(raw2);
                let c = value(raw3);
                vregs[dest(raw1)] = match op {
                    OP_EQ => i32::from(b == c),
                    OP_GT => i32::from(b > c),
                    OP_ADD => (b + c) % MODULUS,
                    OP_MULT => ((i64::from(b) * i64::from(c)) % i64::from(MODULUS)) as i32,
                    OP_MOD => {
                        assert!(c != 0, "guest mod by zero");
                        b % c
                    }
                    OP_AND => b & c,
                    _ => b | c,
                };
                ip += 4;
            }
            OP_NOT => {
                let v = !value(raw2) & (MODULUS - 1);
                vregs[dest(raw1)] = v;
                ip += 3;
            }
            OP_RMEM => {
                let addr = value(raw2) as usize;
                vregs[dest(raw1)] = mem[addr];
                ip += 3;
            }
            OP_WMEM => {
                let addr = value(raw1) as usize;
                let v = value(raw2);
                mem[addr] = v;
                ip += 3;
            }
            OP_JMP => ip = value(raw1) as usize,
            OP_JT | OP_JF => {
                let cond = value(raw1);
                let target = value(raw2) as usize;
                let jump = (op == OP_JT) == (cond != 0);
                ip = if jump { target } else { ip + 3 };
            }
            OP_CALL => {
                let target = value(raw1) as usize;
                stack.push((ip + 2) as i32);
                ip = target;
            }
            OP_RET => ip = stack.pop().expect("guest ret on empty stack") as usize,
            OP_OUT => {
                out.push(value(raw1));
                ip += 2;
            }
            OP_NOOP => ip += 1,
            other => panic!("guest opcode {other} at {ip} is not implemented"),
        }
    }
}

/// Emits the toy-ISA interpreter. `table` is the host address of the
/// dispatch ladder, resolved by assembling twice (the layout is
/// deterministic, so the second pass sees the same address it embeds).
fn emit_interpreter(table: u32) -> (Program, u32) {
    let mut asm = Assembler::new();
    // Host register map.
    let r_ip = Reg::new(1); // guest instruction pointer (host absolute)
    let r_vsp = Reg::new(2); // guest stack pointer (host absolute)
    let r_op = Reg::new(3); // fetched opcode
    let r_a = Reg::new(4); // operand value (rdval result)
    let r_b = Reg::new(5); // first operand of two-value ops
    let r_d = Reg::new(6); // destination vreg host address (rddst result)
    let r_t1 = Reg::new(7);
    let r_t2 = Reg::new(8);
    let r_code = Reg::new(20); // CODE_BASE
    let r_vreg = Reg::new(21); // VREG_BASE
    let r_lim = Reg::new(22); // OPERAND_LIMIT
    let r_mask = Reg::new(23); // MODULUS - 1
    let r_tbl = Reg::new(24); // dispatch-ladder base

    asm.li(r_code, CODE_BASE);
    asm.li(r_vreg, VREG_BASE);
    asm.li(r_lim, OPERAND_LIMIT);
    asm.li(r_mask, MODULUS - 1);
    asm.li(r_tbl, table as i32);
    asm.mv(r_ip, r_code);
    asm.li(r_vsp, VSTACK_BASE);

    // Fetch/dispatch. The `beq` on opcode 0 doubles as the ladder's static
    // reachability anchor: the analyzer gives `jr` only an exit edge, so
    // without it every ladder entry (and so every handler) would be
    // statically unreachable. Entry k of the ladder is an always-taken
    // branch to handler k; `jr` lands on entry `op` at run time.
    asm.label("main");
    asm.lw(r_op, r_ip, 0);
    asm.addi(r_ip, r_ip, 1);
    asm.slti(r_t2, r_op, OP_COUNT);
    asm.beq_label(r_t2, Reg::ZERO, "h_halt"); // defensive: bad opcode
    asm.add(r_t1, r_tbl, r_op);
    asm.beq_label(r_op, Reg::ZERO, "table");
    asm.jr(r_t1);

    let found_table = asm.here();
    asm.label("table");
    let handlers = [
        "h_halt", "h_set", "h_push", "h_pop", "h_eq", "h_gt", "h_jmp", "h_jt", "h_jf", "h_add",
        "h_mult", "h_mod", "h_and", "h_or", "h_not", "h_rmem", "h_wmem", "h_call", "h_ret",
        "h_out", "h_halt", // opcode 20 (`in`) is unsupported
        "main",   // noop
    ];
    for handler in handlers {
        asm.bge_label(Reg::ZERO, Reg::ZERO, handler);
    }

    // dst ← value
    asm.label("h_set");
    asm.call_label("rddst");
    asm.call_label("rdval");
    asm.sw(r_a, r_d, 0);
    asm.j_label("main");

    asm.label("h_push");
    asm.call_label("rdval");
    asm.sw(r_a, r_vsp, 0);
    asm.addi(r_vsp, r_vsp, 1);
    asm.j_label("main");

    asm.label("h_pop");
    asm.call_label("rddst");
    asm.addi(r_vsp, r_vsp, -1);
    asm.lw(r_t1, r_vsp, 0);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    // Three-operand ALU ops share a prologue shape: dst, then two values
    // (first parked in r_b while the second lands in r_a).
    let alu_prologue = |asm: &mut Assembler| {
        asm.call_label("rddst");
        asm.call_label("rdval");
        asm.mv(r_b, r_a);
        asm.call_label("rdval");
    };

    asm.label("h_eq");
    alu_prologue(&mut asm);
    asm.seq(r_t1, r_b, r_a);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_gt");
    alu_prologue(&mut asm);
    asm.slt(r_t1, r_a, r_b); // b > c  ⇔  c < b
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_jmp");
    asm.call_label("rdval");
    asm.add(r_ip, r_a, r_code);
    asm.j_label("main");

    asm.label("h_jt");
    asm.call_label("rdval");
    asm.mv(r_b, r_a);
    asm.call_label("rdval");
    asm.beq_label(r_b, Reg::ZERO, "main");
    asm.add(r_ip, r_a, r_code);
    asm.j_label("main");

    asm.label("h_jf");
    asm.call_label("rdval");
    asm.mv(r_b, r_a);
    asm.call_label("rdval");
    asm.bne_label(r_b, Reg::ZERO, "main");
    asm.add(r_ip, r_a, r_code);
    asm.j_label("main");

    asm.label("h_add");
    alu_prologue(&mut asm);
    asm.add(r_t1, r_b, r_a);
    asm.and(r_t1, r_t1, r_mask);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_mult");
    alu_prologue(&mut asm);
    asm.mul(r_t1, r_b, r_a);
    asm.and(r_t1, r_t1, r_mask);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_mod");
    alu_prologue(&mut asm);
    asm.rem(r_t1, r_b, r_a);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_and");
    alu_prologue(&mut asm);
    asm.and(r_t1, r_b, r_a);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_or");
    alu_prologue(&mut asm);
    asm.or(r_t1, r_b, r_a);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_not");
    asm.call_label("rddst");
    asm.call_label("rdval");
    asm.xor(r_t1, r_a, r_mask); // 15-bit complement
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_rmem");
    asm.call_label("rddst");
    asm.call_label("rdval");
    asm.add(r_t1, r_a, r_code);
    asm.lw(r_t1, r_t1, 0);
    asm.sw(r_t1, r_d, 0);
    asm.j_label("main");

    asm.label("h_wmem");
    asm.call_label("rdval");
    asm.mv(r_b, r_a); // guest address
    asm.call_label("rdval"); // value
    asm.add(r_t1, r_b, r_code);
    asm.sw(r_a, r_t1, 0);
    asm.j_label("main");

    asm.label("h_call");
    asm.call_label("rdval");
    asm.sub(r_t1, r_ip, r_code); // guest return address
    asm.sw(r_t1, r_vsp, 0);
    asm.addi(r_vsp, r_vsp, 1);
    asm.add(r_ip, r_a, r_code);
    asm.j_label("main");

    asm.label("h_ret");
    asm.addi(r_vsp, r_vsp, -1);
    asm.lw(r_t1, r_vsp, 0);
    asm.add(r_ip, r_t1, r_code);
    asm.j_label("main");

    asm.label("h_out");
    asm.call_label("rdval");
    asm.out(r_a);
    asm.j_label("main");

    asm.label("h_halt");
    asm.halt();

    // rdval: fetch the next operand word and decode it — a literal below
    // OPERAND_LIMIT, otherwise a virtual-register read. This single host
    // branch aliases every operand of every guest instruction.
    asm.label("rdval");
    asm.lw(r_a, r_ip, 0);
    asm.addi(r_ip, r_ip, 1);
    asm.blt_label(r_a, r_lim, "rdval_done");
    asm.sub(r_a, r_a, r_lim);
    asm.add(r_a, r_a, r_vreg);
    asm.lw(r_a, r_a, 0);
    asm.label("rdval_done");
    asm.ret();

    // rddst: fetch a destination operand (always register-encoded in
    // well-formed bytecode) as a host address.
    asm.label("rddst");
    asm.lw(r_d, r_ip, 0);
    asm.addi(r_ip, r_ip, 1);
    asm.addi(r_d, r_d, VREG_BASE - OPERAND_LIMIT);
    asm.ret();

    (asm.assemble().expect("synacor assembles"), found_table)
}

/// Assembles the interpreter, resolving the dispatch-table address by
/// running the emitter twice.
fn interpreter_program() -> Program {
    let (_, table) = emit_interpreter(0);
    let (program, found) = emit_interpreter(table);
    assert_eq!(table, found, "interpreter layout must be deterministic");
    program
}

/// Builds the workload at `scale`.
///
/// The host program is scale-independent; the guest bytecode (loaded at
/// `CODE_BASE` in the initial memory image) carries the scale.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let bytecode = guest_bytecode(pair_count(scale));
    let expected_output = run_bytecode(&bytecode);
    let mut initial_memory = vec![0i32; CODE_BASE as usize + bytecode.len()];
    initial_memory[CODE_BASE as usize..].copy_from_slice(&bytecode);
    Workload {
        name: "synacor".to_string(),
        program: interpreter_program(),
        initial_memory,
        expected_output,
        step_limit: 200_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_interpreter_runs_a_trivial_program() {
        // out 7; set r0, 40; add r0, r0, 2; out r0; halt
        let code = vec![
            OP_OUT,
            7,
            OP_SET,
            vreg(0),
            40,
            OP_ADD,
            vreg(0),
            vreg(0),
            2,
            OP_OUT,
            vreg(0),
            OP_HALT,
        ];
        assert_eq!(run_bytecode(&code), vec![7, 42]);
    }

    #[test]
    fn reference_arithmetic_is_mod_32768() {
        let code = vec![
            OP_SET,
            vreg(1),
            32000,
            OP_ADD,
            vreg(1),
            vreg(1),
            1000,
            OP_OUT,
            vreg(1),
            OP_MULT,
            vreg(1),
            vreg(1),
            3,
            OP_OUT,
            vreg(1),
            OP_NOT,
            vreg(1),
            0,
            OP_OUT,
            vreg(1),
            OP_HALT,
        ];
        assert_eq!(run_bytecode(&code), vec![232, 696, 32767]);
    }

    #[test]
    fn guest_program_checksum_is_gcd_sum_mod_32768() {
        // Independent recomputation of the guest program's outputs, without
        // any interpreter: LCG pairs, Euclid, histogram.
        let n = pair_count(Scale::Tiny);
        let mut x: i64 = 9551;
        let mut sum: i64 = 0;
        let mut hist = [0i32; 8];
        fn gcd(a: i64, b: i64) -> i64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        for _ in 0..n {
            x = (x * 5 + 7) % 32768;
            let a = x;
            x = (x * 5 + 7) % 32768;
            let b = x;
            let g = gcd(a, b);
            sum = (sum + g) % 32768;
            hist[(g & 7) as usize] += 1;
        }
        let out = run_bytecode(&guest_bytecode(n));
        assert_eq!(out[0], sum as i32);
        assert_eq!(out[1], !(sum as i32) & 32767);
        assert_eq!(&out[2..10], &hist);
        assert_eq!(out[10], n);
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn interpreter_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 10_000, "nontrivial dynamic length");
    }

    #[test]
    fn interpreter_matches_reference_small() {
        build(Scale::Small).validate().expect("runs and validates");
    }

    #[test]
    fn dispatch_is_register_indirect() {
        let w = build(Scale::Tiny);
        let static_jrs = w
            .program
            .instrs()
            .iter()
            .filter(|i| matches!(i, dee_isa::Instr::Jr { .. }))
            .count();
        assert!(static_jrs >= 3, "dispatch jr plus two subroutine rets");
        let trace = w.capture_trace().unwrap();
        let density = trace.num_cond_branches() as f64 / trace.len() as f64;
        assert!(density > 0.10, "interpreters are branchy, got {density:.3}");
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = build(Scale::Tiny).capture_trace().unwrap().len();
        let small = build(Scale::Small).capture_trace().unwrap().len();
        assert!(small > 2 * tiny);
    }
}
