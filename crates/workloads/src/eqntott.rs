//! `eqntott` stand-in: boolean-equation truth-table expansion plus a
//! comparison-dominated quicksort of ternary product terms.
//!
//! SPEC's `eqntott` converts boolean equations to truth tables; profile
//! studies attribute most of its time to `cmppt`, a digit-by-digit
//! comparison function driving a quicksort of product-term rows, and the
//! table expansion itself is a large, nearly independent iteration space —
//! the source of eqntott's famously huge oracle ILP (the paper measures an
//! oracle speedup of 2810×). This workload has both phases:
//!
//! 1. **Expansion**: evaluate a sum-of-products function on all `2^V`
//!    assignments, counting ones and folding a checksum;
//! 2. **Sort**: quicksort `M` packed ternary terms with a per-digit
//!    comparison routine called through `jal` (explicit lo/hi stack).
//!
//! Output: ones-count of the truth table, expansion checksum, sorted-array
//! checksum, and `M`.

use dee_isa::{Assembler, Reg};

use crate::{Scale, Workload, XorShift32};

/// Number of input variables for the expansion phase.
const VARS: i32 = 11;
/// Ternary digits per packed term (2 bits each).
const DIGITS: i32 = 12;

/// Memory map.
const NTERMS_ADDR: i32 = 0; // product terms (expansion)
const M_ADDR: i32 = 1; // sort array length
const PT_BASE: i32 = 16; // product terms: (mask, value) pairs

fn sort_base(nterms: i32) -> i32 {
    PT_BASE + 2 * nterms
}

fn stack_base(nterms: i32, m: i32) -> i32 {
    sort_base(nterms) + m
}

/// Phase sizes per scale: (product terms, sort array length).
#[must_use]
pub fn sizes(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (4, 48),
        Scale::Small => (8, 220),
        Scale::Medium => (12, 700),
        Scale::Large => (16, 2_400),
    }
}

/// Generates the sum-of-products terms as (mask, value) pairs over `VARS`
/// variables: term true iff `(x & mask) == value`.
#[must_use]
pub fn generate_terms(count: usize, seed: u32) -> Vec<(i32, i32)> {
    let mut rng = XorShift32::new(seed);
    let all = (1u32 << VARS) - 1;
    (0..count)
        .map(|_| {
            let mask = (rng.next_u32() & all) as i32;
            let value = (rng.next_u32() as i32) & mask;
            (mask, value)
        })
        .collect()
}

/// Generates the packed ternary terms to sort (2-bit digits, values 0..=2).
#[must_use]
pub fn generate_sort_terms(m: usize, seed: u32) -> Vec<i32> {
    let mut rng = XorShift32::new(seed);
    (0..m)
        .map(|_| {
            let mut word = 0i32;
            for d in 0..DIGITS {
                word |= (rng.below(3) as i32) << (2 * d);
            }
            word
        })
        .collect()
}

/// The eqntott `cmppt`-style comparator: least-significant ternary digit
/// first. Deliberately *not* equivalent to numeric comparison of the packed
/// words, so the comparison loop stays data-dependent.
#[must_use]
pub fn cmp_terms(a: i32, b: i32) -> std::cmp::Ordering {
    for d in 0..DIGITS {
        let fa = (a >> (2 * d)) & 3;
        let fb = (b >> (2 * d)) & 3;
        match fa.cmp(&fb) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Reference output; must match the assembly bit-for-bit.
#[must_use]
pub fn reference_output(terms: &[(i32, i32)], sort_terms: &[i32]) -> Vec<i32> {
    // Phase 1: truth-table expansion.
    let mut ones = 0i32;
    let mut checksum = 0i32;
    for x in 0..(1i32 << VARS) {
        let mut f = 0i32;
        for &(mask, value) in terms {
            if (x & mask) == value {
                f = 1;
                break;
            }
        }
        ones = ones.wrapping_add(f);
        checksum = checksum.wrapping_mul(3).wrapping_add(f) & 0x00FF_FFFF;
    }

    // Phase 2: quicksort (Lomuto, last-element pivot, explicit stack) —
    // the same algorithm as the assembly so the output order matches even
    // among equal keys.
    let mut arr = sort_terms.to_vec();
    if !arr.is_empty() {
        let mut stack = vec![(0i32, arr.len() as i32 - 1)];
        while let Some((lo, hi)) = stack.pop() {
            if lo >= hi {
                continue;
            }
            let pivot = arr[hi as usize];
            let mut store = lo;
            for j in lo..hi {
                if cmp_terms(arr[j as usize], pivot) == std::cmp::Ordering::Less {
                    arr.swap(j as usize, store as usize);
                    store += 1;
                }
            }
            arr.swap(store as usize, hi as usize);
            // Pushed in this order, the (store+1, hi) side pops first —
            // mirrored exactly in the assembly.
            stack.push((lo, store - 1));
            stack.push((store + 1, hi));
        }
    }
    let mut sort_sum = 0i32;
    for &t in &arr {
        sort_sum = sort_sum.wrapping_mul(31).wrapping_add(t) & 0x00FF_FFFF;
    }

    vec![ones, checksum, sort_sum, sort_terms.len() as i32]
}

/// Builds the workload at `scale`.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let (nterms, m) = sizes(scale);
    let terms = generate_terms(nterms, 0xE9_0101);
    let sterms = generate_sort_terms(m, 0xE9_0202);
    let nterms = nterms as i32;
    let m = m as i32;
    let sbase = sort_base(nterms);
    let stkbase = stack_base(nterms, m);

    let program = {
        let mut asm = Assembler::new();
        // ---- Phase 1: expansion ----
        let (r_nt, r_x, r_lim, r_f) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_t, r_ti, r_mask, r_val) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
        let (r_ones, r_ck, r_ptb, r_addr) = (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));

        asm.lw(r_nt, Reg::ZERO, NTERMS_ADDR);
        asm.li(r_ptb, PT_BASE);
        asm.li(r_ones, 0);
        asm.li(r_ck, 0);
        asm.li(r_lim, 1 << VARS);
        asm.li(r_x, 0);

        asm.label("exp_loop");
        asm.bge_label(r_x, r_lim, "exp_done");
        asm.li(r_f, 0);
        asm.li(r_ti, 0);
        asm.label("term_loop");
        asm.bge_label(r_ti, r_nt, "terms_done");
        asm.slli(r_addr, r_ti, 1);
        asm.add(r_addr, r_addr, r_ptb);
        asm.lw(r_mask, r_addr, 0);
        asm.lw(r_val, r_addr, 1);
        asm.and(r_t, r_x, r_mask);
        asm.bne_label(r_t, r_val, "term_next");
        asm.li(r_f, 1);
        asm.j_label("terms_done"); // first match wins (OR short-circuit)
        asm.label("term_next");
        asm.addi(r_ti, r_ti, 1);
        asm.j_label("term_loop");
        asm.label("terms_done");
        asm.add(r_ones, r_ones, r_f);
        asm.muli(r_ck, r_ck, 3);
        asm.add(r_ck, r_ck, r_f);
        asm.andi(r_ck, r_ck, 0x00FF_FFFF);
        asm.addi(r_x, r_x, 1);
        asm.j_label("exp_loop");

        asm.label("exp_done");
        asm.out(r_ones);
        asm.out(r_ck);

        // ---- Phase 2: quicksort ----
        let (r_m, r_ab, r_sp2, r_lo) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_hi, r_piv, r_store, r_j) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
        let (r_t1, r_t2, r_ca, r_cb) = (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));
        let (r_cr, r_d, r_fa, r_fb) = (Reg::new(13), Reg::new(14), Reg::new(15), Reg::new(16));

        asm.lw(r_m, Reg::ZERO, M_ADDR);
        asm.li(r_ab, sbase);
        asm.li(r_sp2, stkbase);
        // push (0, m-1)
        asm.sw(Reg::ZERO, r_sp2, 0);
        asm.addi(r_t1, r_m, -1);
        asm.sw(r_t1, r_sp2, 1);
        asm.addi(r_sp2, r_sp2, 2);

        asm.label("qs_loop");
        asm.li(r_t1, stkbase);
        asm.ble_label(r_sp2, r_t1, "qs_done"); // stack empty
        asm.addi(r_sp2, r_sp2, -2);
        asm.lw(r_lo, r_sp2, 0);
        asm.lw(r_hi, r_sp2, 1);
        asm.bge_label(r_lo, r_hi, "qs_loop");

        // pivot = arr[hi]
        asm.add(r_t1, r_ab, r_hi);
        asm.lw(r_piv, r_t1, 0);
        asm.mv(r_store, r_lo);
        asm.mv(r_j, r_lo);

        asm.label("part_loop");
        asm.bge_label(r_j, r_hi, "part_done");
        asm.add(r_t1, r_ab, r_j);
        asm.lw(r_ca, r_t1, 0);
        asm.mv(r_cb, r_piv);
        asm.call_label("cmppt");
        asm.bge_label(r_cr, Reg::ZERO, "no_swap"); // only Less swaps
        asm.add(r_t1, r_ab, r_j);
        asm.add(r_t2, r_ab, r_store);
        asm.lw(r_fa, r_t1, 0);
        asm.lw(r_fb, r_t2, 0);
        asm.sw(r_fb, r_t1, 0);
        asm.sw(r_fa, r_t2, 0);
        asm.addi(r_store, r_store, 1);
        asm.label("no_swap");
        asm.addi(r_j, r_j, 1);
        asm.j_label("part_loop");

        asm.label("part_done");
        // swap arr[store], arr[hi]
        asm.add(r_t1, r_ab, r_store);
        asm.add(r_t2, r_ab, r_hi);
        asm.lw(r_fa, r_t1, 0);
        asm.lw(r_fb, r_t2, 0);
        asm.sw(r_fb, r_t1, 0);
        asm.sw(r_fa, r_t2, 0);
        // push (lo, store-1) then (store+1, hi)
        asm.sw(r_lo, r_sp2, 0);
        asm.addi(r_t1, r_store, -1);
        asm.sw(r_t1, r_sp2, 1);
        asm.addi(r_sp2, r_sp2, 2);
        asm.addi(r_t1, r_store, 1);
        asm.sw(r_t1, r_sp2, 0);
        asm.sw(r_hi, r_sp2, 1);
        asm.addi(r_sp2, r_sp2, 2);
        asm.j_label("qs_loop");

        // cmppt(a=r_ca, b=r_cb) -> r_cr in {-1, 0, 1}; LSD first.
        // Clobbers r_d, r_fa, r_fb, r_t2.
        asm.label("cmppt");
        asm.li(r_d, 0);
        asm.label("cmp_loop");
        asm.li(r_t2, DIGITS);
        asm.bge_label(r_d, r_t2, "cmp_eq");
        asm.slli(r_t2, r_d, 1);
        asm.srl(r_fa, r_ca, r_t2);
        asm.andi(r_fa, r_fa, 3);
        asm.srl(r_fb, r_cb, r_t2);
        asm.andi(r_fb, r_fb, 3);
        asm.blt_label(r_fa, r_fb, "cmp_lt");
        asm.bgt_label(r_fa, r_fb, "cmp_gt");
        asm.addi(r_d, r_d, 1);
        asm.j_label("cmp_loop");
        asm.label("cmp_lt");
        asm.li(r_cr, -1);
        asm.ret();
        asm.label("cmp_gt");
        asm.li(r_cr, 1);
        asm.ret();
        asm.label("cmp_eq");
        asm.li(r_cr, 0);
        asm.ret();

        // ---- Epilogue: checksum of sorted array ----
        asm.label("qs_done");
        asm.li(r_t1, 0); // checksum
        asm.li(r_j, 0);
        asm.label("sum_loop");
        asm.bge_label(r_j, r_m, "sum_done");
        asm.add(r_t2, r_ab, r_j);
        asm.lw(r_fa, r_t2, 0);
        asm.muli(r_t1, r_t1, 31);
        asm.add(r_t1, r_t1, r_fa);
        asm.andi(r_t1, r_t1, 0x00FF_FFFF);
        asm.addi(r_j, r_j, 1);
        asm.j_label("sum_loop");
        asm.label("sum_done");
        asm.out(r_t1);
        asm.out(r_m);
        asm.halt();
        asm.assemble().expect("eqntott assembles")
    };

    let mut initial_memory = vec![0i32; PT_BASE as usize];
    initial_memory[NTERMS_ADDR as usize] = nterms;
    initial_memory[M_ADDR as usize] = m;
    for &(mask, value) in &terms {
        initial_memory.push(mask);
        initial_memory.push(value);
    }
    initial_memory.extend_from_slice(&sterms);
    assert_eq!(initial_memory.len() as i32, sbase + m);
    assert!(stkbase + 4 * m + 16 < (1 << 20), "memory layout fits");

    let expected_output = reference_output(&terms, &sterms);
    Workload {
        name: "eqntott".to_string(),
        program,
        initial_memory,
        expected_output,
        step_limit: 400_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn comparator_is_lsd_first_not_numeric() {
        // a: digit0 = 2 (packed 0b0010 = 2); b: digit0 = 1, digit1 = 1
        // (packed 0b0101 = 5). LSD-first: 2 > 1 => Greater, though a < b
        // numerically.
        assert_eq!(cmp_terms(2, 5), Ordering::Greater);
        assert_eq!(cmp_terms(5, 2), Ordering::Less);
        assert_eq!(cmp_terms(7, 7), Ordering::Equal);
    }

    #[test]
    fn comparator_is_total_order() {
        let terms = generate_sort_terms(40, 9);
        for &a in &terms {
            for &b in &terms {
                match cmp_terms(a, b) {
                    Ordering::Less => assert_eq!(cmp_terms(b, a), Ordering::Greater),
                    Ordering::Greater => assert_eq!(cmp_terms(b, a), Ordering::Less),
                    Ordering::Equal => assert_eq!(cmp_terms(b, a), Ordering::Equal),
                }
            }
        }
    }

    #[test]
    fn reference_sort_agrees_with_stdlib_sort() {
        let sterms = generate_sort_terms(100, 11);
        let terms = generate_terms(4, 12);
        let mut expect = sterms.clone();
        expect.sort_by(|&a, &b| cmp_terms(a, b));
        let mut sum = 0i32;
        for &t in &expect {
            sum = sum.wrapping_mul(31).wrapping_add(t) & 0x00FF_FFFF;
        }
        let out = reference_output(&terms, &sterms);
        assert_eq!(out[2], sum);
    }

    #[test]
    fn expansion_counts_plausible() {
        let terms = generate_terms(8, 5);
        let out = reference_output(&terms, &[]);
        let total = 1i32 << VARS;
        assert!(out[0] > 0 && out[0] <= total, "ones in range: {}", out[0]);
    }

    #[test]
    fn assembly_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 10_000);
    }

    #[test]
    fn empty_sort_is_handled_by_reference() {
        let out = reference_output(&generate_terms(2, 3), &[]);
        assert_eq!(out[2], 0);
        assert_eq!(out[3], 0);
    }
}
