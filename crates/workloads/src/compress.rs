//! `compress` stand-in: LZW compression with an open-addressing hash table.
//!
//! This is the actual algorithm of SPEC's `compress` (Welch's LZW with a
//! hashed dictionary): the inner loop hashes a (prefix-code, next-char)
//! pair, probes a table, and either extends the current match or emits a
//! code and inserts a new dictionary entry. The probe loop's branches are
//! data-dependent and the emitted-code stream exercises long dependence
//! chains through the hash table.
//!
//! Input: synthetic English-like text from a small word vocabulary
//! (repetition is what gives LZW its dictionary hits). Output: the LZW code
//! stream followed by the code count.

use dee_isa::{Assembler, Reg};

use crate::{Scale, Workload, XorShift32};

/// Hash table size (power of two) and dictionary capacity.
const HSIZE: i32 = 4096;
const MAX_CODE: i32 = 4096;
/// First dictionary code (single bytes occupy 0..256).
const FIRST_CODE: i32 = 256;

/// Memory map.
const INPUT_LEN_ADDR: i32 = 0;
const INPUT_BASE: i32 = 16;
/// keys[] base follows the input region, computed per-build.
fn keys_base(input_len: i32) -> i32 {
    INPUT_BASE + input_len
}

/// Golden-ratio multiplicative hash, identical in Rust and assembly.
fn hash(key: i32) -> i32 {
    let h = (key as u32).wrapping_mul(2_654_435_761);
    ((h >> 16) & (HSIZE as u32 - 1)) as i32
}

/// Text length in characters per scale.
#[must_use]
pub fn text_len(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 400,
        Scale::Small => 3_000,
        Scale::Medium => 14_000,
        Scale::Large => 60_000,
    }
}

/// Generates the synthetic input text: words drawn from a Zipf-ish
/// vocabulary, separated by spaces, with occasional punctuation.
#[must_use]
pub fn generate_text(len: usize, seed: u32) -> Vec<i32> {
    const VOCAB: &[&str] = &[
        "the",
        "of",
        "and",
        "to",
        "in",
        "branch",
        "path",
        "eager",
        "tree",
        "execution",
        "speculative",
        "resource",
        "probability",
        "window",
        "instruction",
        "parallel",
    ];
    let mut rng = XorShift32::new(seed);
    let mut text = Vec::with_capacity(len);
    while text.len() < len {
        // Zipf-ish: prefer early vocabulary entries.
        let pick = (rng.below(16).min(rng.below(16))) as usize;
        for byte in VOCAB[pick].bytes() {
            text.push(i32::from(byte));
        }
        text.push(if rng.below(12) == 0 {
            i32::from(b'.')
        } else {
            i32::from(b' ')
        });
    }
    text.truncate(len);
    text
}

/// Reference LZW compressor; must match the assembly bit-for-bit.
#[must_use]
pub fn reference_compress(input: &[i32]) -> Vec<i32> {
    assert!(!input.is_empty(), "input must be non-empty");
    let hsize = HSIZE as usize;
    let mut keys = vec![0i32; hsize];
    let mut codes = vec![0i32; hsize]; // 0 = empty slot
    let mut next_code = FIRST_CODE;
    let mut out = Vec::new();
    let mut prefix = input[0];
    for &c in &input[1..] {
        let key = (prefix << 8) | c;
        let mut h = hash(key) as usize;
        loop {
            if codes[h] == 0 {
                out.push(prefix);
                if next_code < MAX_CODE {
                    keys[h] = key;
                    codes[h] = next_code;
                    next_code += 1;
                }
                prefix = c;
                break;
            }
            if keys[h] == key {
                prefix = codes[h];
                break;
            }
            h = (h + 1) & (hsize - 1);
        }
    }
    out.push(prefix);
    let n = out.len() as i32;
    out.push(n);
    out
}

/// Builds the workload at `scale`.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let text = generate_text(text_len(scale), 0xC0_FFEE);
    let n = text.len() as i32;
    let kbase = keys_base(n);
    let cbase = kbase + HSIZE;

    let program = {
        let mut asm = Assembler::new();
        let (r_n, r_i, r_prefix, r_c) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4));
        let (r_key, r_h, r_t, r_next) = (Reg::new(5), Reg::new(6), Reg::new(7), Reg::new(8));
        let (r_mask, r_kbase, r_cbase, r_inbase) =
            (Reg::new(9), Reg::new(10), Reg::new(11), Reg::new(12));
        let (r_addr, r_code, r_emit) = (Reg::new(13), Reg::new(14), Reg::new(15));

        asm.lw(r_n, Reg::ZERO, INPUT_LEN_ADDR);
        asm.li(r_mask, HSIZE - 1);
        asm.li(r_kbase, kbase);
        asm.li(r_cbase, cbase);
        asm.li(r_inbase, INPUT_BASE);
        asm.li(r_next, FIRST_CODE);
        asm.li(r_emit, 0); // emitted-code count
        asm.lw(r_prefix, r_inbase, 0); // prefix = input[0]
        asm.li(r_i, 1);

        asm.label("main");
        asm.bge_label(r_i, r_n, "flush");
        asm.add(r_addr, r_inbase, r_i);
        asm.lw(r_c, r_addr, 0); // c = input[i]
                                // key = prefix << 8 | c
        asm.slli(r_key, r_prefix, 8);
        asm.or(r_key, r_key, r_c);
        // h = (key * 2654435761) >> 16 & mask  (u32 wrap)
        asm.li(r_t, -1_640_531_535i32); // 2654435761 as i32
        asm.mul(r_h, r_key, r_t);
        asm.srli(r_h, r_h, 16);
        asm.and(r_h, r_h, r_mask);

        asm.label("probe");
        asm.add(r_addr, r_cbase, r_h);
        asm.lw(r_code, r_addr, 0); // codes[h]
        asm.beq_label(r_code, Reg::ZERO, "miss");
        asm.add(r_addr, r_kbase, r_h);
        asm.lw(r_t, r_addr, 0); // keys[h]
        asm.beq_label(r_t, r_key, "hit");
        asm.addi(r_h, r_h, 1);
        asm.and(r_h, r_h, r_mask);
        asm.j_label("probe");

        asm.label("hit");
        asm.mv(r_prefix, r_code);
        asm.addi(r_i, r_i, 1);
        asm.j_label("main");

        asm.label("miss");
        asm.out(r_prefix);
        asm.addi(r_emit, r_emit, 1);
        asm.li(r_t, MAX_CODE);
        asm.bge_label(r_next, r_t, "no_insert");
        asm.add(r_addr, r_kbase, r_h);
        asm.sw(r_key, r_addr, 0);
        asm.add(r_addr, r_cbase, r_h);
        asm.sw(r_next, r_addr, 0);
        asm.addi(r_next, r_next, 1);
        asm.label("no_insert");
        asm.mv(r_prefix, r_c);
        asm.addi(r_i, r_i, 1);
        asm.j_label("main");

        asm.label("flush");
        asm.out(r_prefix);
        asm.addi(r_emit, r_emit, 1);
        asm.out(r_emit);
        asm.halt();
        asm.assemble().expect("compress assembles")
    };

    let mut initial_memory = vec![0i32; INPUT_BASE as usize];
    initial_memory[INPUT_LEN_ADDR as usize] = n;
    initial_memory.extend_from_slice(&text);
    // keys/codes regions start zeroed (fresh machine memory is zero), so no
    // image is needed for them — but assert the layout stays in bounds.
    assert!(cbase + HSIZE < (1 << 20), "memory layout fits");

    let expected_output = reference_compress(&text);
    Workload {
        name: "compress".to_string(),
        program,
        initial_memory,
        expected_output,
        step_limit: 200_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_in_range() {
        for key in [0, 1, 255, 65_535, 1 << 20, i32::MAX] {
            let h = hash(key);
            assert!((0..HSIZE).contains(&h));
        }
    }

    #[test]
    fn reference_round_trip_decompresses() {
        // Decode the reference LZW stream and confirm it reproduces the
        // input (validates the reference itself, not just consistency).
        let text = generate_text(600, 7);
        let mut stream = reference_compress(&text);
        let count = stream.pop().unwrap();
        assert_eq!(count as usize, stream.len());

        // Standard LZW decoder.
        let mut dict: Vec<Vec<i32>> = (0..FIRST_CODE).map(|b| vec![b]).collect();
        let mut decoded: Vec<i32> = Vec::new();
        let mut prev: Option<Vec<i32>> = None;
        for &code in &stream {
            let entry = if (code as usize) < dict.len() {
                dict[code as usize].clone()
            } else {
                // KwKwK case.
                let p = prev.clone().expect("kwkwk after first");
                let mut e = p.clone();
                e.push(p[0]);
                e
            };
            if let Some(p) = prev {
                if dict.len() < MAX_CODE as usize {
                    let mut novel = p;
                    novel.push(entry[0]);
                    dict.push(novel);
                }
            }
            decoded.extend_from_slice(&entry);
            prev = Some(entry);
        }
        assert_eq!(decoded, text);
    }

    #[test]
    fn compression_actually_compresses() {
        let text = generate_text(2_000, 3);
        let out = reference_compress(&text);
        assert!(out.len() < text.len() * 3 / 4, "repetitive text compresses");
    }

    #[test]
    fn assembly_matches_reference_tiny() {
        let w = build(Scale::Tiny);
        let trace = w.validate().expect("runs and validates");
        assert!(trace.len() > 3_000);
    }

    #[test]
    fn text_generation_is_deterministic() {
        assert_eq!(generate_text(100, 5), generate_text(100, 5));
        assert_ne!(generate_text(100, 5), generate_text(100, 6));
    }

    #[test]
    fn single_char_input_emits_one_code() {
        let out = reference_compress(&[65]);
        assert_eq!(out, vec![65, 1]);
    }
}
