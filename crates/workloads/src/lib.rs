//! SPECint92-like workloads, hand-written in the [`dee-isa`](dee_isa) toy
//! ISA.
//!
//! The paper evaluates on five of the six SPECint92 integer benchmarks
//! (`cc1`, `compress`, `eqntott`, `espresso`, `xlisp`; `sc` was dropped as
//! too predictable). The original binaries and inputs are not available
//! here, so this crate implements the *same algorithm families* directly in
//! the toy ISA — what the trace-driven evaluation actually consumes is the
//! dynamic dependence/branch structure, not the exact SPEC code:
//!
//! * [`cc1`] — expression tokenizer + recursive-descent parser + constant
//!   folder (compiler front-end character: unpredictable token dispatch);
//! * [`compress`] — LZW compression with an open-addressing hash table
//!   (the actual `compress` algorithm);
//! * [`eqntott`] — boolean-equation truth-table expansion plus a
//!   comparison-dominated quicksort of ternary terms (eqntott's hot kernel
//!   is exactly such a sort; the expansion phase is the embarrassingly
//!   parallel part that gives eqntott its enormous oracle ILP);
//! * [`espresso`] — Quine–McCluskey-style cube merging and containment
//!   elimination (two-level logic minimization on bit-vector cubes);
//! * [`xlisp`] — N-queens backtracking search (the paper's xlisp input is
//!   `li-input.lsp`, 9 queens), with an explicit stack.
//!
//! The sixth SPECint92 benchmark, [`sc`], is also implemented but kept out
//! of [`all_workloads`] — the paper excluded it "as it was significantly
//! more predictable than the others", a rationale this crate reproduces as
//! a test.
//!
//! Every workload carries a pure-Rust reference implementation; tests
//! assert the assembly produces bit-identical output on the VM. Inputs are
//! generated deterministically from fixed seeds.
//!
//! # Example
//!
//! ```
//! use dee_workloads::{all_workloads, Scale};
//!
//! let suite = all_workloads(Scale::Tiny);
//! assert_eq!(suite.len(), 5);
//! for w in &suite {
//!     let trace = w.capture_trace().expect("workload runs");
//!     assert_eq!(trace.output(), w.expected_output.as_slice());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc1;
pub mod compress;
pub mod eqntott;
pub mod espresso;
pub mod registry;
pub mod sc;
pub mod synacor;
pub mod xlisp;

pub use registry::{WorkloadRegistry, PAPER_WORKLOADS};

use dee_isa::Program;
use dee_vm::{trace_program, trace_program_with, Engine, Trace, VmError};

/// Input-size scale for a workload.
///
/// `Tiny` is for unit tests (thousands of dynamic instructions), `Small`
/// for quick experiments, `Medium` for the headline figures (hundreds of
/// thousands of dynamic instructions), `Large` for long runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// Unit-test sized (≈10³–10⁴ dynamic instructions).
    Tiny,
    /// Quick-experiment sized (≈10⁴–10⁵).
    Small,
    /// Figure-quality sized (≈10⁵–10⁶).
    Medium,
    /// Long runs (≈10⁶–10⁷).
    Large,
}

impl Scale {
    /// All scales, smallest first.
    #[must_use]
    pub fn all() -> [Scale; 4] {
        [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large]
    }
}

/// A ready-to-run benchmark: program, input image, and the reference
/// output it must produce.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name matching the paper ("cc1", "compress", ...), or a
    /// generated identifier for synthetic programs (see `dee-gen`).
    pub name: String,
    /// The assembled program.
    pub program: Program,
    /// Input data image, loaded at word 0.
    pub initial_memory: Vec<i32>,
    /// Output the program must produce (from the Rust reference
    /// implementation).
    pub expected_output: Vec<i32>,
    /// A generous dynamic-instruction budget for this scale.
    pub step_limit: u64,
}

impl Workload {
    /// Runs the workload on the VM and captures its dynamic trace.
    ///
    /// # Errors
    ///
    /// Propagates any VM fault or step-limit overrun; a correct workload
    /// build never errors.
    pub fn capture_trace(&self) -> Result<Trace, VmError> {
        trace_program(&self.program, &self.initial_memory, self.step_limit)
    }

    /// [`capture_trace`](Self::capture_trace) through the selected engine;
    /// both engines produce byte-identical traces.
    ///
    /// # Errors
    ///
    /// Same contract as [`capture_trace`](Self::capture_trace).
    pub fn capture_trace_with(&self, engine: Engine) -> Result<Trace, VmError> {
        trace_program_with(engine, &self.program, &self.initial_memory, self.step_limit)
    }

    /// Runs the workload and validates its output against the reference.
    ///
    /// # Errors
    ///
    /// Returns the VM error, or a validation message on output mismatch.
    pub fn validate(&self) -> Result<Trace, String> {
        self.validate_with(Engine::Interp)
    }

    /// [`validate`](Self::validate) through the selected engine.
    ///
    /// # Errors
    ///
    /// Same contract as [`validate`](Self::validate).
    pub fn validate_with(&self, engine: Engine) -> Result<Trace, String> {
        let trace = self.capture_trace_with(engine).map_err(|e| e.to_string())?;
        if trace.output() != self.expected_output.as_slice() {
            return Err(format!(
                "{}: output mismatch ({} words produced, {} expected)",
                self.name,
                trace.output().len(),
                self.expected_output.len()
            ));
        }
        Ok(trace)
    }
}

/// Builds the paper's five workloads at the given scale, in the paper's
/// order. The full builtin set (including the post-paper additions) lives
/// in [`WorkloadRegistry::builtin`].
#[must_use]
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    WorkloadRegistry::builtin()
        .build_many(&PAPER_WORKLOADS, scale)
        .expect("paper workloads are registered")
}

/// A tiny deterministic PRNG (xorshift32) used by the input generators, so
/// that workload inputs are reproducible without external crates in the
/// hot path. Seeds must be nonzero.
#[derive(Clone, Debug)]
pub(crate) struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    pub(crate) fn new(seed: u32) -> Self {
        XorShift32 {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform in `0..bound` (bound > 0).
    pub(crate) fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_present_and_named() {
        let suite = all_workloads(Scale::Tiny);
        let names: Vec<&str> = suite.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["cc1", "compress", "eqntott", "espresso", "xlisp"]
        );
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero_seeded() {
        let mut a = XorShift32::new(42);
        let mut b = XorShift32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut z = XorShift32::new(0);
        assert_ne!(z.next_u32(), 0, "zero seed remapped");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = XorShift32::new(7);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
