use std::fmt;

use crate::Reg;

/// An arithmetic/logic operation, used by both register and immediate forms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division; division by zero yields 0 (the VM does not trap).
    Div,
    /// Signed remainder; remainder by zero yields 0.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Logical shift left (shift amount taken modulo 32).
    Sll,
    /// Logical shift right (shift amount taken modulo 32).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Sra,
    /// Set if less than (signed): `rd = (rs < rt) as i32`.
    Slt,
    /// Set if less than (unsigned comparison of the bit patterns).
    Sltu,
    /// Set if equal: `rd = (rs == rt) as i32`.
    Seq,
}

impl AluOp {
    /// Applies the operation to two `i32` operands with MIPS-like semantics.
    ///
    /// Division and remainder by zero produce 0 rather than trapping, so that
    /// every instruction has unit latency and no exceptional control flow, as
    /// assumed by the paper's evaluation.
    #[must_use]
    pub fn apply(self, a: i32, b: i32) -> i32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
            AluOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
            AluOp::Sra => a >> (b as u32 & 31),
            AluOp::Slt => i32::from(a < b),
            AluOp::Sltu => i32::from((a as u32) < (b as u32)),
            AluOp::Seq => i32::from(a == b),
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
        };
        f.write_str(s)
    }
}

/// The comparison performed by a conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less than.
    Lt,
    /// Branch if signed greater than or equal.
    Ge,
    /// Branch if signed less than or equal.
    Le,
    /// Branch if signed greater than.
    Gt,
}

impl BranchCond {
    /// Evaluates the condition on two signed operands.
    #[must_use]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Le => a <= b,
            BranchCond::Gt => a > b,
        }
    }

    /// The condition with operands swapped having the same truth value.
    #[must_use]
    pub fn swapped(self) -> Self {
        match self {
            BranchCond::Eq => BranchCond::Eq,
            BranchCond::Ne => BranchCond::Ne,
            BranchCond::Lt => BranchCond::Gt,
            BranchCond::Ge => BranchCond::Le,
            BranchCond::Le => BranchCond::Ge,
            BranchCond::Gt => BranchCond::Lt,
        }
    }

    /// The negated condition.
    #[must_use]
    pub fn negated(self) -> Self {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Le => BranchCond::Gt,
            BranchCond::Gt => BranchCond::Le,
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
        };
        f.write_str(s)
    }
}

/// A single machine instruction with resolved (absolute) branch targets.
///
/// Instruction addresses are indices into the program's instruction array;
/// data memory is word-addressed and disjoint from instruction memory
/// (a Harvard arrangement, which is all the trace-driven evaluation needs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// Three-register ALU operation: `rd = op(rs, rt)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// Load immediate: `rd = imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Load word: `rd = mem[rs(base) + offset]` (word addressing).
    Lw {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Store word: `mem[base + offset] = rs`.
    Sw {
        /// Source (value) register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Conditional branch: if `cond(rs, rt)` then `pc = target` else fall
    /// through. The only speculated (predicted) instruction kind.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Call: `ra = pc + 1; pc = target`.
    Jal {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Indirect jump (conventionally a return): `pc = rs`.
    Jr {
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Emits the value of `rs` to the program's output stream.
    Out {
        /// Register whose value is emitted.
        rs: Reg,
    },
    /// Stops execution.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// The register written by this instruction, if any.
    ///
    /// Writes to the hardwired-zero register are reported as `None` since
    /// they are architecturally discarded.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        let d = match *self {
            Instr::Alu { rd, .. } | Instr::AluImm { rd, .. } | Instr::Li { rd, .. } => Some(rd),
            Instr::Lw { rd, .. } => Some(rd),
            Instr::Jal { .. } => Some(Reg::RA),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// The registers read by this instruction (at most two).
    ///
    /// Reads of the hardwired-zero register are omitted: they can never be
    /// flow-dependent on anything.
    #[must_use]
    pub fn uses(&self) -> [Option<Reg>; 2] {
        let raw = match *self {
            Instr::Alu { rs, rt, .. } => [Some(rs), Some(rt)],
            Instr::AluImm { rs, .. } => [Some(rs), None],
            Instr::Li { .. } => [None, None],
            Instr::Lw { base, .. } => [Some(base), None],
            Instr::Sw { rs, base, .. } => [Some(rs), Some(base)],
            Instr::Branch { rs, rt, .. } => [Some(rs), Some(rt)],
            Instr::Jump { .. } | Instr::Jal { .. } => [None, None],
            Instr::Jr { rs } => [Some(rs), None],
            Instr::Out { rs } => [Some(rs), None],
            Instr::Halt | Instr::Nop => [None, None],
        };
        [
            raw[0].filter(|r| !r.is_zero()),
            raw[1].filter(|r| !r.is_zero()),
        ]
    }

    /// Whether this is a conditional branch (the only predicted kind).
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether this instruction can change control flow at all.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Halt
        )
    }

    /// Whether this instruction accesses data memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Lw { .. } | Instr::Sw { .. })
    }

    /// The static branch/jump target, when one exists.
    #[must_use]
    pub fn static_target(&self) -> Option<u32> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Jal { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Whether this is a backward conditional branch at address `pc`
    /// (the classic loop-closing shape).
    #[must_use]
    pub fn is_backward_branch(&self, pc: u32) -> bool {
        matches!(*self, Instr::Branch { target, .. } if target <= pc)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Instr::AluImm { op, rd, rs, imm } => write!(f, "{op}i {rd}, {rs}, {imm}"),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Lw { rd, base, offset } => write!(f, "lw {rd}, {offset}({base})"),
            Instr::Sw { rs, base, offset } => write!(f, "sw {rs}, {offset}({base})"),
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "{cond} {rs}, {rt}, @{target}"),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Jal { target } => write!(f, "jal @{target}"),
            Instr::Jr { rs } => write!(f, "jr {rs}"),
            Instr::Out { rs } => write!(f, "out {rs}"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_op_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Add.apply(i32::MAX, 1), i32::MIN);
        assert_eq!(AluOp::Sub.apply(2, 3), -1);
        assert_eq!(AluOp::Mul.apply(-4, 3), -12);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), 0);
        assert_eq!(AluOp::Rem.apply(7, 3), 1);
        assert_eq!(AluOp::Rem.apply(7, 0), 0);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Nor.apply(0, 0), -1);
        assert_eq!(AluOp::Sll.apply(1, 4), 16);
        assert_eq!(AluOp::Srl.apply(-1, 28), 0xF);
        assert_eq!(AluOp::Sra.apply(-16, 2), -4);
        assert_eq!(AluOp::Slt.apply(-1, 0), 1);
        assert_eq!(AluOp::Sltu.apply(-1, 0), 0);
        assert_eq!(AluOp::Seq.apply(3, 3), 1);
    }

    #[test]
    fn shift_amount_masked_to_five_bits() {
        assert_eq!(AluOp::Sll.apply(1, 33), 2);
        assert_eq!(AluOp::Srl.apply(4, 34), 1);
    }

    #[test]
    fn div_overflow_does_not_panic() {
        assert_eq!(AluOp::Div.apply(i32::MIN, -1), i32::MIN);
        assert_eq!(AluOp::Rem.apply(i32::MIN, -1), 0);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(1, 1));
        assert!(BranchCond::Ne.eval(1, 2));
        assert!(BranchCond::Lt.eval(-5, 0));
        assert!(BranchCond::Ge.eval(0, 0));
        assert!(BranchCond::Le.eval(-1, -1));
        assert!(BranchCond::Gt.eval(2, 1));
        assert!(!BranchCond::Gt.eval(1, 1));
    }

    #[test]
    fn branch_cond_negation_is_involutive_and_exact() {
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Le,
            BranchCond::Gt,
        ] {
            assert_eq!(cond.negated().negated(), cond);
            for a in [-2, -1, 0, 1, 2] {
                for b in [-2, -1, 0, 1, 2] {
                    assert_eq!(cond.eval(a, b), !cond.negated().eval(a, b));
                    assert_eq!(cond.eval(a, b), cond.swapped().eval(b, a));
                }
            }
        }
    }

    #[test]
    fn defs_and_uses() {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: r1,
            rs: r2,
            rt: r3,
        };
        assert_eq!(add.def(), Some(r1));
        assert_eq!(add.uses(), [Some(r2), Some(r3)]);

        let sw = Instr::Sw {
            rs: r1,
            base: r2,
            offset: 4,
        };
        assert_eq!(sw.def(), None);
        assert_eq!(sw.uses(), [Some(r1), Some(r2)]);

        let jal = Instr::Jal { target: 10 };
        assert_eq!(jal.def(), Some(Reg::RA));
        assert_eq!(jal.uses(), [None, None]);
    }

    #[test]
    fn zero_register_filtered_from_def_use() {
        let wr0 = Instr::Li {
            rd: Reg::ZERO,
            imm: 7,
        };
        assert_eq!(wr0.def(), None);
        let use0 = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs: Reg::ZERO,
            rt: Reg::new(2),
        };
        assert_eq!(use0.uses(), [None, Some(Reg::new(2))]);
    }

    #[test]
    fn classification() {
        let b = Instr::Branch {
            cond: BranchCond::Eq,
            rs: Reg::new(1),
            rt: Reg::ZERO,
            target: 3,
        };
        assert!(b.is_cond_branch());
        assert!(b.is_control());
        assert!(!b.is_mem());
        assert_eq!(b.static_target(), Some(3));
        assert!(b.is_backward_branch(5));
        assert!(!b.is_backward_branch(2));

        assert!(Instr::Halt.is_control());
        assert!(!Instr::Nop.is_control());
        assert!(Instr::Lw {
            rd: Reg::new(1),
            base: Reg::SP,
            offset: 0
        }
        .is_mem());
    }

    #[test]
    fn display_round_trippable_shapes() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs: Reg::new(2),
            imm: -3,
        };
        assert_eq!(i.to_string(), "addi r1, r2, -3");
        assert_eq!(Instr::Jump { target: 7 }.to_string(), "j @7");
    }
}
