//! A toy MIPS-R3000-like instruction set used by the Disjoint Eager Execution
//! (DEE) reproduction.
//!
//! The DEE paper (Uht & Sindagi, MICRO-28, 1995) assumes "the MIPS R3000
//! instruction set ... but with single cycle (unit latency) instruction
//! execution", and stresses that its microarchitecture is instruction-set
//! independent. This crate provides a compact RISC ISA with the same
//! structural properties the evaluation depends on:
//!
//! * 32 general-purpose registers ([`Reg`]), with `r0` hardwired to zero;
//! * three-operand ALU instructions and compare-and-branch conditional
//!   branches ([`Instr`]);
//! * word-addressed memory with base+offset loads and stores;
//! * `jal`/`jr` call/return, and an `out` instruction so programs can emit a
//!   checkable output stream.
//!
//! The crate also contains the static program analyses the reduced/minimal
//! control-dependence (`-CD`) execution models need: a control-flow graph,
//! a post-dominator computation, and per-branch reconvergence points
//! (the `cfg` module).
//!
//! # Example
//!
//! ```
//! use dee_isa::{Assembler, Reg};
//!
//! let mut asm = Assembler::new();
//! let (r1, r2) = (Reg::new(1), Reg::new(2));
//! asm.li(r1, 5);
//! asm.li(r2, 0);
//! asm.label("loop");
//! asm.add(r2, r2, r1);
//! asm.addi(r1, r1, -1);
//! asm.bne_label(r1, Reg::ZERO, "loop");
//! asm.out(r2);
//! asm.halt();
//! let program = asm.assemble().expect("label resolution succeeds");
//! assert_eq!(program.len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
pub mod cfg;
mod instr;
pub mod parse;
mod program;
mod reg;
pub mod transform;

pub use asm::{AsmError, Assembler};
pub use instr::{AluOp, BranchCond, Instr};
pub use program::{Program, ProgramError};
pub use reg::Reg;
