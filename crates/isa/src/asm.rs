use std::collections::HashMap;
use std::fmt;

use crate::{AluOp, BranchCond, Instr, Program, ProgramError, Reg};

/// A two-pass assembler: emit instructions with symbolic labels, then
/// [`assemble`](Assembler::assemble) resolves all references and validates
/// the result into a [`Program`].
///
/// The assembler is the construction API for the hand-written SPECint92-like
/// workloads; it provides one method per instruction plus the usual
/// conveniences (`mv`, `push`/`pop`, `call_label`/`ret`).
///
/// # Example
///
/// ```
/// use dee_isa::{Assembler, Reg};
///
/// let mut asm = Assembler::new();
/// let r1 = Reg::new(1);
/// asm.li(r1, 3);
/// asm.label("top");
/// asm.addi(r1, r1, -1);
/// asm.bgt_label(r1, Reg::ZERO, "top");
/// asm.halt();
/// let p = asm.assemble()?;
/// assert_eq!(p.len(), 4);
/// # Ok::<(), dee_isa::AsmError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, String)>,
}

/// Error produced by [`Assembler::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// The resolved instruction stream failed [`Program`] validation.
    Invalid(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError::Invalid(e)
    }
}

/// A placeholder target patched during assembly.
const PENDING: u32 = u32::MAX;

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The address the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Defines `name` at the current address.
    ///
    /// Duplicate definitions are reported by [`assemble`](Self::assemble).
    pub fn label(&mut self, name: &str) -> &mut Self {
        // Record duplicates by inserting a sentinel fixup checked at assembly.
        if self.labels.insert(name.to_string(), self.here()).is_some() {
            self.fixups.push((usize::MAX, name.to_string()));
        }
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    fn emit_labeled(&mut self, instr: Instr, label: &str) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.to_string()));
        self.instrs.push(instr);
        self
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on undefined or duplicate labels, or when the
    /// resolved stream fails [`Program`] validation.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let mut instrs = self.instrs.clone();
        for (idx, label) in &self.fixups {
            if *idx == usize::MAX {
                return Err(AsmError::DuplicateLabel(label.clone()));
            }
            // `@N` is an absolute-address target (the listing form) unless
            // shadowed by an explicit label of that name.
            let target = match self.labels.get(label) {
                Some(&t) => t,
                None => label
                    .strip_prefix('@')
                    .and_then(|addr| addr.parse::<u32>().ok())
                    .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?,
            };
            match &mut instrs[*idx] {
                Instr::Branch { target: t, .. }
                | Instr::Jump { target: t }
                | Instr::Jal { target: t } => {
                    debug_assert_eq!(*t, PENDING);
                    *t = target;
                }
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        Ok(Program::new(instrs)?)
    }

    // --- ALU, register form ---------------------------------------------

    /// `rd = rs + rt`
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Add,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs - rt`
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Sub,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs * rt`
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Mul,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs / rt` (0 when `rt` is 0)
    pub fn div(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Div,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs % rt` (0 when `rt` is 0)
    pub fn rem(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Rem,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs & rt`
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::And,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs | rt`
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Or,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs ^ rt`
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Xor,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs << rt`
    pub fn sll(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Sll,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = (rs as u32) >> rt`
    pub fn srl(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Srl,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = rs >> rt` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Sra,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = (rs < rt) as i32`
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Slt,
            rd,
            rs,
            rt,
        })
    }
    /// `rd = (rs == rt) as i32`
    pub fn seq(&mut self, rd: Reg, rs: Reg, rt: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op: AluOp::Seq,
            rd,
            rs,
            rt,
        })
    }

    // --- ALU, immediate form ---------------------------------------------

    /// `rd = rs + imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs & imm`
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::And,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs | imm`
    pub fn ori(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Or,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs ^ imm`
    pub fn xori(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Xor,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs * imm`
    pub fn muli(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Mul,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs % imm`
    pub fn remi(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Rem,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = (rs < imm) as i32`
    pub fn slti(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Slt,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs << imm`
    pub fn slli(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Sll,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = (rs as u32) >> imm`
    pub fn srli(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Srl,
            rd,
            rs,
            imm,
        })
    }
    /// `rd = rs >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::AluImm {
            op: AluOp::Sra,
            rd,
            rs,
            imm,
        })
    }

    // --- moves, loads, stores ---------------------------------------------

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::Li { rd, imm })
    }
    /// `rd = rs` (pseudo-op: `addi rd, rs, 0`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }
    /// `rd = mem[base + offset]`
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Lw { rd, base, offset })
    }
    /// `mem[base + offset] = rs`
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Sw { rs, base, offset })
    }
    /// Pushes `rs` on the stack: `sp -= 1; mem[sp] = rs`.
    pub fn push(&mut self, rs: Reg) -> &mut Self {
        self.addi(Reg::SP, Reg::SP, -1);
        self.sw(rs, Reg::SP, 0)
    }
    /// Pops into `rd`: `rd = mem[sp]; sp += 1`.
    pub fn pop(&mut self, rd: Reg) -> &mut Self {
        self.lw(rd, Reg::SP, 0);
        self.addi(Reg::SP, Reg::SP, 1)
    }

    // --- control flow ------------------------------------------------------

    /// Conditional branch to a label.
    pub fn branch_label(&mut self, cond: BranchCond, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.emit_labeled(
            Instr::Branch {
                cond,
                rs,
                rt,
                target: PENDING,
            },
            label,
        )
    }
    /// `beq rs, rt, label`
    pub fn beq_label(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.branch_label(BranchCond::Eq, rs, rt, label)
    }
    /// `bne rs, rt, label`
    pub fn bne_label(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.branch_label(BranchCond::Ne, rs, rt, label)
    }
    /// `blt rs, rt, label`
    pub fn blt_label(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.branch_label(BranchCond::Lt, rs, rt, label)
    }
    /// `bge rs, rt, label`
    pub fn bge_label(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.branch_label(BranchCond::Ge, rs, rt, label)
    }
    /// `ble rs, rt, label`
    pub fn ble_label(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.branch_label(BranchCond::Le, rs, rt, label)
    }
    /// `bgt rs, rt, label`
    pub fn bgt_label(&mut self, rs: Reg, rt: Reg, label: &str) -> &mut Self {
        self.branch_label(BranchCond::Gt, rs, rt, label)
    }
    /// Unconditional jump to a label.
    pub fn j_label(&mut self, label: &str) -> &mut Self {
        self.emit_labeled(Instr::Jump { target: PENDING }, label)
    }
    /// Call (jump-and-link) to a label.
    pub fn call_label(&mut self, label: &str) -> &mut Self {
        self.emit_labeled(Instr::Jal { target: PENDING }, label)
    }
    /// Indirect jump through `rs`.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Jr { rs })
    }
    /// Return: `jr ra`.
    pub fn ret(&mut self) -> &mut Self {
        self.jr(Reg::RA)
    }
    /// Emit the value of `rs` to the output stream.
    pub fn out(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Out { rs })
    }
    /// Stop execution.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }
    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 2);
        asm.label("back");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "back");
        asm.beq_label(r1, Reg::ZERO, "fwd");
        asm.nop();
        asm.label("fwd");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p[2].static_target(), Some(1));
        assert_eq!(p[3].static_target(), Some(5));
    }

    #[test]
    fn undefined_label_reported() {
        let mut asm = Assembler::new();
        asm.j_label("nowhere");
        asm.halt();
        assert_eq!(
            asm.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_reported() {
        let mut asm = Assembler::new();
        asm.label("x");
        asm.nop();
        asm.label("x");
        asm.halt();
        assert_eq!(
            asm.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn missing_halt_propagates_program_error() {
        let mut asm = Assembler::new();
        asm.nop();
        assert_eq!(
            asm.assemble().unwrap_err(),
            AsmError::Invalid(ProgramError::NoHalt)
        );
    }

    #[test]
    fn push_pop_emit_expected_sequences() {
        let mut asm = Assembler::new();
        asm.push(Reg::new(3));
        asm.pop(Reg::new(4));
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(
            p[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg::SP,
                rs: Reg::SP,
                imm: -1
            }
        );
        assert_eq!(
            p[1],
            Instr::Sw {
                rs: Reg::new(3),
                base: Reg::SP,
                offset: 0
            }
        );
        assert_eq!(
            p[2],
            Instr::Lw {
                rd: Reg::new(4),
                base: Reg::SP,
                offset: 0
            }
        );
    }

    #[test]
    fn call_and_ret_shapes() {
        let mut asm = Assembler::new();
        asm.call_label("f");
        asm.halt();
        asm.label("f");
        asm.ret();
        let p = asm.assemble().unwrap();
        assert_eq!(p[0], Instr::Jal { target: 2 });
        assert_eq!(p[2], Instr::Jr { rs: Reg::RA });
    }

    #[test]
    fn assemble_is_repeatable() {
        let mut asm = Assembler::new();
        asm.beq_label(Reg::new(1), Reg::ZERO, "end");
        asm.nop();
        asm.label("end");
        asm.halt();
        let p1 = asm.assemble().unwrap();
        let p2 = asm.assemble().unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn here_tracks_emission() {
        let mut asm = Assembler::new();
        assert_eq!(asm.here(), 0);
        asm.nop();
        assert_eq!(asm.here(), 1);
        asm.push(Reg::new(1));
        assert_eq!(asm.here(), 3);
    }
}
