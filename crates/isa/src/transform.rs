//! Machine-code to machine-code loop unrolling — the filter program of
//! §4.2: "The execution of loops with lengths less than that of the
//! Instruction Queue can be enhanced by a machine-code to machine-code
//! loop unrolling filter program, to achieve average loop sizes of about
//! 3/4 the length of the Queue."
//!
//! [`unroll_loops`] rewrites simple innermost loops (a backward conditional
//! branch closing a single-entry, call-free body) into `k` copies of the
//! body, each ending in an exit test:
//!
//! ```text
//! t: body                t: body            (copy 1)
//!    bcond -> t      =>     b!cond -> exit
//!                           body            (copy 2)
//!                           b!cond -> exit
//!                           body            (copy k)
//!                           bcond -> t
//!                        exit:
//! ```
//!
//! The transformation is semantics-preserving — every copy keeps the loop
//! test, so no trip-count analysis is needed — and executes *exactly the
//! same dynamic instruction count* (one branch per original iteration).
//! What changes is the static shape: a static instruction window (Levo's
//! IQ) now holds `k` iterations per captured column.

use crate::{Instr, Program, ProgramError};

/// Parameters of the unrolling filter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnrollConfig {
    /// Copies of each eligible body (≥ 2 to change anything).
    pub factor: u32,
    /// Only unroll bodies of at most this many instructions.
    pub max_body: u32,
}

impl Default for UnrollConfig {
    /// Factor 3 with bodies up to 8 instructions: a 32-row IQ then holds
    /// a ~24-instruction unrolled body, the paper's "about 3/4 the length
    /// of the Queue".
    fn default() -> Self {
        UnrollConfig {
            factor: 3,
            max_body: 8,
        }
    }
}

/// Result of the filter.
#[derive(Clone, Debug)]
pub struct UnrollResult {
    /// The rewritten program.
    pub program: Program,
    /// Start addresses (in the *original* program) of the unrolled loops.
    pub unrolled: Vec<u32>,
}

/// A candidate loop: body `[start..=close]` closed either by a backward
/// conditional branch (do-while shape) or a backward unconditional jump
/// (test-at-top shape, the common compiler output).
#[derive(Clone, Copy, Debug)]
struct Candidate {
    start: u32,
    close: u32,
}

impl Candidate {
    fn body_len(&self) -> u32 {
        self.close - self.start + 1
    }

    fn contains(&self, pc: u32) -> bool {
        pc >= self.start && pc <= self.close
    }

    /// The loop's single exit: the instruction after the closing branch.
    fn exit(&self) -> u32 {
        self.close + 1
    }
}

/// Finds simple innermost loops eligible for unrolling.
fn find_candidates(program: &Program, config: &UnrollConfig) -> Vec<Candidate> {
    let mut candidates = Vec::new();
    'branches: for (pc, instr) in program.iter() {
        let candidate = match *instr {
            Instr::Branch { target, .. } | Instr::Jump { target } if target <= pc => Candidate {
                start: target,
                close: pc,
            },
            _ => continue,
        };
        if candidate.body_len() > config.max_body {
            continue;
        }
        // Body restrictions: no calls/returns/halts, no *other* backward
        // control (innermost only); internal control stays inside the body
        // or targets the loop's single exit.
        for body_pc in candidate.start..candidate.close {
            match program[body_pc] {
                Instr::Jal { .. } | Instr::Jr { .. } | Instr::Halt => continue 'branches,
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => {
                    if t <= body_pc {
                        continue 'branches; // nested backward control
                    }
                    if !candidate.contains(t) && t != candidate.exit() {
                        continue 'branches;
                    }
                }
                _ => {}
            }
        }
        // Single entry: nothing outside targets the body's interior.
        for (other_pc, other) in program.iter() {
            if candidate.contains(other_pc) {
                continue;
            }
            if let Some(t) = other.static_target() {
                if candidate.contains(t) && t != candidate.start {
                    continue 'branches;
                }
            }
        }
        // Fall-through into the interior other than sequentially through
        // `start` is impossible for contiguous code, so we are done.
        candidates.push(candidate);
    }
    // Keep non-overlapping candidates, outermost-first order by address.
    let mut chosen: Vec<Candidate> = Vec::new();
    for c in candidates {
        if chosen
            .iter()
            .all(|x| c.close < x.start || c.start > x.close)
        {
            chosen.push(c);
        }
    }
    chosen.sort_by_key(|c| c.start);
    chosen
}

/// Applies the unrolling filter.
///
/// # Errors
///
/// Returns [`ProgramError`] only if the rewritten program fails validation,
/// which would indicate a bug in the filter (tested not to happen).
pub fn unroll_loops(
    program: &Program,
    config: &UnrollConfig,
) -> Result<UnrollResult, ProgramError> {
    if config.factor < 2 {
        return Ok(UnrollResult {
            program: program.clone(),
            unrolled: Vec::new(),
        });
    }
    let candidates = find_candidates(program, config);
    if candidates.is_empty() {
        return Ok(UnrollResult {
            program: program.clone(),
            unrolled: Vec::new(),
        });
    }

    // Pass 1: compute the new address of every original instruction.
    // Body instructions map to their copy-1 position.
    let mut new_pc = vec![0u32; program.len()];
    let mut cursor = 0u32;
    let mut c_iter = candidates.iter().peekable();
    let mut pc = 0u32;
    while (pc as usize) < program.len() {
        if let Some(&&c) = c_iter.peek() {
            if pc == c.start {
                let body = c.body_len();
                for offset in 0..body {
                    new_pc[(c.start + offset) as usize] = cursor + offset;
                }
                cursor += body * config.factor;
                pc = c.close + 1;
                c_iter.next();
                continue;
            }
        }
        new_pc[pc as usize] = cursor;
        cursor += 1;
        pc += 1;
    }
    let map = |old: u32| new_pc[old as usize];

    // Pass 2: emit.
    let mut out: Vec<Instr> = Vec::with_capacity(cursor as usize);
    let mut c_iter = candidates.iter().peekable();
    let mut pc = 0u32;
    while (pc as usize) < program.len() {
        if let Some(&&c) = c_iter.peek() {
            if pc == c.start {
                let body = c.body_len();
                let block_start = out.len() as u32;
                let exit = block_start + body * config.factor;
                for copy in 0..config.factor {
                    let copy_base = block_start + copy * body;
                    let last_copy = copy + 1 == config.factor;
                    // Internal targets land in this copy; the loop's exit
                    // lands after the whole unrolled block.
                    let retarget = |t: u32| -> u32 {
                        if c.contains(t) {
                            copy_base + (t - c.start)
                        } else {
                            debug_assert_eq!(t, c.exit());
                            exit
                        }
                    };
                    for offset in 0..body {
                        let old = c.start + offset;
                        let instr = program[old];
                        let rewritten = match instr {
                            // The closing instruction.
                            Instr::Branch {
                                cond,
                                rs,
                                rt,
                                target,
                            } if old == c.close => {
                                if last_copy {
                                    Instr::Branch {
                                        cond,
                                        rs,
                                        rt,
                                        target: map(target),
                                    }
                                } else {
                                    // Earlier copies test for exit and fall
                                    // through into the next copy.
                                    Instr::Branch {
                                        cond: cond.negated(),
                                        rs,
                                        rt,
                                        target: exit,
                                    }
                                }
                            }
                            Instr::Jump { target } if old == c.close => {
                                // Test-at-top loop: the back jump of each
                                // copy goes to the next copy (same dynamic
                                // instruction count); the last loops back.
                                if last_copy {
                                    Instr::Jump {
                                        target: map(target),
                                    }
                                } else {
                                    Instr::Jump {
                                        target: copy_base + body,
                                    }
                                }
                            }
                            // Internal control: retarget per copy.
                            Instr::Branch {
                                cond,
                                rs,
                                rt,
                                target,
                            } => Instr::Branch {
                                cond,
                                rs,
                                rt,
                                target: retarget(target),
                            },
                            Instr::Jump { target } => Instr::Jump {
                                target: retarget(target),
                            },
                            other => other,
                        };
                        out.push(rewritten);
                    }
                }
                pc = c.close + 1;
                c_iter.next();
                continue;
            }
        }
        let instr = program[pc];
        let rewritten = match instr {
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => Instr::Branch {
                cond,
                rs,
                rt,
                target: map(target),
            },
            Instr::Jump { target } => Instr::Jump {
                target: map(target),
            },
            Instr::Jal { target } => Instr::Jal {
                target: map(target),
            },
            other => other,
        };
        out.push(rewritten);
        pc += 1;
    }

    Ok(UnrollResult {
        program: Program::new(out)?,
        unrolled: candidates.iter().map(|c| c.start).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Reg};

    fn countdown_program() -> Program {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 10);
        asm.li(r2, 0);
        asm.label("top");
        asm.add(r2, r2, r1);
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r2);
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn finds_and_unrolls_a_simple_loop() {
        let p = countdown_program();
        let result = unroll_loops(
            &p,
            &UnrollConfig {
                factor: 3,
                max_body: 8,
            },
        )
        .unwrap();
        assert_eq!(result.unrolled, vec![2]);
        // Body of 3 instructions becomes 9; rest unchanged.
        assert_eq!(result.program.len(), p.len() + 2 * 3);
    }

    #[test]
    fn factor_one_is_identity() {
        let p = countdown_program();
        let result = unroll_loops(
            &p,
            &UnrollConfig {
                factor: 1,
                max_body: 8,
            },
        )
        .unwrap();
        assert_eq!(result.program, p);
        assert!(result.unrolled.is_empty());
    }

    #[test]
    fn oversized_bodies_are_left_alone() {
        let p = countdown_program();
        let result = unroll_loops(
            &p,
            &UnrollConfig {
                factor: 3,
                max_body: 2,
            },
        )
        .unwrap();
        assert!(result.unrolled.is_empty());
        assert_eq!(result.program, p);
    }

    #[test]
    fn loops_with_calls_are_skipped() {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 3);
        asm.label("top");
        asm.call_label("f");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        asm.label("f");
        asm.ret();
        let p = asm.assemble().unwrap();
        let result = unroll_loops(&p, &UnrollConfig::default()).unwrap();
        assert!(result.unrolled.is_empty());
    }

    #[test]
    fn multi_entry_loops_are_skipped() {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 3);
        asm.beq_label(r1, Reg::ZERO, "middle"); // second entry into the body
        asm.label("top");
        asm.nop();
        asm.label("middle");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        let result = unroll_loops(&p, &UnrollConfig::default()).unwrap();
        assert!(result.unrolled.is_empty());
    }

    #[test]
    fn internal_forward_branches_are_retargeted_per_copy() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 6);
        asm.li(r2, 0);
        asm.label("top");
        asm.andi(r2, r1, 1);
        asm.beq_label(r2, Reg::ZERO, "skip"); // internal if
        asm.addi(r2, r2, 5);
        asm.label("skip");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r1);
        asm.halt();
        let p = asm.assemble().unwrap();
        let result = unroll_loops(
            &p,
            &UnrollConfig {
                factor: 2,
                max_body: 8,
            },
        )
        .unwrap();
        assert_eq!(result.unrolled.len(), 1);
        // Every internal branch target stays inside its own copy.
        for (pc, instr) in result.program.iter() {
            if let Some(t) = instr.static_target() {
                assert!((t as usize) < result.program.len(), "pc {pc} target {t}");
            }
        }
    }

    #[test]
    fn semantics_preserved_on_countdown() {
        use dee_vm_equivalence::outputs_match;
        let p = countdown_program();
        for factor in [2, 3, 4] {
            let result = unroll_loops(
                &p,
                &UnrollConfig {
                    factor,
                    max_body: 8,
                },
            )
            .unwrap();
            assert!(outputs_match(&p, &result.program), "factor {factor}");
        }
    }

    /// Minimal interpreter for the equivalence check, mirroring dee-vm
    /// semantics (dee-isa cannot depend on dee-vm).
    mod dee_vm_equivalence {
        use crate::{Instr, Program, Reg};

        fn run(program: &Program) -> Vec<i32> {
            let mut regs = [0i32; Reg::COUNT];
            let mut mem = vec![0i32; 4096];
            let mut out = Vec::new();
            let mut pc = 0u32;
            for _ in 0..1_000_000u32 {
                match program[pc] {
                    Instr::Alu { op, rd, rs, rt } => {
                        regs[rd.index()] = op.apply(regs[rs.index()], regs[rt.index()]);
                    }
                    Instr::AluImm { op, rd, rs, imm } => {
                        regs[rd.index()] = op.apply(regs[rs.index()], imm);
                    }
                    Instr::Li { rd, imm } => regs[rd.index()] = imm,
                    Instr::Lw { rd, base, offset } => {
                        regs[rd.index()] = mem[(regs[base.index()] + offset) as usize];
                    }
                    Instr::Sw { rs, base, offset } => {
                        mem[(regs[base.index()] + offset) as usize] = regs[rs.index()];
                    }
                    Instr::Branch {
                        cond,
                        rs,
                        rt,
                        target,
                    } => {
                        if cond.eval(regs[rs.index()], regs[rt.index()]) {
                            pc = target;
                            regs[0] = 0;
                            continue;
                        }
                    }
                    Instr::Jump { target } => {
                        pc = target;
                        continue;
                    }
                    Instr::Jal { target } => {
                        regs[Reg::RA.index()] = (pc + 1) as i32;
                        pc = target;
                        continue;
                    }
                    Instr::Jr { rs } => {
                        pc = regs[rs.index()] as u32;
                        continue;
                    }
                    Instr::Out { rs } => out.push(regs[rs.index()]),
                    Instr::Halt => return out,
                    Instr::Nop => {}
                }
                regs[0] = 0;
                pc += 1;
            }
            panic!("program did not halt");
        }

        pub fn outputs_match(a: &Program, b: &Program) -> bool {
            run(a) == run(b)
        }
    }
}
