//! Static control-flow analysis: CFG construction, post-dominators, and
//! per-branch reconvergence points.
//!
//! The reduced control-dependence (`-CD`) execution models of the paper
//! (after Lam & Wilson, and Ferrante et al.'s program dependence graph)
//! need to know, for every conditional branch, where control *reconverges*:
//! the first instruction that executes regardless of the branch direction.
//! That is the branch's immediate post-dominator. Instructions between a
//! branch and its reconvergence point are control-dependent on it; a
//! misprediction delays only those, not the code past the join.
//!
//! Calls are treated intraprocedurally: a `jal` is a straight-line
//! instruction (the callee is opaque and control returns to `pc + 1`), and a
//! `jr` is an edge to the virtual exit. Transitive control dependence of
//! callee code on a caller-side branch is handled *dynamically* by the
//! simulators, which scan the trace for the reconvergence point at the same
//! call depth as the branch.

use crate::{Instr, Program};

/// Control-flow graph of a [`Program`], with a virtual exit node.
///
/// Node `program.len()` is the virtual exit; `jr`, `halt`, and any
/// fall-through off the end of the program lead to it.
///
/// # Example
///
/// ```
/// use dee_isa::{Assembler, Reg};
/// use dee_isa::cfg::Cfg;
///
/// let mut asm = Assembler::new();
/// asm.beq_label(Reg::new(1), Reg::ZERO, "skip"); // 0
/// asm.nop();                                     // 1
/// asm.label("skip");
/// asm.halt();                                    // 2
/// let p = asm.assemble()?;
/// let cfg = Cfg::new(&p);
/// assert_eq!(cfg.successors(0), &[2, 1]);
/// let pd = cfg.postdominators();
/// assert_eq!(pd.reconvergence(0), Some(2));
/// # Ok::<(), dee_isa::AsmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    exit: u32,
}

impl Cfg {
    /// Builds the CFG of `program`.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let n = program.len();
        let exit = n as u32;
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        for (pc, instr) in program.iter() {
            // The fall-through successor: the next instruction, or — for an
            // instruction at the last address — the virtual exit. Falling
            // off the end of the program is thus a well-defined CFG edge,
            // never an out-of-range node: the VM raises `PcOutOfRange`
            // there, and dee-analyze flags the shape as `DEE-W012
            // missing-halt`.
            let fall = if (pc as usize) + 1 < n { pc + 1 } else { exit };
            let ss: Vec<u32> = match *instr {
                Instr::Branch { target, .. } => {
                    if target == fall {
                        vec![fall]
                    } else {
                        vec![target, fall]
                    }
                }
                Instr::Jump { target } => vec![target],
                // Calls fall through (intraprocedural view).
                Instr::Jal { .. } => vec![fall],
                Instr::Jr { .. } | Instr::Halt => vec![exit],
                _ => vec![fall],
            };
            for &s in &ss {
                preds[s as usize].push(pc);
            }
            succs[pc as usize] = ss;
        }
        Cfg { succs, preds, exit }
    }

    /// The virtual exit node (equal to the program length).
    #[must_use]
    pub fn exit(&self) -> u32 {
        self.exit
    }

    /// Successors of `pc` (taken target first for two-way branches).
    #[must_use]
    pub fn successors(&self, pc: u32) -> &[u32] {
        &self.succs[pc as usize]
    }

    /// Predecessors of `pc`.
    #[must_use]
    pub fn predecessors(&self, pc: u32) -> &[u32] {
        &self.preds[pc as usize]
    }

    /// Computes the post-dominator tree (Cooper–Harvey–Kennedy iterative
    /// algorithm on the reverse CFG).
    #[must_use]
    pub fn postdominators(&self) -> PostDoms {
        let n = self.succs.len(); // includes exit
        let exit = self.exit as usize;

        // Postorder of the *reverse* CFG from exit (edges = predecessors).
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS.
        let mut stack: Vec<(usize, usize)> = vec![(exit, 0)];
        visited[exit] = true;
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            let ps = &self.preds[node];
            if *i < ps.len() {
                let next = ps[*i] as usize;
                *i += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        // Map node -> postorder index (higher = earlier in reverse postorder).
        let mut po_idx = vec![usize::MAX; n];
        for (i, &node) in order.iter().enumerate() {
            po_idx[node] = i;
        }

        const UNDEF: usize = usize::MAX;
        let mut idom = vec![UNDEF; n];
        idom[exit] = exit;

        let intersect = |idom: &[usize], po_idx: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while po_idx[a] < po_idx[b] {
                    a = idom[a];
                }
                while po_idx[b] < po_idx[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            // Reverse postorder of the reverse graph, skipping exit.
            for &node in order.iter().rev() {
                if node == exit {
                    continue;
                }
                // "Predecessors" in the reverse graph are CFG successors.
                let mut new_idom = UNDEF;
                for &s in &self.succs[node] {
                    let s = s as usize;
                    if idom[s] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        s
                    } else {
                        intersect(&idom, &po_idx, new_idom, s)
                    };
                }
                if new_idom != UNDEF && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        PostDoms {
            ipdom: idom
                .into_iter()
                .map(|d| if d == UNDEF { None } else { Some(d as u32) })
                .collect(),
            exit: self.exit,
        }
    }
}

/// The post-dominator tree of a [`Cfg`].
#[derive(Clone, Debug)]
pub struct PostDoms {
    ipdom: Vec<Option<u32>>,
    exit: u32,
}

impl PostDoms {
    /// The immediate post-dominator of `pc`, or `None` when `pc` cannot
    /// reach the exit (e.g. inside a provably infinite loop).
    ///
    /// The exit node's immediate post-dominator is itself.
    #[must_use]
    pub fn ipdom(&self, pc: u32) -> Option<u32> {
        self.ipdom.get(pc as usize).copied().flatten()
    }

    /// The virtual exit node.
    #[must_use]
    pub fn exit(&self) -> u32 {
        self.exit
    }

    /// The reconvergence point of the branch at `branch_pc`: the first
    /// instruction executed regardless of the branch direction.
    ///
    /// Returns `None` when the branch's paths only rejoin at program exit.
    #[must_use]
    pub fn reconvergence(&self, branch_pc: u32) -> Option<u32> {
        match self.ipdom(branch_pc) {
            Some(p) if p != self.exit => Some(p),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` (every path from `b` to exit passes
    /// through `a`). Reflexive.
    #[must_use]
    pub fn postdominates(&self, a: u32, b: u32) -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            match self.ipdom(x) {
                Some(p) if p != x => x = p,
                _ => return false,
            }
        }
    }

    /// The static instructions control-dependent on the branch at
    /// `branch_pc` (Ferrante et al.): for each CFG successor `s` of the
    /// branch, the nodes from `s` up the post-dominator tree to — but
    /// excluding — the branch's own immediate post-dominator.
    #[must_use]
    pub fn control_dependents(&self, cfg: &Cfg, branch_pc: u32) -> Vec<u32> {
        let stop = self.ipdom(branch_pc);
        let mut result = Vec::new();
        for &s in cfg.successors(branch_pc) {
            let mut x = Some(s);
            while let Some(node) = x {
                if Some(node) == stop || node == self.exit {
                    break;
                }
                if !result.contains(&node) {
                    result.push(node);
                }
                let next = self.ipdom(node);
                if next == Some(node) {
                    break;
                }
                x = next;
            }
        }
        result.sort_unstable();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Reg};

    fn diamond() -> Program {
        // 0: beq r1, r0, @3
        // 1: nop            (then side... actually fall-through side)
        // 2: j @4
        // 3: nop            (taken side)
        // 4: halt           (join)
        let mut asm = Assembler::new();
        asm.beq_label(Reg::new(1), Reg::ZERO, "taken");
        asm.nop();
        asm.j_label("join");
        asm.label("taken");
        asm.nop();
        asm.label("join");
        asm.halt();
        asm.assemble().unwrap()
    }

    #[test]
    fn diamond_reconverges_at_join() {
        let p = diamond();
        let cfg = Cfg::new(&p);
        let pd = cfg.postdominators();
        assert_eq!(pd.reconvergence(0), Some(4));
        let cd = pd.control_dependents(&cfg, 0);
        assert_eq!(cd, vec![1, 2, 3]);
    }

    #[test]
    fn loop_branch_controls_body() {
        // 0: li r1, 3
        // 1: addi r1, r1, -1   <- loop body
        // 2: bgt r1, r0, @1    <- back edge
        // 3: halt
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 3);
        asm.label("top");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        let cfg = Cfg::new(&p);
        let pd = cfg.postdominators();
        // The back-edge branch reconverges at the loop exit (3).
        assert_eq!(pd.reconvergence(2), Some(3));
        // Body and branch itself are control-dependent on the back edge.
        let cd = pd.control_dependents(&cfg, 2);
        assert_eq!(cd, vec![1, 2]);
    }

    #[test]
    fn trailing_non_terminator_falls_through_to_exit() {
        // A program whose last instruction is not a terminator: the
        // fall-through past the end must be an explicit edge to the virtual
        // exit, for every successor-producing shape.
        use crate::Instr;
        // 0: halt / 1: nop  (1 is unreachable but must still be well-formed)
        let p = Program::new(vec![Instr::Halt, Instr::Nop]).unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.exit(), 2);
        assert_eq!(cfg.successors(1), &[2]);
        assert!(cfg.predecessors(2).contains(&1));

        // 0: halt / 1: beq r1, r0, @0 — a final branch gets [target, exit].
        let p = Program::new(vec![
            Instr::Halt,
            Instr::Branch {
                cond: crate::BranchCond::Eq,
                rs: Reg::new(1),
                rt: Reg::ZERO,
                target: 0,
            },
        ])
        .unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.successors(1), &[0, 2]);

        // 0: halt / 1: jal @0 — a final call falls through to the exit.
        let p = Program::new(vec![Instr::Halt, Instr::Jal { target: 0 }]).unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.successors(1), &[2]);

        // Post-dominators stay well-defined on these graphs.
        let pd = cfg.postdominators();
        assert_eq!(pd.ipdom(1), Some(2));
    }

    #[test]
    fn nested_if_control_dependence() {
        // outer: 0 beq -> 6 ; inner: 1 beq -> 4
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.beq_label(r1, Reg::ZERO, "outer_join"); // 0
        asm.beq_label(r1, Reg::ZERO, "inner_join"); // 1
        asm.nop(); // 2
        asm.nop(); // 3
        asm.label("inner_join");
        asm.nop(); // 4
        asm.nop(); // 5
        asm.label("outer_join");
        asm.halt(); // 6
        let p = asm.assemble().unwrap();
        let cfg = Cfg::new(&p);
        let pd = cfg.postdominators();
        assert_eq!(pd.reconvergence(0), Some(6));
        assert_eq!(pd.reconvergence(1), Some(4));
        // Direct (non-transitive) control dependence: 2 and 3 depend on the
        // inner branch, not directly on the outer one.
        assert_eq!(pd.control_dependents(&cfg, 0), vec![1, 4, 5]);
        assert_eq!(pd.control_dependents(&cfg, 1), vec![2, 3]);
        assert!(pd.postdominates(6, 0));
        assert!(pd.postdominates(4, 1));
        assert!(!pd.postdominates(2, 1));
    }

    #[test]
    fn jal_treated_as_fall_through() {
        let mut asm = Assembler::new();
        asm.call_label("f"); // 0
        asm.halt(); // 1
        asm.label("f");
        asm.nop(); // 2
        asm.ret(); // 3
        let p = asm.assemble().unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.successors(0), &[1]);
        // jr goes to exit
        assert_eq!(cfg.successors(3), &[4]);
        let pd = cfg.postdominators();
        assert_eq!(pd.ipdom(0), Some(1));
        // Callee body post-dominated by its return's exit edge.
        assert_eq!(pd.ipdom(2), Some(3));
    }

    #[test]
    fn branch_to_fall_through_collapses_edge() {
        let mut asm = Assembler::new();
        asm.beq_label(Reg::new(1), Reg::ZERO, "next");
        asm.label("next");
        asm.halt();
        let p = asm.assemble().unwrap();
        let cfg = Cfg::new(&p);
        assert_eq!(cfg.successors(0), &[1]);
    }

    #[test]
    fn exit_is_own_ipdom_and_postdominates_everything_reachable() {
        let p = diamond();
        let cfg = Cfg::new(&p);
        let pd = cfg.postdominators();
        let exit = cfg.exit();
        assert_eq!(pd.ipdom(exit), Some(exit));
        for pc in 0..p.len() as u32 {
            assert!(pd.postdominates(exit, pc), "exit postdoms {pc}");
        }
    }

    #[test]
    fn predecessors_are_inverse_of_successors() {
        let p = diamond();
        let cfg = Cfg::new(&p);
        for pc in 0..=cfg.exit() {
            for &s in cfg.successors(pc) {
                assert!(cfg.predecessors(s).contains(&pc));
            }
        }
    }
}
