//! A text-format assembler: parse `.s`-style source into a [`Program`].
//!
//! The syntax round-trips with the [`Display`](std::fmt::Display) forms of
//! [`Instr`](crate::Instr) plus labels and comments, so programs can be
//! written, dumped (`Program::to_listing`), edited, and re-assembled:
//!
//! ```text
//! # sum the numbers 1..=n (r4 = n)
//!         li   r2, 0
//! loop:   add  r2, r2, r4
//!         addi r4, r4, -1
//!         bgt  r4, r0, loop
//!         out  r2
//!         halt
//! ```
//!
//! Targets may be written as labels (`loop`) or absolute addresses (`@7`).
//! Comments start with `#` or `;`. Register aliases `zero`, `sp`, `fp`,
//! `ra`, `rv` are accepted alongside `r0`..`r31`.

use std::fmt;

use crate::{AsmError, Assembler, BranchCond, Program, Reg};

/// A parse failure, with the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn parse_reg(token: &str, line: usize) -> Result<Reg, ParseError> {
    let err = |message: String| ParseError { line, message };
    match token {
        "zero" => return Ok(Reg::ZERO),
        "sp" => return Ok(Reg::SP),
        "fp" => return Ok(Reg::FP),
        "ra" => return Ok(Reg::RA),
        "rv" => return Ok(Reg::RV),
        _ => {}
    }
    let digits = token
        .strip_prefix('r')
        .ok_or_else(|| err(format!("expected register, got `{token}`")))?;
    let index: u8 = digits
        .parse()
        .map_err(|_| err(format!("bad register `{token}`")))?;
    Reg::try_new(index).ok_or_else(|| err(format!("register `{token}` out of range")))
}

fn parse_imm(token: &str, line: usize) -> Result<i32, ParseError> {
    let parsed = if let Some(hex) = token.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = token.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        token.parse::<i64>().ok()
    };
    match parsed {
        Some(v) if i32::try_from(v).is_ok() => Ok(v as i32),
        _ => Err(ParseError {
            line,
            message: format!("bad immediate `{token}`"),
        }),
    }
}

/// `offset(base)` for loads/stores, e.g. `-2(sp)`.
fn parse_mem_operand(token: &str, line: usize) -> Result<(Reg, i32), ParseError> {
    let err = || ParseError {
        line,
        message: format!("expected offset(base), got `{token}`"),
    };
    let open = token.find('(').ok_or_else(err)?;
    let close = token.strip_suffix(')').ok_or_else(err)?;
    let offset = parse_imm(&token[..open], line)?;
    let base = parse_reg(&close[open + 1..], line)?;
    Ok((base, offset))
}

/// Parses assembly source into a validated [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, unknown mnemonics, or any
/// label/validation failure reported by the [`Assembler`].
///
/// # Example
///
/// ```
/// use dee_isa::parse::parse_program;
///
/// let program = parse_program(
///     "        li   r1, 3\n\
///      top:    addi r1, r1, -1\n\
///      bgt  r1, r0, top\n\
///      halt\n",
/// )?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), dee_isa::parse::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut asm = Assembler::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw_line;
        if let Some(cut) = text.find(['#', ';']) {
            text = &text[..cut];
        }
        let mut text = text.trim();
        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(ParseError {
                    line,
                    message: format!("bad label `{label}`"),
                });
            }
            asm.label(label);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        emit(&mut asm, mnemonic, &operands, line)?;
    }
    asm.assemble().map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

fn emit(
    asm: &mut Assembler,
    mnemonic: &str,
    operands: &[&str],
    line: usize,
) -> Result<(), ParseError> {
    let arity_err = |want: usize| ParseError {
        line,
        message: format!(
            "`{mnemonic}` expects {want} operand(s), got {}",
            operands.len()
        ),
    };
    let need = |n: usize| -> Result<(), ParseError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(arity_err(n))
        }
    };
    let reg = |i: usize| parse_reg(operands[i], line);
    let imm = |i: usize| parse_imm(operands[i], line);

    match mnemonic {
        // Register-register ALU.
        "add" | "sub" | "mul" | "div" | "rem" | "and" | "or" | "xor" | "sll" | "srl" | "sra"
        | "slt" | "seq" => {
            need(3)?;
            let (d, a, b) = (reg(0)?, reg(1)?, reg(2)?);
            match mnemonic {
                "add" => asm.add(d, a, b),
                "sub" => asm.sub(d, a, b),
                "mul" => asm.mul(d, a, b),
                "div" => asm.div(d, a, b),
                "rem" => asm.rem(d, a, b),
                "and" => asm.and(d, a, b),
                "or" => asm.or(d, a, b),
                "xor" => asm.xor(d, a, b),
                "sll" => asm.sll(d, a, b),
                "srl" => asm.srl(d, a, b),
                "sra" => asm.sra(d, a, b),
                "slt" => asm.slt(d, a, b),
                _ => asm.seq(d, a, b),
            };
        }
        // Register-immediate ALU.
        "addi" | "andi" | "ori" | "xori" | "muli" | "remi" | "slti" | "slli" | "srli" | "srai" => {
            need(3)?;
            let (d, a, b) = (reg(0)?, reg(1)?, imm(2)?);
            match mnemonic {
                "addi" => asm.addi(d, a, b),
                "andi" => asm.andi(d, a, b),
                "ori" => asm.ori(d, a, b),
                "xori" => asm.xori(d, a, b),
                "muli" => asm.muli(d, a, b),
                "remi" => asm.remi(d, a, b),
                "slti" => asm.slti(d, a, b),
                "slli" => asm.slli(d, a, b),
                "srli" => asm.srli(d, a, b),
                _ => asm.srai(d, a, b),
            };
        }
        "li" => {
            need(2)?;
            let (d, v) = (reg(0)?, imm(1)?);
            asm.li(d, v);
        }
        "mv" => {
            need(2)?;
            let (d, a) = (reg(0)?, reg(1)?);
            asm.mv(d, a);
        }
        "lw" => {
            need(2)?;
            let d = reg(0)?;
            let (base, offset) = parse_mem_operand(operands[1], line)?;
            asm.lw(d, base, offset);
        }
        "sw" => {
            need(2)?;
            let v = reg(0)?;
            let (base, offset) = parse_mem_operand(operands[1], line)?;
            asm.sw(v, base, offset);
        }
        "beq" | "bne" | "blt" | "bge" | "ble" | "bgt" => {
            need(3)?;
            let (a, b) = (reg(0)?, reg(1)?);
            let cond = match mnemonic {
                "beq" => BranchCond::Eq,
                "bne" => BranchCond::Ne,
                "blt" => BranchCond::Lt,
                "bge" => BranchCond::Ge,
                "ble" => BranchCond::Le,
                _ => BranchCond::Gt,
            };
            asm.branch_label(cond, a, b, operands[2]);
        }
        "j" => {
            need(1)?;
            asm.j_label(operands[0]);
        }
        "jal" | "call" => {
            need(1)?;
            asm.call_label(operands[0]);
        }
        "jr" => {
            need(1)?;
            let r = reg(0)?;
            asm.jr(r);
        }
        "ret" => {
            need(0)?;
            asm.ret();
        }
        "push" => {
            need(1)?;
            let r = reg(0)?;
            asm.push(r);
        }
        "pop" => {
            need(1)?;
            let r = reg(0)?;
            asm.pop(r);
        }
        "out" => {
            need(1)?;
            let r = reg(0)?;
            asm.out(r);
        }
        "halt" => {
            need(0)?;
            asm.halt();
        }
        "nop" => {
            need(0)?;
            asm.nop();
        }
        other => {
            return Err(ParseError {
                line,
                message: format!("unknown mnemonic `{other}`"),
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instr;

    #[test]
    fn parses_the_doc_example() {
        let p = parse_program(
            "# sum 1..=n\n\
             \tli   r2, 0\n\
             \tli   r4, 5\n\
             loop:\tadd  r2, r2, r4\n\
             \taddi r4, r4, -1\n\
             \tbgt  r4, r0, loop\n\
             \tout  r2\n\
             \thalt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p[4].static_target(), Some(2));
    }

    #[test]
    fn register_aliases_and_hex_immediates() {
        let p = parse_program("li sp, 0x40\nsw ra, -2(sp)\nlw rv, 0x10(zero)\nhalt\n").unwrap();
        assert_eq!(
            p[0],
            Instr::Li {
                rd: Reg::SP,
                imm: 0x40
            }
        );
        assert_eq!(
            p[1],
            Instr::Sw {
                rs: Reg::RA,
                base: Reg::SP,
                offset: -2
            }
        );
        assert_eq!(
            p[2],
            Instr::Lw {
                rd: Reg::RV,
                base: Reg::ZERO,
                offset: 16
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("; header\n\n  # only comments here\nhalt # trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn multiple_labels_on_one_line() {
        let p = parse_program("a: b: halt\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = parse_program("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_reported() {
        let err = parse_program("li r99, 0\nhalt\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("r99"));
    }

    #[test]
    fn arity_errors_reported() {
        let err = parse_program("add r1, r2\nhalt\n").unwrap_err();
        assert!(err.message.contains("expects 3"));
    }

    #[test]
    fn undefined_label_caught_at_assembly() {
        let err = parse_program("j nowhere\nhalt\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn pseudo_ops_expand() {
        let p = parse_program("push r3\npop r4\nret\nhalt\n").unwrap();
        // push = 2, pop = 2, ret = 1, halt = 1.
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn listing_round_trips_through_the_parser() {
        // Build a program with every instruction shape, dump it, strip the
        // addresses, and re-parse; the result must be identical.
        let mut asm = Assembler::new();
        let (r1, r2, r3) = (Reg::new(1), Reg::new(2), Reg::new(3));
        asm.li(r1, -7);
        asm.add(r2, r1, r1);
        asm.muli(r3, r2, 3);
        asm.sw(r3, Reg::SP, -1);
        asm.lw(r3, Reg::SP, -1);
        asm.label("here");
        asm.beq_label(r3, Reg::ZERO, "done");
        asm.j_label("here");
        asm.label("done");
        asm.call_label("f");
        asm.out(r3);
        asm.halt();
        asm.label("f");
        asm.ret();
        let original = asm.assemble().unwrap();

        // The listing uses `@addr` targets; translate to labels the lazy
        // way: rewrite `@N` to `LN` and emit label lines.
        let mut source = String::new();
        for (pc, instr) in original.iter() {
            source.push_str(&format!("L{pc}: {}\n", instr).replace('@', "L"));
        }
        let reparsed = parse_program(&source).unwrap();
        assert_eq!(reparsed, original);

        // The raw listing also round-trips: `@N` targets resolve as
        // absolute addresses and the `N:` address prefixes parse as
        // (unused) labels.
        let direct = parse_program(&original.to_listing()).unwrap();
        assert_eq!(direct, original);
    }

    #[test]
    fn at_targets_resolve_as_absolute_addresses() {
        let p = parse_program("beq r0, r0, @2\nhalt\nout r0\nhalt\n").unwrap();
        assert_eq!(p.len(), 4);
        assert!(parse_program("j @99\nhalt\n").is_err()); // out of range
    }
}
