use std::fmt;

/// One of the 32 general-purpose registers.
///
/// Register 0 ([`Reg::ZERO`]) is hardwired to zero, as on the MIPS R3000:
/// reads return 0 and writes are discarded, and dependence analyses treat it
/// as neither a source nor a sink.
///
/// # Example
///
/// ```
/// use dee_isa::Reg;
///
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 29);
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The number of architectural registers.
    pub const COUNT: usize = 32;

    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional return-value register.
    pub const RV: Reg = Reg(2);
    /// Conventional first argument register.
    pub const A0: Reg = Reg(4);
    /// Conventional second argument register.
    pub const A1: Reg = Reg(5);
    /// Conventional third argument register.
    pub const A2: Reg = Reg(6);
    /// Conventional fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Conventional stack pointer.
    pub const SP: Reg = Reg(29);
    /// Conventional frame pointer.
    pub const FP: Reg = Reg(30);
    /// Conventional link (return-address) register, written by `jal`.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < Self::COUNT as u8, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    #[must_use]
    pub const fn try_new(index: u8) -> Option<Self> {
        if index < Self::COUNT as u8 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
        assert_eq!(Reg::ZERO.index(), 0);
    }

    #[test]
    fn new_accepts_all_valid_indices() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::RA));
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(Reg::try_new(255), None);
    }

    #[test]
    fn all_yields_32_distinct() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::new(7).to_string(), "r7");
        assert_eq!(format!("{:?}", Reg::RA), "r31");
    }

    #[test]
    fn conventional_aliases() {
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::FP.index(), 30);
        assert_eq!(Reg::RA.index(), 31);
        assert_eq!(Reg::RV.index(), 2);
        assert_eq!(Reg::A0.index(), 4);
    }
}
