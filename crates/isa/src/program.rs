use std::fmt;
use std::ops::Index;

use crate::{Instr, Reg};

/// A validated, executable program: a sequence of instructions with all
/// branch targets resolved and in range.
///
/// Build programs with the [`Assembler`](crate::Assembler); `Program::new`
/// validates a raw instruction vector directly.
///
/// # Example
///
/// ```
/// use dee_isa::{Instr, Program, Reg};
///
/// let program = Program::new(vec![
///     Instr::Li { rd: Reg::new(1), imm: 42 },
///     Instr::Out { rs: Reg::new(1) },
///     Instr::Halt,
/// ])?;
/// assert_eq!(program.len(), 3);
/// # Ok::<(), dee_isa::ProgramError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    instrs: Vec<Instr>,
}

/// Error returned when validating a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// The instruction vector was empty.
    Empty,
    /// A branch or jump at `pc` targets `target`, which is out of range.
    TargetOutOfRange {
        /// Address of the offending instruction.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// The program contains no `halt`, so execution could run off the end.
    NoHalt,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProgramError::Empty => f.write_str("program is empty"),
            ProgramError::TargetOutOfRange { pc, target } => {
                write!(
                    f,
                    "instruction at {pc} targets out-of-range address {target}"
                )
            }
            ProgramError::NoHalt => f.write_str("program contains no halt instruction"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Validates a raw instruction vector into a `Program`.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] when the vector is empty, any static branch
    /// or jump target is out of range, or no `halt` is present.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = instrs.len() as u32;
        for (pc, instr) in instrs.iter().enumerate() {
            if let Some(target) = instr.static_target() {
                if target >= len {
                    return Err(ProgramError::TargetOutOfRange {
                        pc: pc as u32,
                        target,
                    });
                }
            }
        }
        if !instrs.iter().any(|i| matches!(i, Instr::Halt)) {
            return Err(ProgramError::NoHalt);
        }
        Ok(Program { instrs })
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at address `pc`, or `None` when out of range.
    #[must_use]
    pub fn get(&self, pc: u32) -> Option<&Instr> {
        self.instrs.get(pc as usize)
    }

    /// Iterates over `(pc, instruction)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Instr)> {
        self.instrs.iter().enumerate().map(|(i, x)| (i as u32, x))
    }

    /// All instructions as a slice.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Addresses of all conditional branches, in address order.
    #[must_use]
    pub fn cond_branch_pcs(&self) -> Vec<u32> {
        self.iter()
            .filter(|(_, i)| i.is_cond_branch())
            .map(|(pc, _)| pc)
            .collect()
    }

    /// A register that is read somewhere before being written, other than
    /// `r0`; useful for catching uninitialized-register bugs in hand-written
    /// workloads. This is a conservative linear scan (ignores control flow).
    #[must_use]
    pub fn linearly_uninitialized_use(&self) -> Option<(u32, Reg)> {
        let mut written = [false; Reg::COUNT];
        written[0] = true;
        for (pc, instr) in self.iter() {
            for r in instr.uses().into_iter().flatten() {
                if !written[r.index()] {
                    return Some((pc, r));
                }
            }
            if let Some(d) = instr.def() {
                written[d.index()] = true;
            }
        }
        None
    }

    /// Renders the program as readable assembly text with addresses.
    #[must_use]
    pub fn to_listing(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (pc, instr) in self.iter() {
            let _ = writeln!(out, "{pc:5}: {instr}");
        }
        out
    }
}

impl Index<u32> for Program {
    type Output = Instr;

    fn index(&self, pc: u32) -> &Instr {
        &self.instrs[pc as usize]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BranchCond};

    fn halt_only() -> Vec<Instr> {
        vec![Instr::Halt]
    }

    #[test]
    fn validates_minimal_program() {
        let p = Program::new(halt_only()).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.get(0), Some(&Instr::Halt));
        assert_eq!(p.get(1), None);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::new(vec![]).unwrap_err(), ProgramError::Empty);
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = Program::new(vec![Instr::Jump { target: 9 }, Instr::Halt]).unwrap_err();
        assert_eq!(err, ProgramError::TargetOutOfRange { pc: 0, target: 9 });
        assert!(err.to_string().contains("out-of-range"));
    }

    #[test]
    fn rejects_no_halt() {
        let err = Program::new(vec![Instr::Nop]).unwrap_err();
        assert_eq!(err, ProgramError::NoHalt);
    }

    #[test]
    fn cond_branch_pcs_finds_branches_only() {
        let p = Program::new(vec![
            Instr::Nop,
            Instr::Branch {
                cond: BranchCond::Eq,
                rs: Reg::new(1),
                rt: Reg::ZERO,
                target: 0,
            },
            Instr::Jump { target: 0 },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.cond_branch_pcs(), vec![1]);
    }

    #[test]
    fn uninitialized_use_detection() {
        let p = Program::new(vec![
            Instr::Li {
                rd: Reg::new(1),
                imm: 1,
            },
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(2),
                rs: Reg::new(1),
                rt: Reg::new(3),
            },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(p.linearly_uninitialized_use(), Some((1, Reg::new(3))));

        let clean = Program::new(vec![
            Instr::Li {
                rd: Reg::new(3),
                imm: 0,
            },
            Instr::Out { rs: Reg::new(3) },
            Instr::Halt,
        ])
        .unwrap();
        assert_eq!(clean.linearly_uninitialized_use(), None);
    }

    #[test]
    fn listing_contains_every_instruction() {
        let p = Program::new(vec![
            Instr::Li {
                rd: Reg::new(1),
                imm: 5,
            },
            Instr::Halt,
        ])
        .unwrap();
        let listing = p.to_listing();
        assert!(listing.contains("li r1, 5"));
        assert!(listing.contains("halt"));
        assert_eq!(p.to_string(), listing);
    }

    #[test]
    fn index_operator() {
        let p = Program::new(halt_only()).unwrap();
        assert_eq!(p[0], Instr::Halt);
    }
}
