use std::collections::VecDeque;

use crate::wire::{put_u32, Cursor};
use crate::BranchPredictor;

/// PAp two-level adaptive predictor (Yeh & Patt): a per-branch history
/// register indexing a per-branch pattern history table of 2-bit counters.
///
/// The paper (§4.3) proposes PAp "with history register lengths of 2 bits,
/// and one pattern history table per row", updated *speculatively* with
/// predicted directions so that many instances of the same static branch can
/// be predicted while earlier ones are still unresolved. This implementation
/// supports both modes:
///
/// * **speculative** (the Levo design): `predict` shifts the prediction into
///   the history immediately; `resolve` later retires the oldest outstanding
///   prediction, trains the pattern table under the history the prediction
///   was made with, and resynchronizes the speculative history from actual
///   outcomes after a misprediction (modelling the squash of younger
///   speculation);
/// * **non-speculative**: history only advances at `resolve`, like the
///   2-bit counter scheme. Under delayed resolution this mode predicts many
///   instances from a stale history.
#[derive(Clone, Debug)]
pub struct PapAdaptive {
    history_bits: u32,
    speculative: bool,
    branches: Vec<Option<BranchState>>,
}

#[derive(Clone, Debug)]
struct BranchState {
    /// Speculative history (includes predicted, unresolved directions).
    spec_hist: u8,
    /// Architectural history (actual outcomes only).
    actual_hist: u8,
    /// Pattern history table of 2-bit counters, 2^history_bits entries.
    pht: Vec<u8>,
    /// Outstanding predictions: (history index used, predicted direction).
    pending: VecDeque<(u8, bool)>,
}

impl BranchState {
    fn new(history_bits: u32) -> Self {
        BranchState {
            spec_hist: 0,
            actual_hist: 0,
            // Weakly taken, matching the counter scheme's initialization.
            pht: vec![2; 1 << history_bits],
            pending: VecDeque::new(),
        }
    }
}

impl PapAdaptive {
    /// Creates a PAp predictor with the paper's parameters: 2 history bits,
    /// speculative update.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(2, true)
    }

    /// Creates a PAp predictor with `history_bits` bits of per-branch
    /// history (1..=8) and the given update mode.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 8.
    #[must_use]
    pub fn with_config(history_bits: u32, speculative: bool) -> Self {
        assert!(
            (1..=8).contains(&history_bits),
            "history_bits must be in 1..=8"
        );
        PapAdaptive {
            history_bits,
            speculative,
            branches: Vec::new(),
        }
    }

    fn mask(&self) -> u8 {
        ((1u16 << self.history_bits) - 1) as u8
    }

    fn state_mut(&mut self, pc: u32) -> &mut BranchState {
        let idx = pc as usize;
        if idx >= self.branches.len() {
            self.branches.resize(idx + 1, None);
        }
        let bits = self.history_bits;
        self.branches[idx].get_or_insert_with(|| BranchState::new(bits))
    }
}

impl Default for PapAdaptive {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for PapAdaptive {
    fn predict(&mut self, pc: u32) -> bool {
        let mask = self.mask();
        let speculative = self.speculative;
        let st = self.state_mut(pc);
        let idx = if speculative {
            st.spec_hist & mask
        } else {
            st.actual_hist & mask
        };
        let prediction = st.pht[idx as usize] >= 2;
        if speculative {
            st.pending.push_back((idx, prediction));
            st.spec_hist = ((st.spec_hist << 1) | u8::from(prediction)) & mask;
        }
        prediction
    }

    fn resolve(&mut self, pc: u32, taken: bool) {
        let mask = self.mask();
        let speculative = self.speculative;
        let st = self.state_mut(pc);
        let (idx, predicted) = if speculative {
            match st.pending.pop_front() {
                Some(entry) => entry,
                // Resolution without a prior prediction: train under the
                // architectural history.
                None => (st.actual_hist & mask, taken),
            }
        } else {
            (st.actual_hist & mask, taken)
        };
        let counter = &mut st.pht[idx as usize];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        st.actual_hist = ((st.actual_hist << 1) | u8::from(taken)) & mask;
        if speculative && predicted != taken {
            // A misprediction squashes younger speculation of this branch:
            // discard outstanding predictions and resynchronize the
            // speculative history with reality.
            st.pending.clear();
            st.spec_hist = st.actual_hist;
        }
    }

    fn name(&self) -> &'static str {
        if self.speculative {
            "pap-spec"
        } else {
            "pap"
        }
    }

    fn save_state(&self) -> Vec<u8> {
        // Canonical form: trailing untracked branches are implicit.
        let used = self
            .branches
            .iter()
            .rposition(Option::is_some)
            .map_or(0, |i| i + 1);
        let mut out = Vec::new();
        put_u32(&mut out, self.history_bits);
        out.push(u8::from(self.speculative));
        put_u32(&mut out, used as u32);
        for slot in &self.branches[..used] {
            match slot {
                None => out.push(0),
                Some(st) => {
                    out.push(1);
                    out.push(st.spec_hist);
                    out.push(st.actual_hist);
                    out.extend_from_slice(&st.pht);
                    put_u32(&mut out, st.pending.len() as u32);
                    for &(idx, predicted) in &st.pending {
                        out.push(idx);
                        out.push(u8::from(predicted));
                    }
                }
            }
        }
        out
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut cur = Cursor::new(bytes);
        let history_bits = cur.u32()?;
        if !(1..=8).contains(&history_bits) {
            return Err(format!("pap: bad history_bits {history_bits}"));
        }
        let speculative = match cur.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("pap: bad speculative flag {other}")),
        };
        let mask = ((1u16 << history_bits) - 1) as u8;
        let pht_len = 1usize << history_bits;
        let used = cur.u32()? as usize;
        let mut branches: Vec<Option<BranchState>> = Vec::with_capacity(used);
        for slot in 0..used {
            match cur.u8()? {
                0 => branches.push(None),
                1 => {
                    let spec_hist = cur.u8()?;
                    let actual_hist = cur.u8()?;
                    if spec_hist & !mask != 0 || actual_hist & !mask != 0 {
                        return Err(format!("pap: branch {slot} history exceeds mask"));
                    }
                    let pht = cur.bytes(pht_len)?.to_vec();
                    if let Some(&bad) = pht.iter().find(|&&c| c > 3) {
                        return Err(format!("pap: counter state {bad} out of range"));
                    }
                    let pending_len = cur.u32()? as usize;
                    let mut pending = VecDeque::with_capacity(pending_len);
                    for _ in 0..pending_len {
                        let idx = cur.u8()?;
                        if idx & !mask != 0 {
                            return Err(format!("pap: pending index {idx} exceeds mask"));
                        }
                        let predicted = match cur.u8()? {
                            0 => false,
                            1 => true,
                            other => return Err(format!("pap: bad direction byte {other}")),
                        };
                        pending.push_back((idx, predicted));
                    }
                    branches.push(Some(BranchState {
                        spec_hist,
                        actual_hist,
                        pht,
                        pending,
                    }));
                }
                other => return Err(format!("pap: bad presence byte {other}")),
            }
        }
        cur.finish()?;
        self.history_bits = history_bits;
        self.speculative = speculative;
        self.branches = branches;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern_counter_cannot() {
        // T,N,T,N,... — a 2-bit counter oscillates; PAp learns it exactly.
        let mut pap = PapAdaptive::with_config(2, false);
        let mut hits = 0;
        let total = 200;
        for i in 0..total {
            let taken = i % 2 == 0;
            if pap.predict(0) == taken {
                hits += 1;
            }
            pap.resolve(0, taken);
        }
        // After warm-up the pattern is fully predictable.
        assert!(hits > total - 20, "hits = {hits}");
    }

    #[test]
    fn speculative_mode_tracks_immediate_resolution() {
        // With immediate resolution, speculative and non-speculative modes
        // behave identically on a learnable pattern.
        let pattern: Vec<bool> = (0..300).map(|i| i % 3 != 2).collect();
        let mut spec = PapAdaptive::with_config(2, true);
        let mut nonspec = PapAdaptive::with_config(2, false);
        let (mut hits_s, mut hits_n) = (0, 0);
        for &taken in &pattern {
            if spec.predict(0) == taken {
                hits_s += 1;
            }
            spec.resolve(0, taken);
            if nonspec.predict(0) == taken {
                hits_n += 1;
            }
            nonspec.resolve(0, taken);
        }
        assert!(hits_s > 250, "speculative hits = {hits_s}");
        assert!((i64::from(hits_s) - i64::from(hits_n)).abs() < 20);
    }

    #[test]
    fn speculative_mode_survives_delayed_resolution() {
        // Predict 4 instances before resolving any. The speculatively
        // updated history keeps advancing with predictions, so once the
        // pattern table is trained, an alternating branch stays perfectly
        // predicted — this is §4.3's argument for PAp-with-speculative-
        // update in a machine with many unresolved branches. A 2-bit
        // counter in the same regime is at chance.
        let pattern: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let delay = 4;
        let run = |p: &mut dyn crate::BranchPredictor| -> u32 {
            let mut hits = 0;
            let mut pending: VecDeque<bool> = VecDeque::new();
            for &taken in &pattern {
                if p.predict(0) == taken {
                    hits += 1;
                }
                pending.push_back(taken);
                if pending.len() > delay {
                    let old = pending.pop_front().unwrap();
                    p.resolve(0, old);
                }
            }
            while let Some(old) = pending.pop_front() {
                p.resolve(0, old);
            }
            hits
        };
        let spec_hits = run(&mut PapAdaptive::with_config(2, true));
        let counter_hits = run(&mut crate::TwoBitCounter::new());
        assert!(spec_hits > 360, "speculative PAp hits = {spec_hits}/400");
        assert!(
            counter_hits < 260,
            "counter should be near chance, got {counter_hits}/400"
        );
    }

    #[test]
    fn independent_per_branch_state() {
        let mut p = PapAdaptive::new();
        for _ in 0..8 {
            p.resolve(1, false);
        }
        // Branch 1 trained not-taken under its history; branch 2 untouched.
        assert!(p.predict(2));
    }

    #[test]
    #[should_panic(expected = "history_bits must be in 1..=8")]
    fn rejects_zero_history() {
        let _ = PapAdaptive::with_config(0, true);
    }

    #[test]
    fn resolve_without_predict_is_tolerated() {
        let mut p = PapAdaptive::new();
        p.resolve(0, true);
        p.resolve(0, true);
        assert!(p.predict(0));
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(PapAdaptive::with_config(2, true).name(), "pap-spec");
        assert_eq!(PapAdaptive::with_config(2, false).name(), "pap");
    }

    #[test]
    fn state_roundtrip_preserves_outstanding_speculation() {
        // Leave predictions in flight when the snapshot is cut — the
        // restored predictor must retire them in the same order.
        let mut p = PapAdaptive::new();
        for i in 0..50u32 {
            p.predict(i % 5);
            if i % 3 == 0 {
                p.resolve(i % 5, i % 2 == 0);
            }
        }
        let blob = p.save_state();
        let mut q = PapAdaptive::new();
        q.load_state(&blob).expect("loads");
        for i in 0..100u32 {
            let pc = i % 5;
            assert_eq!(p.predict(pc), q.predict(pc), "step {i}");
            let taken = i % 7 < 3;
            p.resolve(pc, taken);
            q.resolve(pc, taken);
        }
        assert_eq!(p.save_state(), q.save_state());
    }

    #[test]
    fn state_blob_is_canonical_over_table_growth() {
        // Touching a high pc then only ever training a low one leaves
        // trailing empty slots; they must not appear in the blob.
        let mut a = PapAdaptive::new();
        a.resolve(2, true);
        let mut b = PapAdaptive::new();
        b.predict(900); // grows the table
        b.resolve(900, true); // retires the lone prediction...
        let blob_b = b.save_state();
        b.load_state(&a.save_state()).expect("loads");
        assert_eq!(b.save_state(), a.save_state());
        // ...but slot 900 itself is live state and is preserved.
        let mut c = PapAdaptive::new();
        c.load_state(&blob_b).expect("loads");
        assert_eq!(c.save_state(), blob_b);
    }

    #[test]
    fn load_rejects_malformed_state() {
        let mut p = PapAdaptive::new();
        assert!(p.load_state(&[]).is_err(), "empty blob");
        let mut blob = Vec::new();
        crate::wire::put_u32(&mut blob, 9); // history_bits out of range
        blob.push(1);
        crate::wire::put_u32(&mut blob, 0);
        assert!(p.load_state(&blob).is_err(), "bad history_bits");
        let mut blob = Vec::new();
        crate::wire::put_u32(&mut blob, 2);
        blob.push(7); // bad speculative flag
        crate::wire::put_u32(&mut blob, 0);
        assert!(p.load_state(&blob).is_err(), "bad flag");
        let good = PapAdaptive::new().save_state();
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(p.load_state(&trailing).is_err(), "trailing bytes");
        assert!(p.load_state(&good).is_ok(), "pristine blob loads");
    }
}
