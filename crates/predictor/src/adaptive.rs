use std::collections::VecDeque;

use crate::BranchPredictor;

/// PAp two-level adaptive predictor (Yeh & Patt): a per-branch history
/// register indexing a per-branch pattern history table of 2-bit counters.
///
/// The paper (§4.3) proposes PAp "with history register lengths of 2 bits,
/// and one pattern history table per row", updated *speculatively* with
/// predicted directions so that many instances of the same static branch can
/// be predicted while earlier ones are still unresolved. This implementation
/// supports both modes:
///
/// * **speculative** (the Levo design): `predict` shifts the prediction into
///   the history immediately; `resolve` later retires the oldest outstanding
///   prediction, trains the pattern table under the history the prediction
///   was made with, and resynchronizes the speculative history from actual
///   outcomes after a misprediction (modelling the squash of younger
///   speculation);
/// * **non-speculative**: history only advances at `resolve`, like the
///   2-bit counter scheme. Under delayed resolution this mode predicts many
///   instances from a stale history.
#[derive(Clone, Debug)]
pub struct PapAdaptive {
    history_bits: u32,
    speculative: bool,
    branches: Vec<Option<BranchState>>,
}

#[derive(Clone, Debug)]
struct BranchState {
    /// Speculative history (includes predicted, unresolved directions).
    spec_hist: u8,
    /// Architectural history (actual outcomes only).
    actual_hist: u8,
    /// Pattern history table of 2-bit counters, 2^history_bits entries.
    pht: Vec<u8>,
    /// Outstanding predictions: (history index used, predicted direction).
    pending: VecDeque<(u8, bool)>,
}

impl BranchState {
    fn new(history_bits: u32) -> Self {
        BranchState {
            spec_hist: 0,
            actual_hist: 0,
            // Weakly taken, matching the counter scheme's initialization.
            pht: vec![2; 1 << history_bits],
            pending: VecDeque::new(),
        }
    }
}

impl PapAdaptive {
    /// Creates a PAp predictor with the paper's parameters: 2 history bits,
    /// speculative update.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(2, true)
    }

    /// Creates a PAp predictor with `history_bits` bits of per-branch
    /// history (1..=8) and the given update mode.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 8.
    #[must_use]
    pub fn with_config(history_bits: u32, speculative: bool) -> Self {
        assert!(
            (1..=8).contains(&history_bits),
            "history_bits must be in 1..=8"
        );
        PapAdaptive {
            history_bits,
            speculative,
            branches: Vec::new(),
        }
    }

    fn mask(&self) -> u8 {
        ((1u16 << self.history_bits) - 1) as u8
    }

    fn state_mut(&mut self, pc: u32) -> &mut BranchState {
        let idx = pc as usize;
        if idx >= self.branches.len() {
            self.branches.resize(idx + 1, None);
        }
        let bits = self.history_bits;
        self.branches[idx].get_or_insert_with(|| BranchState::new(bits))
    }
}

impl Default for PapAdaptive {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for PapAdaptive {
    fn predict(&mut self, pc: u32) -> bool {
        let mask = self.mask();
        let speculative = self.speculative;
        let st = self.state_mut(pc);
        let idx = if speculative {
            st.spec_hist & mask
        } else {
            st.actual_hist & mask
        };
        let prediction = st.pht[idx as usize] >= 2;
        if speculative {
            st.pending.push_back((idx, prediction));
            st.spec_hist = ((st.spec_hist << 1) | u8::from(prediction)) & mask;
        }
        prediction
    }

    fn resolve(&mut self, pc: u32, taken: bool) {
        let mask = self.mask();
        let speculative = self.speculative;
        let st = self.state_mut(pc);
        let (idx, predicted) = if speculative {
            match st.pending.pop_front() {
                Some(entry) => entry,
                // Resolution without a prior prediction: train under the
                // architectural history.
                None => (st.actual_hist & mask, taken),
            }
        } else {
            (st.actual_hist & mask, taken)
        };
        let counter = &mut st.pht[idx as usize];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        st.actual_hist = ((st.actual_hist << 1) | u8::from(taken)) & mask;
        if speculative && predicted != taken {
            // A misprediction squashes younger speculation of this branch:
            // discard outstanding predictions and resynchronize the
            // speculative history with reality.
            st.pending.clear();
            st.spec_hist = st.actual_hist;
        }
    }

    fn name(&self) -> &'static str {
        if self.speculative {
            "pap-spec"
        } else {
            "pap"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern_counter_cannot() {
        // T,N,T,N,... — a 2-bit counter oscillates; PAp learns it exactly.
        let mut pap = PapAdaptive::with_config(2, false);
        let mut hits = 0;
        let total = 200;
        for i in 0..total {
            let taken = i % 2 == 0;
            if pap.predict(0) == taken {
                hits += 1;
            }
            pap.resolve(0, taken);
        }
        // After warm-up the pattern is fully predictable.
        assert!(hits > total - 20, "hits = {hits}");
    }

    #[test]
    fn speculative_mode_tracks_immediate_resolution() {
        // With immediate resolution, speculative and non-speculative modes
        // behave identically on a learnable pattern.
        let pattern: Vec<bool> = (0..300).map(|i| i % 3 != 2).collect();
        let mut spec = PapAdaptive::with_config(2, true);
        let mut nonspec = PapAdaptive::with_config(2, false);
        let (mut hits_s, mut hits_n) = (0, 0);
        for &taken in &pattern {
            if spec.predict(0) == taken {
                hits_s += 1;
            }
            spec.resolve(0, taken);
            if nonspec.predict(0) == taken {
                hits_n += 1;
            }
            nonspec.resolve(0, taken);
        }
        assert!(hits_s > 250, "speculative hits = {hits_s}");
        assert!((i64::from(hits_s) - i64::from(hits_n)).abs() < 20);
    }

    #[test]
    fn speculative_mode_survives_delayed_resolution() {
        // Predict 4 instances before resolving any. The speculatively
        // updated history keeps advancing with predictions, so once the
        // pattern table is trained, an alternating branch stays perfectly
        // predicted — this is §4.3's argument for PAp-with-speculative-
        // update in a machine with many unresolved branches. A 2-bit
        // counter in the same regime is at chance.
        let pattern: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let delay = 4;
        let run = |p: &mut dyn crate::BranchPredictor| -> u32 {
            let mut hits = 0;
            let mut pending: VecDeque<bool> = VecDeque::new();
            for &taken in &pattern {
                if p.predict(0) == taken {
                    hits += 1;
                }
                pending.push_back(taken);
                if pending.len() > delay {
                    let old = pending.pop_front().unwrap();
                    p.resolve(0, old);
                }
            }
            while let Some(old) = pending.pop_front() {
                p.resolve(0, old);
            }
            hits
        };
        let spec_hits = run(&mut PapAdaptive::with_config(2, true));
        let counter_hits = run(&mut crate::TwoBitCounter::new());
        assert!(spec_hits > 360, "speculative PAp hits = {spec_hits}/400");
        assert!(
            counter_hits < 260,
            "counter should be near chance, got {counter_hits}/400"
        );
    }

    #[test]
    fn independent_per_branch_state() {
        let mut p = PapAdaptive::new();
        for _ in 0..8 {
            p.resolve(1, false);
        }
        // Branch 1 trained not-taken under its history; branch 2 untouched.
        assert!(p.predict(2));
    }

    #[test]
    #[should_panic(expected = "history_bits must be in 1..=8")]
    fn rejects_zero_history() {
        let _ = PapAdaptive::with_config(0, true);
    }

    #[test]
    fn resolve_without_predict_is_tolerated() {
        let mut p = PapAdaptive::new();
        p.resolve(0, true);
        p.resolve(0, true);
        assert!(p.predict(0));
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(PapAdaptive::with_config(2, true).name(), "pap-spec");
        assert_eq!(PapAdaptive::with_config(2, false).name(), "pap");
    }
}
