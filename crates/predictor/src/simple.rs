use crate::wire::{put_u32, Cursor};
use crate::BranchPredictor;

/// Predicts every branch taken. A floor baseline: dynamic traces of loopy
/// integer code are mostly taken branches.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysTaken;

impl AlwaysTaken {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        AlwaysTaken
    }
}

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u32) -> bool {
        true
    }

    fn resolve(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// Static backward-taken / forward-not-taken prediction.
///
/// Needs the branch's taken-target to compare against its address, so it is
/// constructed over a program's branch target map.
#[derive(Clone, Debug, Default)]
pub struct Btfn {
    /// `targets[pc]` = taken target of the conditional branch at `pc`.
    targets: Vec<Option<u32>>,
}

impl Btfn {
    /// Creates a BTFN predictor from `(pc, target)` pairs for every
    /// conditional branch in the program.
    #[must_use]
    pub fn new(branch_targets: &[(u32, u32)]) -> Self {
        let mut targets = Vec::new();
        for &(pc, target) in branch_targets {
            let idx = pc as usize;
            if idx >= targets.len() {
                targets.resize(idx + 1, None);
            }
            targets[idx] = Some(target);
        }
        Btfn { targets }
    }
}

impl BranchPredictor for Btfn {
    fn predict(&mut self, pc: u32) -> bool {
        match self.targets.get(pc as usize).copied().flatten() {
            Some(target) => target <= pc, // backward => predict taken
            None => true,
        }
    }

    fn resolve(&mut self, _pc: u32, _taken: bool) {}

    fn name(&self) -> &'static str {
        "btfn"
    }
}

/// Gshare: a global history register XOR-hashed with the branch address
/// indexes a shared table of 2-bit counters (McFarling). Included as the
/// strongest "conventional hardware" comparison point for the predictor
/// accuracy study.
#[derive(Clone, Debug)]
pub struct Gshare {
    history: u32,
    history_bits: u32,
    table: Vec<u8>,
}

impl Gshare {
    /// Creates a gshare predictor with `2^table_bits` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= history_bits <= table_bits <= 24`.
    #[must_use]
    pub fn new(table_bits: u32, history_bits: u32) -> Self {
        assert!(
            history_bits >= 1 && history_bits <= table_bits && table_bits <= 24,
            "need 1 <= history_bits <= table_bits <= 24"
        );
        Gshare {
            history: 0,
            history_bits,
            table: vec![2; 1 << table_bits],
        }
    }

    fn index(&self, pc: u32) -> usize {
        let mask = (self.table.len() - 1) as u32;
        ((pc ^ self.history) & mask) as usize
    }
}

impl Default for Gshare {
    fn default() -> Self {
        Self::new(14, 12)
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u32) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn resolve(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        let counter = &mut self.table[idx];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        let hist_mask = (1u32 << self.history_bits) - 1;
        self.history = ((self.history << 1) | u32::from(taken)) & hist_mask;
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn save_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.table.len());
        put_u32(&mut out, self.history);
        put_u32(&mut out, self.history_bits);
        put_u32(&mut out, self.table.len() as u32);
        out.extend_from_slice(&self.table);
        out
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut cur = Cursor::new(bytes);
        let history = cur.u32()?;
        let history_bits = cur.u32()?;
        let table_len = cur.u32()? as usize;
        let table = cur.bytes(table_len)?.to_vec();
        cur.finish()?;
        if !table_len.is_power_of_two() || table_len > 1 << 24 {
            return Err(format!("gshare: bad table size {table_len}"));
        }
        let table_bits = table_len.trailing_zeros();
        if !(1..=table_bits).contains(&history_bits) {
            return Err(format!("gshare: bad history_bits {history_bits}"));
        }
        if history >> history_bits != 0 {
            return Err("gshare: history exceeds its mask".to_string());
        }
        if let Some(&bad) = table.iter().find(|&&c| c > 3) {
            return Err(format!("gshare: counter state {bad} out of range"));
        }
        self.history = history;
        self.history_bits = history_bits;
        self.table = table;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_is_constant() {
        let mut p = AlwaysTaken::new();
        assert!(p.predict(0));
        p.resolve(0, false);
        assert!(p.predict(0));
    }

    #[test]
    fn btfn_direction_from_target() {
        let mut p = Btfn::new(&[(10, 2), (20, 35)]);
        assert!(p.predict(10), "backward branch predicted taken");
        assert!(!p.predict(20), "forward branch predicted not taken");
        assert!(p.predict(99), "unknown branch defaults to taken");
    }

    #[test]
    fn btfn_self_loop_counts_as_backward() {
        let mut p = Btfn::new(&[(5, 5)]);
        assert!(p.predict(5));
    }

    #[test]
    fn gshare_learns_global_correlation() {
        // Branch B is taken exactly when the previous branch A was taken.
        // A per-branch counter cannot see this; gshare can.
        let mut g = Gshare::new(10, 4);
        let mut hits = 0;
        let total = 500;
        for i in 0..total {
            let a_taken = i % 3 == 0;
            g.resolve(100, a_taken); // branch A (not scored)
            let b_taken = a_taken;
            if g.predict(200) == b_taken {
                hits += 1;
            }
            g.resolve(200, b_taken);
        }
        assert!(hits > total * 9 / 10, "hits = {hits}/{total}");
    }

    #[test]
    fn gshare_history_masked() {
        let mut g = Gshare::new(4, 4);
        for _ in 0..100 {
            g.resolve(3, true);
        }
        // History saturated to all-ones within its mask; no panic, still
        // predicts.
        assert!(g.predict(3));
    }

    #[test]
    #[should_panic(expected = "need 1 <= history_bits <= table_bits")]
    fn gshare_rejects_bad_config() {
        let _ = Gshare::new(4, 8);
    }

    #[test]
    fn gshare_state_roundtrip_continues_identically() {
        let mut g = Gshare::new(10, 6);
        for i in 0..300u32 {
            g.resolve(i % 17, i % 5 != 0);
        }
        let blob = g.save_state();
        let mut h = Gshare::new(10, 6);
        h.load_state(&blob).expect("loads");
        for i in 0..200u32 {
            let pc = i % 13;
            assert_eq!(g.predict(pc), h.predict(pc), "step {i}");
            let taken = i % 7 < 4;
            g.resolve(pc, taken);
            h.resolve(pc, taken);
        }
        assert_eq!(g.save_state(), h.save_state());
    }

    #[test]
    fn gshare_load_rejects_malformed_state() {
        let mut g = Gshare::new(4, 2);
        assert!(g.load_state(&[]).is_err(), "empty blob");
        // Non-power-of-two table.
        let mut blob = Vec::new();
        crate::wire::put_u32(&mut blob, 0);
        crate::wire::put_u32(&mut blob, 2);
        crate::wire::put_u32(&mut blob, 3);
        blob.extend_from_slice(&[2, 2, 2]);
        assert!(g.load_state(&blob).is_err(), "table size not a power of 2");
        // History wider than its mask.
        let mut blob = Vec::new();
        crate::wire::put_u32(&mut blob, 0xFF);
        crate::wire::put_u32(&mut blob, 2);
        crate::wire::put_u32(&mut blob, 4);
        blob.extend_from_slice(&[2, 2, 2, 2]);
        assert!(g.load_state(&blob).is_err(), "history exceeds mask");
    }
}
