use crate::wire::{put_u32, Cursor};
use crate::BranchPredictor;

/// The classic 2-bit saturating up/down counter predictor (J. E. Smith,
/// 1981), one counter per static branch, exactly as in the paper's
/// simulations: "all of the counters were initialized to the non-saturated
/// taken state" (state 2 of 0..=3; 0–1 predict not-taken, 2–3 taken).
///
/// One counter per static instruction address — the Levo arrangement of one
/// predictor per Instruction Queue row — so there is no aliasing.
///
/// # Example
///
/// ```
/// use dee_predict::{BranchPredictor, TwoBitCounter};
///
/// let mut p = TwoBitCounter::new();
/// p.resolve(7, true);
/// assert!(p.predict(7));
/// // Two not-taken outcomes flip a weakly-taken counter.
/// p.resolve(7, false);
/// p.resolve(7, false);
/// p.resolve(7, false);
/// assert!(!p.predict(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TwoBitCounter {
    counters: Vec<u8>,
}

/// "Non-saturated taken": weakly taken.
const INIT_STATE: u8 = 2;

impl TwoBitCounter {
    /// Creates the predictor; counters materialize lazily at first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn counter_mut(&mut self, pc: u32) -> &mut u8 {
        let idx = pc as usize;
        if idx >= self.counters.len() {
            self.counters.resize(idx + 1, INIT_STATE);
        }
        &mut self.counters[idx]
    }

    /// The raw counter state (0..=3) for `pc`.
    #[must_use]
    pub fn state(&self, pc: u32) -> u8 {
        self.counters
            .get(pc as usize)
            .copied()
            .unwrap_or(INIT_STATE)
    }
}

impl BranchPredictor for TwoBitCounter {
    fn predict(&mut self, pc: u32) -> bool {
        self.state(pc) >= 2
    }

    fn resolve(&mut self, pc: u32, taken: bool) {
        let c = self.counter_mut(pc);
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "2bc"
    }

    fn save_state(&self) -> Vec<u8> {
        // Canonical form: trailing never-trained counters are implicit, so
        // behaviorally identical predictors serialize byte-identically even
        // if their tables grew differently.
        let used = self
            .counters
            .iter()
            .rposition(|&c| c != INIT_STATE)
            .map_or(0, |i| i + 1);
        let mut out = Vec::with_capacity(4 + used);
        put_u32(&mut out, used as u32);
        out.extend_from_slice(&self.counters[..used]);
        out
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut cur = Cursor::new(bytes);
        let n = cur.u32()? as usize;
        let counters = cur.bytes(n)?.to_vec();
        cur.finish()?;
        if let Some(&bad) = counters.iter().find(|&&c| c > 3) {
            return Err(format!("2bc: counter state {bad} out of range"));
        }
        self.counters = counters;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_weakly_taken() {
        let mut p = TwoBitCounter::new();
        assert_eq!(p.state(0), 2);
        assert!(p.predict(0));
        assert!(p.predict(12345));
    }

    #[test]
    fn saturates_at_both_ends() {
        let mut p = TwoBitCounter::new();
        for _ in 0..10 {
            p.resolve(0, true);
        }
        assert_eq!(p.state(0), 3);
        for _ in 0..10 {
            p.resolve(0, false);
        }
        assert_eq!(p.state(0), 0);
    }

    #[test]
    fn hysteresis_needs_two_flips() {
        let mut p = TwoBitCounter::new();
        p.resolve(0, true); // -> 3 (strong taken)
        p.resolve(0, false); // -> 2
        assert!(p.predict(0));
        p.resolve(0, false); // -> 1
        assert!(!p.predict(0));
    }

    #[test]
    fn counters_are_independent_per_pc() {
        let mut p = TwoBitCounter::new();
        p.resolve(5, false);
        p.resolve(5, false);
        assert!(!p.predict(5));
        assert!(p.predict(6));
    }

    #[test]
    fn state_roundtrip_is_canonical() {
        let mut p = TwoBitCounter::new();
        p.resolve(3, false);
        p.resolve(3, false);
        p.resolve(100, true);
        // Train pc 200 back to the init state: the canonical blob must not
        // distinguish "never touched" from "returned to init".
        p.resolve(200, true);
        p.resolve(200, false);
        let blob = p.save_state();
        let mut q = TwoBitCounter::new();
        q.load_state(&blob).expect("loads");
        for pc in [0, 3, 100, 200, 5000] {
            assert_eq!(p.state(pc), q.state(pc), "pc {pc}");
        }
        assert_eq!(q.save_state(), blob, "reserialization is stable");
        // An untouched predictor has a minimal, canonical blob too.
        assert_eq!(TwoBitCounter::new().save_state(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn load_rejects_garbage() {
        let mut p = TwoBitCounter::new();
        assert!(p.load_state(&[1, 0, 0]).is_err(), "truncated length");
        assert!(p.load_state(&[5, 0, 0, 0, 1]).is_err(), "short payload");
        assert!(
            p.load_state(&[1, 0, 0, 0, 9]).is_err(),
            "counter out of range"
        );
        assert!(
            p.load_state(&[0, 0, 0, 0, 7]).is_err(),
            "trailing bytes rejected"
        );
    }

    #[test]
    fn loop_pattern_mispredicts_only_exits() {
        // A 10-iteration loop repeated: T,T,...,T,N. After warm-up the
        // counter predicts taken throughout, missing only the exit.
        let mut p = TwoBitCounter::new();
        let mut misses = 0;
        for _rep in 0..5 {
            for i in 0..10 {
                let taken = i != 9;
                if p.predict(0) != taken {
                    misses += 1;
                }
                p.resolve(0, taken);
            }
        }
        assert_eq!(misses, 5, "one miss per loop exit");
    }
}
