//! Little-endian read/write helpers shared by the predictor state blobs.
//!
//! Kept deliberately tiny: fixed-width integers and length-prefixed byte
//! runs, with a cursor-style reader that fails closed on truncation so a
//! corrupted snapshot can never half-load a predictor.

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A failing-closed cursor over a state blob.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a blob.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "predictor state truncated".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "predictor state truncated".to_string())?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u32::from_le_bytes(raw))
    }

    /// Reads exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "predictor state truncated".to_string())?;
        let run = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(run)
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "predictor state has {} trailing bytes",
                self.bytes.len() - self.pos
            ))
        }
    }
}
