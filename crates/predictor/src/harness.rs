//! Accuracy measurement over captured traces.
//!
//! [`measure_accuracy`] replays a trace's conditional branches through a
//! predictor with immediate resolution — the paper's simulator regime.
//! [`measure_accuracy_delayed`] resolves each branch only after `delay`
//! further branches have been predicted, modelling the many-unresolved-
//! branches regime of §4.3 that motivates speculative PAp update.
//! [`mispredict_flags`] produces the per-dynamic-instruction misprediction
//! flags the execution models consume.

use std::collections::VecDeque;

use dee_vm::Trace;

use crate::BranchPredictor;

/// Hit/miss counts from an accuracy measurement.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AccuracyReport {
    /// Dynamic conditional branches measured.
    pub branches: u64,
    /// Correct predictions.
    pub hits: u64,
}

impl AccuracyReport {
    /// Prediction accuracy in `[0, 1]`, or 1.0 for branch-free traces.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            self.hits as f64 / self.branches as f64
        }
    }
}

/// Replays `trace` through `predictor` with immediate resolution.
pub fn measure_accuracy(predictor: &mut dyn BranchPredictor, trace: &Trace) -> AccuracyReport {
    let mut report = AccuracyReport::default();
    for record in trace.records() {
        if let Some(outcome) = record.branch {
            report.branches += 1;
            if predictor.predict(record.pc) == outcome.taken {
                report.hits += 1;
            }
            predictor.resolve(record.pc, outcome.taken);
        }
    }
    report
}

/// Replays `trace` resolving each branch only after `delay` further
/// branches have been predicted (delay 0 = immediate).
pub fn measure_accuracy_delayed(
    predictor: &mut dyn BranchPredictor,
    trace: &Trace,
    delay: usize,
) -> AccuracyReport {
    let mut report = AccuracyReport::default();
    let mut pending: VecDeque<(u32, bool)> = VecDeque::new();
    for record in trace.records() {
        if let Some(outcome) = record.branch {
            report.branches += 1;
            if predictor.predict(record.pc) == outcome.taken {
                report.hits += 1;
            }
            pending.push_back((record.pc, outcome.taken));
            if pending.len() > delay {
                let (pc, taken) = pending.pop_front().expect("nonempty");
                predictor.resolve(pc, taken);
            }
        }
    }
    while let Some((pc, taken)) = pending.pop_front() {
        predictor.resolve(pc, taken);
    }
    report
}

/// Per-record misprediction flags: `flags[i]` is true iff record `i` is a
/// conditional branch that `predictor` (resolved immediately, as in the
/// paper's simulator) mispredicts. Non-branch records are `false`.
#[must_use]
pub fn mispredict_flags(predictor: &mut dyn BranchPredictor, trace: &Trace) -> Vec<bool> {
    let mut flags = vec![false; trace.len()];
    for (i, record) in trace.records().iter().enumerate() {
        if let Some(outcome) = record.branch {
            flags[i] = predictor.predict(record.pc) != outcome.taken;
            predictor.resolve(record.pc, outcome.taken);
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlwaysTaken, PapAdaptive, TwoBitCounter};
    use dee_vm::{BranchOutcome, Trace, TraceRecord};

    fn branch_record(pc: u32, taken: bool) -> TraceRecord {
        TraceRecord {
            pc,
            srcs: [None, None],
            dst: None,
            mem_read: None,
            mem_write: None,
            branch: Some(BranchOutcome { taken, target: 0 }),
            depth: 0,
        }
    }

    fn plain_record(pc: u32) -> TraceRecord {
        TraceRecord {
            pc,
            srcs: [None, None],
            dst: None,
            mem_read: None,
            mem_write: None,
            branch: None,
            depth: 0,
        }
    }

    fn trace_of(outcomes: &[(u32, bool)]) -> Trace {
        let records = outcomes
            .iter()
            .map(|&(pc, taken)| branch_record(pc, taken))
            .collect();
        Trace::from_parts(records, vec![])
    }

    #[test]
    fn always_taken_accuracy_equals_taken_rate() {
        let t = trace_of(&[(0, true), (0, true), (0, false), (0, true)]);
        let report = measure_accuracy(&mut AlwaysTaken::new(), &t);
        assert_eq!(report.branches, 4);
        assert_eq!(report.hits, 3);
        assert!((report.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_reports_perfect() {
        let t = Trace::from_parts(vec![plain_record(0)], vec![]);
        let report = measure_accuracy(&mut TwoBitCounter::new(), &t);
        assert_eq!(report.branches, 0);
        assert_eq!(report.accuracy(), 1.0);
    }

    #[test]
    fn counter_warms_up_on_biased_branch() {
        let outcomes: Vec<(u32, bool)> = (0..100).map(|_| (5, true)).collect();
        let report = measure_accuracy(&mut TwoBitCounter::new(), &trace_of(&outcomes));
        assert_eq!(report.hits, 100, "initialized taken: no misses");
    }

    #[test]
    fn mispredict_flags_align_with_records() {
        let records = vec![
            plain_record(0),
            branch_record(1, false), // counter inits taken -> mispredict
            plain_record(2),
            branch_record(1, false), // counter now weakly-not-taken -> hit
        ];
        let t = Trace::from_parts(records, vec![]);
        let flags = mispredict_flags(&mut TwoBitCounter::new(), &t);
        assert_eq!(flags, vec![false, true, false, false]);
    }

    #[test]
    fn delayed_resolution_degrades_counter() {
        // Period-2 loop exit pattern: 3 taken then 1 not, repeated. With
        // immediate resolution the counter misses only exits; with delay 8
        // it predicts from stale state and does no better (usually worse).
        let outcomes: Vec<(u32, bool)> = (0..400).map(|i| (0, i % 4 != 3)).collect();
        let immediate = measure_accuracy(&mut TwoBitCounter::new(), &trace_of(&outcomes));
        let delayed = measure_accuracy_delayed(&mut TwoBitCounter::new(), &trace_of(&outcomes), 8);
        assert!(immediate.hits >= delayed.hits);
    }

    #[test]
    fn delay_zero_matches_immediate() {
        let outcomes: Vec<(u32, bool)> = (0..97).map(|i| (3, i % 5 != 0)).collect();
        let t = trace_of(&outcomes);
        let a = measure_accuracy(&mut TwoBitCounter::new(), &t);
        let b = measure_accuracy_delayed(&mut TwoBitCounter::new(), &t, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn speculative_pap_beats_counter_under_delay() {
        // Strongly patterned branch (period 2) with 6 outstanding
        // predictions: the speculatively-updated PAp keeps its history
        // aligned; the counter sees stale training.
        let outcomes: Vec<(u32, bool)> = (0..600).map(|i| (0, i % 2 == 0)).collect();
        let t = trace_of(&outcomes);
        let pap = measure_accuracy_delayed(&mut PapAdaptive::with_config(2, true), &t, 6);
        let counter = measure_accuracy_delayed(&mut TwoBitCounter::new(), &t, 6);
        assert!(
            pap.hits > counter.hits,
            "pap {} should beat counter {}",
            pap.hits,
            counter.hits
        );
    }
}
