//! Branch predictors and the accuracy harness.
//!
//! The DEE evaluation (§5.1) uses "the classic 2-bit saturating up/down
//! counter method, all counters initialized to the non-saturated taken
//! state" ([`TwoBitCounter`]). The paper also discusses (§4.3) why a Levo
//! implementation would prefer PAp two-level adaptive prediction with
//! *speculative* history update ([`PapAdaptive`]): with many unresolved
//! branches outstanding per static branch, a counter that must see each
//! outcome before the next prediction degrades, while a speculatively
//! updated history register does not. The [`harness`] module measures both
//! effects, including the delayed-update regime.
//!
//! # Example
//!
//! ```
//! use dee_predict::{BranchPredictor, TwoBitCounter};
//!
//! let mut p = TwoBitCounter::new();
//! // Initialized weakly taken: first prediction is "taken".
//! assert!(p.predict(0));
//! p.resolve(0, false);
//! p.resolve(0, false);
//! assert!(!p.predict(0)); // trained not-taken
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod counters;
pub mod harness;
mod simple;
pub(crate) mod wire;

pub use adaptive::PapAdaptive;
pub use counters::TwoBitCounter;
pub use harness::{measure_accuracy, measure_accuracy_delayed, mispredict_flags, AccuracyReport};
pub use simple::{AlwaysTaken, Btfn, Gshare};

/// A dynamic branch-direction predictor.
///
/// `predict` may speculatively update internal state (e.g. PAp's history
/// registers); `resolve` delivers the actual outcome, possibly many
/// branches later. Trace-driven harnesses that resolve immediately model
/// the paper's simulator; delayed resolution models a machine with many
/// unresolved branches in flight.
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at static address
    /// `pc`.
    fn predict(&mut self, pc: u32) -> bool;

    /// Informs the predictor of the actual direction of the oldest
    /// outstanding prediction for `pc` (or simply trains it, for
    /// predictors without speculative state).
    fn resolve(&mut self, pc: u32, taken: bool);

    /// A short display name ("2bc", "pap", ...).
    fn name(&self) -> &'static str;

    /// Serializes the predictor's mutable state as a deterministic
    /// little-endian blob.
    ///
    /// Two predictors that have seen the same `predict`/`resolve` sequence
    /// produce byte-identical blobs, so the blob can participate in
    /// checksummed snapshot artifacts. Stateless predictors (the default)
    /// return an empty blob.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state previously produced by [`save_state`] on a predictor
    /// of the same type and configuration.
    ///
    /// After a successful load the predictor behaves exactly as the one the
    /// blob was saved from. Fails closed on malformed or mismatched blobs.
    /// The default (stateless) implementation accepts only an empty blob.
    ///
    /// [`save_state`]: BranchPredictor::save_state
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{}: stateless predictor given a {}-byte state blob",
                self.name(),
                bytes.len()
            ))
        }
    }
}
