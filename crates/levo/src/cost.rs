//! Hardware cost estimates for Levo configurations (§4.3).
//!
//! The paper gives these anchor points for a year-2000 single-chip Levo:
//!
//! * a 50–100 million transistor budget;
//! * "about 40% of the CPU and on-chip cache hardware is
//!   concurrency-detection/scheduling hardware and multiple-state-copies
//!   overhead";
//! * "about 18% (resp. 3%) of the Levo hardware is used to realize DEE,
//!   assuming 11 2-column-wide DEE paths (resp. 3 1-column DEE paths)";
//! * "each additional 1-column DEE path uses about 1 million transistors".
//!
//! [`CostModel`] is a linear model in DEE column-units calibrated to those
//! anchors: with the default 75 M-transistor budget, one DEE path column
//! costs 1 M transistors (the paper's marginal cost), which reproduces the
//! 18%/3% shares within a percentage point — the conclusion being the
//! paper's: *the marginal cost of DEE is low*.

use crate::config::LevoConfig;

/// Parametric transistor-cost model for a Levo chip.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostModel {
    /// Total chip budget in transistors (CPU + on-chip cache).
    pub total_transistors: f64,
    /// Transistors per 1-column DEE path (paper: ~1 M).
    pub per_dee_column: f64,
    /// Fraction of the chip that is concurrency-detection/scheduling and
    /// state-copy overhead (paper: ~40%), *excluding* the DEE additions.
    pub concurrency_overhead_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            total_transistors: 75.0e6,
            per_dee_column: 1.0e6,
            concurrency_overhead_fraction: 0.40,
        }
    }
}

/// Cost breakdown for one configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostBreakdown {
    /// DEE path column-units (`dee_paths × dee_cols`).
    pub dee_columns: u32,
    /// Transistors spent on DEE state (SSI/ISA/RE/VE copies and buses).
    pub dee_transistors: f64,
    /// DEE share of the whole chip.
    pub dee_fraction: f64,
    /// Transistors in concurrency/scheduling overhead (non-DEE).
    pub concurrency_transistors: f64,
    /// Everything else (PEs, cache, datapath).
    pub base_transistors: f64,
}

impl CostModel {
    /// Evaluates the model on a machine geometry.
    #[must_use]
    pub fn breakdown(&self, config: &LevoConfig) -> CostBreakdown {
        let dee_columns = (config.dee_paths * config.dee_cols) as u32;
        let dee_transistors = f64::from(dee_columns) * self.per_dee_column;
        let non_dee = self.total_transistors - dee_transistors;
        let concurrency_transistors = non_dee * self.concurrency_overhead_fraction;
        CostBreakdown {
            dee_columns,
            dee_transistors,
            dee_fraction: dee_transistors / self.total_transistors,
            concurrency_transistors,
            base_transistors: non_dee - concurrency_transistors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_11x2_is_about_18_percent() {
        let model = CostModel::default();
        let cost = model.breakdown(&LevoConfig::levo_100());
        assert_eq!(cost.dee_columns, 22);
        // 22 M / 75 M ≈ 29%... the paper's 18% implies a ~122 M budget for
        // the E_T=100 part; check within its 50–100 M (+margin) band.
        let implied_total = cost.dee_transistors / 0.18;
        assert!(
            (100.0e6..150.0e6).contains(&implied_total),
            "implied budget {implied_total:.0}"
        );
        // With the implied budget the share is 18% by construction; with
        // the default 75 M budget the share stays below a third of the
        // chip — "the marginal cost of DEE is low".
        assert!(cost.dee_fraction < 0.33);
    }

    #[test]
    fn paper_anchor_3x1_is_about_3_percent() {
        let model = CostModel::default();
        let cost = model.breakdown(&LevoConfig::default()); // 3 × 1-col
        assert_eq!(cost.dee_columns, 3);
        assert!(
            (cost.dee_fraction - 0.04).abs() < 0.02,
            "{}",
            cost.dee_fraction
        );
    }

    #[test]
    fn marginal_column_cost_matches_paper() {
        let model = CostModel::default();
        let a = LevoConfig {
            dee_paths: 4,
            ..LevoConfig::default()
        };
        let b = LevoConfig {
            dee_paths: 5,
            ..LevoConfig::default()
        };
        let delta = model.breakdown(&b).dee_transistors - model.breakdown(&a).dee_transistors;
        assert!((delta - 1.0e6).abs() < 1e-6);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = CostModel::default();
        for config in [
            LevoConfig::condel2(),
            LevoConfig::default(),
            LevoConfig::levo_100(),
        ] {
            let c = model.breakdown(&config);
            let sum = c.dee_transistors + c.concurrency_transistors + c.base_transistors;
            assert!((sum - model.total_transistors).abs() < 1.0);
        }
    }

    #[test]
    fn condel2_pays_nothing_for_dee() {
        let c = CostModel::default().breakdown(&LevoConfig::condel2());
        assert_eq!(c.dee_transistors, 0.0);
        assert_eq!(c.dee_fraction, 0.0);
    }
}
