/// Which per-row branch predictor the machine uses.
///
/// §4.3: "Although the standard 2-bit counter prediction method is
/// desirable ... it may not be possible", because many instances of a
/// static branch can be unresolved at once; "if PAp adaptive prediction is
/// used, with history register lengths of 2 bits ... the 90% prediction
/// accuracy should be realizable", thanks to speculative history update.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PredictorKind {
    /// Classic 2-bit saturating counter per row (trained at retire).
    #[default]
    TwoBit,
    /// PAp two-level adaptive with 2 history bits and speculative update.
    PapSpeculative,
}

/// Geometry and policy of a Levo machine instance.
///
/// The defaults are the paper's targets: a 32×8 Instruction Queue
/// (§4.2: "the matrix dimensions n × m are targeted to be 32 × 8") with
/// three single-column DEE paths (the `E_T = 32` configuration of §4.3;
/// use 11 two-column paths for the `E_T = 100` single-chip target).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LevoConfig {
    /// IQ rows: static instructions in the window (`n`).
    pub n: usize,
    /// Iteration columns per row (`m`): loop instances in flight.
    pub m: usize,
    /// Number of DEE paths (DEE'd branches), `h_DEE`. 0 disables DEE,
    /// leaving the CONDEL-2 base machine.
    pub dee_paths: usize,
    /// Columns per DEE path (1 or 2 in the paper's configurations).
    pub dee_cols: usize,
    /// Instances dispatched per cycle.
    pub fetch_width: usize,
    /// Extra cycles lost on an uncovered misprediction (§4.3: "currently
    /// one cycle").
    pub mispredict_penalty: u32,
    /// Per-row branch predictor kind.
    pub predictor: PredictorKind,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl Default for LevoConfig {
    fn default() -> Self {
        LevoConfig {
            n: 32,
            m: 8,
            dee_paths: 3,
            dee_cols: 1,
            fetch_width: 8,
            mispredict_penalty: 1,
            predictor: PredictorKind::TwoBit,
            max_cycles: 2_000_000_000,
        }
    }
}

impl LevoConfig {
    /// The paper's single-chip target: 11 two-column DEE paths
    /// (`E_T = 100` branch paths).
    #[must_use]
    pub fn levo_100() -> Self {
        LevoConfig {
            dee_paths: 11,
            dee_cols: 2,
            ..Self::default()
        }
    }

    /// The CONDEL-2 base machine: no DEE paths.
    #[must_use]
    pub fn condel2() -> Self {
        LevoConfig {
            dee_paths: 0,
            ..Self::default()
        }
    }

    /// Instructions a single DEE path holds (`n × dee_cols`).
    #[must_use]
    pub fn dee_path_len(&self) -> usize {
        self.n * self.dee_cols
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is out of its sane range.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.n > 4096 {
            return Err(format!("n = {} out of range 1..=4096", self.n));
        }
        if self.m == 0 || self.m > 64 {
            return Err(format!("m = {} out of range 1..=64", self.m));
        }
        if self.fetch_width == 0 || self.fetch_width > 4096 {
            return Err(format!(
                "fetch_width = {} out of range 1..=4096",
                self.fetch_width
            ));
        }
        if self.dee_paths > 0 && self.dee_cols == 0 {
            return Err("dee_cols must be positive when DEE paths exist".into());
        }
        // Upper bounds keep the per-instance allocation (n × m plus
        // dee_paths × n × dee_cols window slots) small enough that an
        // untrusted request cannot OOM the process.
        if self.dee_paths > 4096 {
            return Err(format!(
                "dee_paths = {} out of range 0..=4096",
                self.dee_paths
            ));
        }
        if self.dee_cols > 64 {
            return Err(format!("dee_cols = {} out of range 0..=64", self.dee_cols));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_targets() {
        let c = LevoConfig::default();
        assert_eq!((c.n, c.m), (32, 8));
        assert_eq!(c.dee_paths, 3);
        assert_eq!(c.mispredict_penalty, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn levo_100_has_eleven_two_column_paths() {
        let c = LevoConfig::levo_100();
        assert_eq!(c.dee_paths, 11);
        assert_eq!(c.dee_cols, 2);
        assert_eq!(c.dee_path_len(), 64);
    }

    #[test]
    fn condel2_disables_dee() {
        assert_eq!(LevoConfig::condel2().dee_paths, 0);
    }

    #[test]
    fn validation_rejects_degenerate_geometry() {
        let c = LevoConfig {
            n: 0,
            ..LevoConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LevoConfig {
            m: 0,
            ..LevoConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LevoConfig {
            fetch_width: 0,
            ..LevoConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LevoConfig {
            dee_cols: 0,
            ..LevoConfig::default()
        };
        assert!(c.validate().is_err());
        let c = LevoConfig {
            dee_cols: 0,
            dee_paths: 0,
            ..LevoConfig::default()
        };
        assert!(c.validate().is_ok(), "dee_cols unused without paths");
    }

    #[test]
    fn validation_rejects_oversized_geometry() {
        for c in [
            LevoConfig {
                n: 4097,
                ..LevoConfig::default()
            },
            LevoConfig {
                m: 65,
                ..LevoConfig::default()
            },
            LevoConfig {
                fetch_width: 5000,
                ..LevoConfig::default()
            },
            LevoConfig {
                dee_paths: 5000,
                ..LevoConfig::default()
            },
            LevoConfig {
                dee_cols: 65,
                ..LevoConfig::default()
            },
        ] {
            assert!(c.validate().is_err(), "{c:?}");
        }
        // The largest documented configuration stays valid.
        assert!(LevoConfig::levo_100().validate().is_ok());
    }
}
