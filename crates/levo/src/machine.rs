use std::collections::VecDeque;
use std::fmt;

use dee_isa::{Instr, Program, Reg};
use dee_predict::{BranchPredictor, PapAdaptive, TwoBitCounter};
use dee_vm::{DecodedProgram, DEFAULT_MEM_WORDS};

use crate::config::LevoConfig;

/// One in-flight instruction instance (an (IQ-row, column) slot holder).
#[derive(Clone, Debug)]
struct Instance {
    pc: u32,
    instr: Instr,
    /// Pre-decoded `instr.def()`, filled at dispatch so the per-cycle ROB
    /// operand scans compare a cached field instead of re-matching the
    /// instruction for every older instance.
    def: Option<Reg>,
    /// Pre-decoded `matches!(instr, Instr::Sw { .. })`, for the same scans.
    is_sw: bool,
    /// Successor assumed at dispatch (prediction for branches and `jr`).
    predicted_next: u32,
    /// Cycle the instance entered the machine (DEE paths start executing
    /// in the shadow of their branch from this point on).
    dispatch_cycle: u64,
    exec: Option<Exec>,
}

#[derive(Clone, Copy, Debug)]
struct Exec {
    cycle: u64,
    /// Result value (ALU/load result, store value, `jal` link).
    value: Option<i32>,
    /// Effective memory address for loads/stores.
    addr: Option<u32>,
    /// Actual successor.
    actual_next: u32,
    /// Taken direction for conditional branches.
    taken: Option<bool>,
}

impl Instance {
    fn executed_before(&self, cycle: u64) -> bool {
        self.exec.is_some_and(|e| e.cycle < cycle)
    }
}

/// Error from a Levo run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LevoError {
    /// The configuration failed validation.
    Config(String),
    /// The cycle limit was reached before `halt` retired.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// No instance executed, retired, or dispatched for a long time — a
    /// model bug guard, not an architectural condition.
    Deadlock {
        /// Cycle at which the stall was detected.
        cycle: u64,
    },
}

impl fmt::Display for LevoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevoError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            LevoError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            LevoError::Deadlock { cycle } => write!(f, "no progress near cycle {cycle}"),
        }
    }
}

impl std::error::Error for LevoError {}

/// Statistics and results from a completed Levo run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LevoReport {
    /// Total machine cycles.
    pub cycles: u64,
    /// Instructions retired (committed; squashed work not counted).
    pub retired: u64,
    /// Instances dispatched (including squashed and injected).
    pub dispatched: u64,
    /// Instances squashed by mispredictions.
    pub squashed: u64,
    /// Mispredicted control transfers detected.
    pub mispredicts: u64,
    /// Mispredicts whose branch held a DEE path (state-copy recovery).
    pub dee_covered: u64,
    /// Correct-path instructions injected from DEE paths.
    pub dee_injected: u64,
    /// Linear-mode window advances.
    pub window_shifts: u64,
    /// Backward control transfers whose target stayed inside the window
    /// (captured loop iterations).
    pub captured_backjumps: u64,
    /// Backward transfers that forced a drain-and-move (uncaptured loops).
    pub uncaptured_backjumps: u64,
    /// The program's output stream.
    pub output: Vec<i32>,
}

impl LevoReport {
    /// Retired instructions per cycle — with unit latency this is also the
    /// speedup over the ideal sequential machine.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.retired as f64 / self.cycles.max(1) as f64
    }

    /// Fraction of backward control transfers captured by the IQ.
    #[must_use]
    pub fn loop_capture_rate(&self) -> Option<f64> {
        let total = self.captured_backjumps + self.uncaptured_backjumps;
        if total == 0 {
            return None;
        }
        Some(self.captured_backjumps as f64 / total as f64)
    }
}

/// The Levo machine: configure, then [`run`](Levo::run) a program.
pub struct Levo {
    config: LevoConfig,
}

impl Levo {
    /// Creates a machine with the given geometry.
    #[must_use]
    pub fn new(config: LevoConfig) -> Self {
        Levo { config }
    }

    /// Runs `program` to completion with `initial_memory` loaded at word 0.
    ///
    /// # Errors
    ///
    /// Returns [`LevoError`] on invalid configuration, cycle-limit
    /// overrun, or internal stall.
    pub fn run(&self, program: &Program, initial_memory: &[i32]) -> Result<LevoReport, LevoError> {
        self.config.validate().map_err(LevoError::Config)?;
        Engine::new(&self.config, program, initial_memory).run()
    }
}

/// Value lookup result during execute.
enum Operand {
    Ready(i32),
    NotReady,
}

struct Engine<'a> {
    config: &'a LevoConfig,
    program: &'a Program,
    /// Pre-decoded per-pc tables (defs, store flags) shared by every
    /// instance dispatched from that row.
    decoded: DecodedProgram,
    // Architectural (retired) state.
    regs: [i32; Reg::COUNT],
    mem: Vec<i32>,
    // When each architectural register/memory word was produced (execute
    // cycle of the retired producer); DEE-path pre-execution needs true
    // production times even for retired values.
    reg_time: [u64; Reg::COUNT],
    mem_time: std::collections::HashMap<u32, u64>,
    output: Vec<i32>,
    predictor: Box<dyn BranchPredictor>,
    // Machine state.
    rob: VecDeque<Instance>,
    row_count: Vec<u32>,
    w0: u32,
    dispatch_pc: u32,
    dispatch_resume: u64,
    dispatch_blocked: bool,
    ras: Vec<u32>,
    done: bool,
    cycle: u64,
    report: LevoReport,
}

impl<'a> Engine<'a> {
    fn new(config: &'a LevoConfig, program: &'a Program, initial_memory: &[i32]) -> Self {
        let mut mem = vec![0i32; DEFAULT_MEM_WORDS];
        mem[..initial_memory.len()].copy_from_slice(initial_memory);
        let mut regs = [0i32; Reg::COUNT];
        regs[Reg::SP.index()] = DEFAULT_MEM_WORDS as i32;
        Engine {
            config,
            program,
            decoded: DecodedProgram::compile(program),
            regs,
            mem,
            reg_time: [0; Reg::COUNT],
            mem_time: std::collections::HashMap::new(),
            output: Vec::new(),
            predictor: match config.predictor {
                crate::config::PredictorKind::TwoBit => Box::new(TwoBitCounter::new()),
                crate::config::PredictorKind::PapSpeculative => {
                    Box::new(PapAdaptive::with_config(2, true))
                }
            },
            rob: VecDeque::new(),
            row_count: vec![0; program.len()],
            w0: 0,
            dispatch_pc: 0,
            dispatch_resume: 0,
            dispatch_blocked: false,
            ras: Vec::new(),
            done: false,
            cycle: 0,
            report: LevoReport {
                cycles: 0,
                retired: 0,
                dispatched: 0,
                squashed: 0,
                mispredicts: 0,
                dee_covered: 0,
                dee_injected: 0,
                window_shifts: 0,
                captured_backjumps: 0,
                uncaptured_backjumps: 0,
                output: Vec::new(),
            },
        }
    }

    fn run(mut self) -> Result<LevoReport, LevoError> {
        let mut last_progress = 0u64;
        while !self.done {
            if self.cycle >= self.config.max_cycles {
                return Err(LevoError::CycleLimit {
                    limit: self.config.max_cycles,
                });
            }
            let executed = self.execute_phase();
            let retired = self.retire_phase();
            let dispatched = self.dispatch_phase();
            if executed + retired + dispatched > 0 {
                last_progress = self.cycle;
            } else if self.cycle - last_progress > 100_000 {
                return Err(LevoError::Deadlock { cycle: self.cycle });
            }
            self.cycle += 1;
        }
        self.report.cycles = self.cycle.max(1);
        self.report.output = self.output;
        Ok(self.report)
    }

    /// Latest in-flight writer of `reg` among instances older than `limit`
    /// (exclusive), falling back to architectural state.
    fn reg_operand(&self, reg: Reg, limit: usize, cycle: u64) -> Operand {
        if reg.is_zero() {
            return Operand::Ready(0);
        }
        for k in (0..limit).rev() {
            let inst = &self.rob[k];
            if inst.def == Some(reg) {
                return match inst.exec {
                    Some(e) if e.cycle < cycle => Operand::Ready(e.value.unwrap_or(0)),
                    _ => Operand::NotReady,
                };
            }
        }
        Operand::Ready(self.regs[reg.index()])
    }

    /// Like [`reg_operand`](Self::reg_operand) but also reports when the
    /// value became available (cycle 0 for architectural state). Used by
    /// DEE-path pre-execution to model the path's own data-flow timing.
    fn reg_operand_timed(&self, reg: Reg, limit: usize, cycle: u64) -> Option<(i32, u64)> {
        if reg.is_zero() {
            return Some((0, 0));
        }
        for k in (0..limit).rev() {
            let inst = &self.rob[k];
            if inst.def == Some(reg) {
                return match inst.exec {
                    Some(e) if e.cycle < cycle => Some((e.value.unwrap_or(0), e.cycle)),
                    _ => None,
                };
            }
        }
        Some((self.regs[reg.index()], self.reg_time[reg.index()]))
    }

    /// Timed counterpart of [`mem_operand`](Self::mem_operand).
    fn mem_operand_timed(&self, addr: u32, limit: usize, cycle: u64) -> Option<(i32, u64)> {
        for k in (0..limit).rev() {
            let inst = &self.rob[k];
            if inst.is_sw {
                match inst.exec {
                    Some(e) if e.cycle < cycle => {
                        if e.addr == Some(addr) {
                            return Some((e.value.unwrap_or(0), e.cycle));
                        }
                    }
                    _ => return None,
                }
            }
        }
        Some((
            self.mem.get(addr as usize).copied().unwrap_or(0),
            self.mem_time.get(&addr).copied().unwrap_or(0),
        ))
    }

    /// Memory read for a load at ROB position `limit`: forwards from the
    /// latest executed older store to the same word; conservatively waits
    /// while any older store's address is unknown.
    fn mem_operand(&self, addr: u32, limit: usize, cycle: u64) -> Operand {
        for k in (0..limit).rev() {
            let inst = &self.rob[k];
            if inst.is_sw {
                match inst.exec {
                    Some(e) if e.cycle < cycle => {
                        if e.addr == Some(addr) {
                            return Operand::Ready(e.value.unwrap_or(0));
                        }
                    }
                    _ => return Operand::NotReady,
                }
            }
        }
        Operand::Ready(self.mem.get(addr as usize).copied().unwrap_or(0))
    }

    /// Executes ready instances (one per IQ row per cycle); returns the
    /// number executed and handles the oldest misprediction.
    fn execute_phase(&mut self) -> u64 {
        let cycle = self.cycle;
        let mut row_busy: Vec<u32> = Vec::new();
        let mut executed = 0u64;
        let mut oldest_mispredict: Option<usize> = None;

        for k in 0..self.rob.len() {
            if self.rob[k].exec.is_some() {
                continue;
            }
            let pc = self.rob[k].pc;
            if row_busy.contains(&pc) {
                continue; // one PE per row
            }
            if let Some(exec) = self.try_execute(k, cycle) {
                let mispredict = exec.actual_next != self.rob[k].predicted_next;
                self.rob[k].exec = Some(exec);
                row_busy.push(pc);
                executed += 1;
                if mispredict && oldest_mispredict.is_none() {
                    oldest_mispredict = Some(k);
                }
            }
        }

        if let Some(k) = oldest_mispredict {
            self.handle_mispredict(k, cycle);
        }
        executed
    }

    /// Computes an instance's execution, or `None` when operands are not
    /// ready.
    fn try_execute(&self, k: usize, cycle: u64) -> Option<Exec> {
        let inst = &self.rob[k];
        let pc = inst.pc;
        let fall = pc + 1;
        let mut exec = Exec {
            cycle,
            value: None,
            addr: None,
            actual_next: fall,
            taken: None,
        };
        let reg = |r: Reg| -> Option<i32> {
            match self.reg_operand(r, k, cycle) {
                Operand::Ready(v) => Some(v),
                Operand::NotReady => None,
            }
        };
        match inst.instr {
            Instr::Alu { op, rs, rt, .. } => {
                exec.value = Some(op.apply(reg(rs)?, reg(rt)?));
            }
            Instr::AluImm { op, rs, imm, .. } => {
                exec.value = Some(op.apply(reg(rs)?, imm));
            }
            Instr::Li { imm, .. } => exec.value = Some(imm),
            Instr::Lw { base, offset, .. } => {
                let addr = i64::from(reg(base)?) + i64::from(offset);
                let addr = u32::try_from(addr).unwrap_or(u32::MAX);
                exec.addr = Some(addr);
                match self.mem_operand(addr, k, cycle) {
                    Operand::Ready(v) => exec.value = Some(v),
                    Operand::NotReady => return None,
                }
            }
            Instr::Sw { rs, base, offset } => {
                let addr = i64::from(reg(base)?) + i64::from(offset);
                exec.addr = Some(u32::try_from(addr).unwrap_or(u32::MAX));
                exec.value = Some(reg(rs)?);
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
                ..
            } => {
                let taken = cond.eval(reg(rs)?, reg(rt)?);
                exec.taken = Some(taken);
                exec.actual_next = if taken { target } else { fall };
            }
            Instr::Jump { target } => exec.actual_next = target,
            Instr::Jal { target } => {
                exec.value = Some(fall as i32);
                exec.actual_next = target;
            }
            Instr::Jr { rs } => {
                let t = reg(rs)?;
                exec.actual_next = u32::try_from(t).unwrap_or(u32::MAX);
            }
            Instr::Out { rs } => {
                exec.value = Some(reg(rs)?);
            }
            Instr::Halt => exec.actual_next = pc,
            Instr::Nop => {}
        }
        Some(exec)
    }

    /// Squash younger instances; recover through the DEE path when the
    /// branch holds a DEE slot, else redirect with the mispredict penalty.
    fn handle_mispredict(&mut self, k: usize, cycle: u64) {
        self.report.mispredicts += 1;
        let exec = self.rob[k].exec.expect("resolved");
        let is_cond = self.rob[k].instr.is_cond_branch();

        // DEE slot check: among the first `dee_paths` unresolved branches?
        // (Unresolved = not executed before this cycle; the DEE region
        // hangs off the pending branches at the top of the tree.)
        let older_unresolved = self
            .rob
            .iter()
            .take(k)
            .filter(|i| i.instr.is_cond_branch() && !i.executed_before(cycle))
            .count();
        let covered = is_cond && older_unresolved < self.config.dee_paths;

        // Squash everything younger.
        while self.rob.len() > k + 1 {
            let victim = self.rob.pop_back().expect("len checked");
            self.row_count[victim.pc as usize] -= 1;
            self.report.squashed += 1;
        }
        self.dispatch_blocked = false;
        self.dispatch_pc = exec.actual_next;

        if covered {
            self.report.dee_covered += 1;
            // State copy: the DEE path already executed the correct
            // continuation; its results become visible next cycle.
            let path_start = self.rob[k].dispatch_cycle;
            self.inject_dee_path(exec.actual_next, cycle, path_start);
            self.dispatch_resume = cycle + 1;
        } else {
            self.dispatch_resume = cycle + 1 + u64::from(self.config.mispredict_penalty);
        }
    }

    /// Functionally executes the correct-path continuation the DEE column
    /// held, appending its instructions as executed instances.
    ///
    /// The DEE path has been executing in the shadow of its branch since
    /// the branch dispatched (`path_start`), so each injected instruction
    /// carries its own data-flow completion time within the path; results
    /// become visible to the main line no earlier than `cycle + 1` (the
    /// state-copy penalty of §4.3).
    fn inject_dee_path(&mut self, start: u32, cycle: u64, path_start: u64) {
        use std::collections::HashMap;
        let limit = self.config.dee_path_len();
        let base = self.rob.len(); // injection appends after the branch
                                   // Value and intra-path availability time of DEE-path results.
        let mut temp_regs: HashMap<Reg, (i32, u64)> = HashMap::new();
        let mut temp_mem: HashMap<u32, (i32, u64)> = HashMap::new();
        let mut pc = start;

        // Any older store still unexecuted blocks load disambiguation for
        // the whole injected block.
        let stores_unknown = self
            .rob
            .iter()
            .take(base)
            .any(|i| i.is_sw && !i.executed_before(cycle + 1));

        for _ in 0..limit {
            if pc < self.w0 || pc >= self.w0 + self.config.n as u32 {
                break; // DEE columns only span the IQ
            }
            let Some(&instr) = self.program.get(pc) else {
                break;
            };
            let read = |r: Reg, tr: &HashMap<Reg, (i32, u64)>| -> Option<(i32, u64)> {
                if r.is_zero() {
                    return Some((0, 0));
                }
                if let Some(&vt) = tr.get(&r) {
                    return Some(vt);
                }
                self.reg_operand_timed(r, base, cycle + 1)
            };
            let fall = pc + 1;
            let mut exec = Exec {
                cycle: cycle + 1,
                value: None,
                addr: None,
                actual_next: fall,
                taken: None,
            };
            // Latest operand availability within the path.
            let mut ready = path_start;
            let take = |vt: (i32, u64), ready: &mut u64| -> i32 {
                *ready = (*ready).max(vt.1);
                vt.0
            };
            let next = match instr {
                Instr::Alu { op, rs, rt, .. } => {
                    let (Some(a), Some(b)) = (read(rs, &temp_regs), read(rt, &temp_regs)) else {
                        break;
                    };
                    exec.value = Some(op.apply(take(a, &mut ready), take(b, &mut ready)));
                    fall
                }
                Instr::AluImm { op, rs, imm, .. } => {
                    let Some(a) = read(rs, &temp_regs) else { break };
                    exec.value = Some(op.apply(take(a, &mut ready), imm));
                    fall
                }
                Instr::Li { imm, .. } => {
                    exec.value = Some(imm);
                    fall
                }
                Instr::Lw {
                    base: b, offset, ..
                } => {
                    let Some(bv) = read(b, &temp_regs) else { break };
                    let addr = u32::try_from(i64::from(take(bv, &mut ready)) + i64::from(offset))
                        .unwrap_or(u32::MAX);
                    exec.addr = Some(addr);
                    if let Some(&vt) = temp_mem.get(&addr) {
                        exec.value = Some(take(vt, &mut ready));
                    } else if stores_unknown {
                        break;
                    } else {
                        match self.mem_operand_timed(addr, base, cycle + 1) {
                            Some(vt) => exec.value = Some(take(vt, &mut ready)),
                            None => break,
                        }
                    }
                    fall
                }
                Instr::Sw {
                    rs,
                    base: b,
                    offset,
                } => {
                    let (Some(v), Some(bv)) = (read(rs, &temp_regs), read(b, &temp_regs)) else {
                        break;
                    };
                    let addr = u32::try_from(i64::from(take(bv, &mut ready)) + i64::from(offset))
                        .unwrap_or(u32::MAX);
                    exec.addr = Some(addr);
                    exec.value = Some(take(v, &mut ready));
                    fall
                }
                Instr::Branch {
                    cond,
                    rs,
                    rt,
                    target,
                } => {
                    let (Some(a), Some(b)) = (read(rs, &temp_regs), read(rt, &temp_regs)) else {
                        break;
                    };
                    let taken = cond.eval(take(a, &mut ready), take(b, &mut ready));
                    exec.taken = Some(taken);
                    exec.actual_next = if taken { target } else { fall };
                    exec.actual_next
                }
                Instr::Jump { target } => {
                    exec.actual_next = target;
                    target
                }
                Instr::Jal { target } => {
                    exec.value = Some(fall as i32);
                    exec.actual_next = target;
                    target
                }
                Instr::Jr { rs } => {
                    let Some(t) = read(rs, &temp_regs) else { break };
                    let Ok(t) = u32::try_from(take(t, &mut ready)) else {
                        break;
                    };
                    exec.actual_next = t;
                    t
                }
                Instr::Out { rs } => {
                    let Some(v) = read(rs, &temp_regs) else { break };
                    exec.value = Some(take(v, &mut ready));
                    fall
                }
                Instr::Halt => {
                    exec.actual_next = pc;
                    pc
                }
                Instr::Nop => fall,
            };
            // The instruction completes in the DEE path one cycle after its
            // operands; the main line sees it no earlier than the state
            // copy at `cycle + 1`.
            let path_time = ready + 1;
            exec.cycle = path_time.max(cycle + 1);
            if let Some(d) = instr.def() {
                temp_regs.insert(d, (exec.value.unwrap_or(0), path_time));
            }
            if let Some(addr) = exec.addr {
                if matches!(instr, Instr::Sw { .. }) {
                    temp_mem.insert(addr, (exec.value.unwrap_or(0), path_time));
                }
            }
            self.rob.push_back(Instance {
                pc,
                instr,
                def: self.decoded.def_of(pc),
                is_sw: self.decoded.is_store(pc),
                predicted_next: exec.actual_next,
                dispatch_cycle: cycle + 1,
                exec: Some(exec),
            });
            self.row_count[pc as usize] += 1;
            self.report.dee_injected += 1;
            self.report.dispatched += 1;
            if matches!(instr, Instr::Halt) {
                self.dispatch_blocked = true;
                break;
            }
            pc = next;
        }
        self.dispatch_pc = pc;
    }

    /// Retires executed instances in order; returns the number retired.
    fn retire_phase(&mut self) -> u64 {
        let cycle = self.cycle;
        let mut retired = 0u64;
        while let Some(front) = self.rob.front() {
            let Some(exec) = front.exec else { break };
            if exec.cycle > cycle {
                break;
            }
            let inst = self.rob.pop_front().expect("front exists");
            self.row_count[inst.pc as usize] -= 1;
            retired += 1;
            self.report.retired += 1;
            match inst.instr {
                Instr::Sw { .. } => {
                    let addr = exec.addr.expect("store executed");
                    if (addr as usize) < self.mem.len() {
                        self.mem[addr as usize] = exec.value.expect("store value");
                        self.mem_time.insert(addr, exec.cycle);
                    }
                }
                Instr::Out { .. } => self.output.push(exec.value.expect("out value")),
                Instr::Branch { .. } => {
                    self.predictor
                        .resolve(inst.pc, exec.taken.expect("branch resolved"));
                }
                Instr::Halt => {
                    self.done = true;
                    return retired;
                }
                _ => {}
            }
            if let Some(d) = inst.def {
                self.regs[d.index()] = exec.value.unwrap_or(0);
                self.reg_time[d.index()] = exec.cycle;
            }
        }
        retired
    }

    /// Dispatches down the predicted path; returns the number dispatched.
    fn dispatch_phase(&mut self) -> u64 {
        if self.done || self.dispatch_blocked || self.cycle < self.dispatch_resume {
            return 0;
        }
        let mut dispatched = 0u64;
        while dispatched < self.config.fetch_width as u64 {
            let pc = self.dispatch_pc;
            let Some(&instr) = self.program.get(pc) else {
                break; // invalid speculative target: wait for squash
            };
            if !self.window_admit(pc) {
                break;
            }
            if self.row_count[pc as usize] >= self.config.m as u32 {
                break; // all m columns of this row are in flight
            }

            let fall = pc + 1;
            let predicted_next = match instr {
                Instr::Branch { target, .. } => {
                    if self.predictor.predict(pc) {
                        target
                    } else {
                        fall
                    }
                }
                Instr::Jump { target } => target,
                Instr::Jal { target } => {
                    self.ras.push(fall);
                    if self.ras.len() > 64 {
                        self.ras.remove(0);
                    }
                    target
                }
                Instr::Jr { .. } => self.ras.pop().unwrap_or(fall),
                Instr::Halt => pc,
                _ => fall,
            };
            if predicted_next < pc {
                // Backward transfer: count capture for the loop statistic.
                if predicted_next >= self.w0 {
                    self.report.captured_backjumps += 1;
                } else {
                    self.report.uncaptured_backjumps += 1;
                }
            }
            self.rob.push_back(Instance {
                pc,
                instr,
                def: self.decoded.def_of(pc),
                is_sw: self.decoded.is_store(pc),
                predicted_next,
                dispatch_cycle: self.cycle,
                exec: None,
            });
            self.row_count[pc as usize] += 1;
            self.report.dispatched += 1;
            dispatched += 1;
            self.dispatch_pc = predicted_next;
            if matches!(instr, Instr::Halt) {
                self.dispatch_blocked = true;
                break;
            }
        }
        dispatched
    }

    /// Ensures `pc` lies in the static window, advancing or jumping the
    /// window when the IQ's occupancy rules allow it.
    fn window_admit(&mut self, pc: u32) -> bool {
        let n = self.config.n as u32;
        if pc >= self.w0 && pc < self.w0 + n {
            return true;
        }
        if self.rob.is_empty() {
            // Nothing in flight: the IQ reloads wherever execution goes.
            self.w0 = pc.saturating_sub(0);
            self.report.window_shifts += 1;
            return true;
        }
        if pc < self.w0 {
            return false; // uncaptured backward target: drain first
        }
        // Linear-mode advance: the window may slide down to the oldest
        // in-flight row.
        let min_active = self.rob.iter().map(|i| i.pc).min().expect("non-empty");
        let needed = pc + 1 - n;
        if needed <= min_active {
            self.w0 = needed;
            self.report.window_shifts += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::Assembler;
    use dee_vm::trace_program;

    fn run_levo(config: LevoConfig, program: &Program, mem: &[i32]) -> LevoReport {
        Levo::new(config).run(program, mem).expect("levo runs")
    }

    fn assert_matches_vm(config: LevoConfig, program: &Program, mem: &[i32]) -> LevoReport {
        let trace = trace_program(program, mem, 50_000_000).expect("vm runs");
        let report = run_levo(config, program, mem);
        assert_eq!(report.output, trace.output(), "output must match the VM");
        report
    }

    #[test]
    fn straight_line_code_executes_correctly() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 6);
        asm.li(r2, 7);
        asm.mul(r1, r1, r2);
        asm.out(r1);
        asm.halt();
        let p = asm.assemble().unwrap();
        let report = assert_matches_vm(LevoConfig::default(), &p, &[]);
        assert_eq!(report.retired, 5);
        assert!(report.cycles <= 6, "ILP should compress the schedule");
    }

    #[test]
    fn captured_loop_iterates_in_columns() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 20);
        asm.li(r2, 0);
        asm.label("top");
        asm.add(r2, r2, r1);
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r2);
        asm.halt();
        let p = asm.assemble().unwrap();
        let report = assert_matches_vm(LevoConfig::default(), &p, &[]);
        assert_eq!(report.output, vec![210]);
        assert_eq!(report.loop_capture_rate(), Some(1.0), "loop fits the IQ");
        assert!(
            report.ipc() > 1.0,
            "iterations overlap: ipc = {}",
            report.ipc()
        );
    }

    #[test]
    fn memory_flow_through_rob_and_retirement() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 99);
        asm.sw(r1, Reg::ZERO, 50);
        asm.lw(r2, Reg::ZERO, 50);
        asm.out(r2);
        asm.halt();
        let p = asm.assemble().unwrap();
        assert_matches_vm(LevoConfig::default(), &p, &[]);
    }

    #[test]
    fn calls_and_returns_via_ras() {
        let mut asm = Assembler::new();
        let r4 = Reg::new(4);
        asm.li(r4, 5);
        asm.call_label("double");
        asm.out(Reg::RV);
        asm.call_label("double");
        asm.out(Reg::RV);
        asm.halt();
        asm.label("double");
        asm.add(Reg::RV, r4, r4);
        asm.ret();
        let p = asm.assemble().unwrap();
        let report = assert_matches_vm(LevoConfig::default(), &p, &[]);
        assert_eq!(report.output, vec![10, 10]);
    }

    #[test]
    fn window_slides_in_linear_mode() {
        // A straight-line program longer than the IQ.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 0);
        for _ in 0..100 {
            asm.addi(r1, r1, 1);
        }
        asm.out(r1);
        asm.halt();
        let p = asm.assemble().unwrap();
        let report = assert_matches_vm(LevoConfig::default(), &p, &[]);
        assert_eq!(report.output, vec![100]);
        assert!(report.window_shifts > 0, "the 32-row window must slide");
    }

    #[test]
    fn uncaptured_loop_drains_and_refetches() {
        // Loop body longer than the window forces drain-and-move.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 4);
        asm.label("top");
        for _ in 0..40 {
            asm.nop();
        }
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        let config = LevoConfig {
            n: 32,
            ..LevoConfig::default()
        };
        let report = assert_matches_vm(config, &p, &[]);
        assert!(report.uncaptured_backjumps > 0);
        assert_eq!(report.loop_capture_rate(), Some(0.0));
    }

    #[test]
    fn workloads_produce_correct_output_with_dee() {
        for w in dee_workloads::all_workloads(dee_workloads::Scale::Tiny) {
            let report = run_levo(LevoConfig::default(), &w.program, &w.initial_memory);
            assert_eq!(report.output, w.expected_output, "{} output", w.name);
        }
    }

    #[test]
    fn workloads_produce_correct_output_without_dee() {
        for w in dee_workloads::all_workloads(dee_workloads::Scale::Tiny) {
            let report = run_levo(LevoConfig::condel2(), &w.program, &w.initial_memory);
            assert_eq!(report.output, w.expected_output, "{} output", w.name);
        }
    }

    #[test]
    fn dee_paths_do_not_change_results_but_save_cycles() {
        let w = dee_workloads::xlisp::build(dee_workloads::Scale::Tiny);
        let without = run_levo(LevoConfig::condel2(), &w.program, &w.initial_memory);
        let with = run_levo(LevoConfig::default(), &w.program, &w.initial_memory);
        let wide = run_levo(LevoConfig::levo_100(), &w.program, &w.initial_memory);
        assert_eq!(without.output, with.output);
        assert_eq!(with.output, wide.output);
        assert!(with.dee_covered > 0, "some mispredicts should be covered");
        assert!(
            with.cycles < without.cycles,
            "DEE should save cycles: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert!(wide.cycles <= with.cycles, "more DEE paths cannot hurt");
    }

    #[test]
    fn mispredict_penalty_is_configurable() {
        let w = dee_workloads::cc1::build(dee_workloads::Scale::Tiny);
        let fast = LevoConfig {
            mispredict_penalty: 0,
            ..LevoConfig::condel2()
        };
        let slow = LevoConfig {
            mispredict_penalty: 5,
            ..LevoConfig::condel2()
        };
        let fast_report = run_levo(fast, &w.program, &w.initial_memory);
        let slow_report = run_levo(slow, &w.program, &w.initial_memory);
        assert_eq!(fast_report.output, slow_report.output);
        assert!(fast_report.cycles < slow_report.cycles);
    }

    #[test]
    fn pap_predictor_option_preserves_results() {
        use crate::config::PredictorKind;
        for w in dee_workloads::all_workloads(dee_workloads::Scale::Tiny) {
            let config = LevoConfig {
                predictor: PredictorKind::PapSpeculative,
                ..LevoConfig::default()
            };
            let report = run_levo(config, &w.program, &w.initial_memory);
            assert_eq!(report.output, w.expected_output, "{}: pap output", w.name);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = LevoConfig {
            n: 0,
            ..LevoConfig::default()
        };
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let err = Levo::new(config).run(&p, &[]).unwrap_err();
        assert!(matches!(err, LevoError::Config(_)));
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.j_label("spin");
        asm.halt();
        let p = asm.assemble().unwrap();
        let config = LevoConfig {
            max_cycles: 100,
            ..LevoConfig::default()
        };
        let err = Levo::new(config).run(&p, &[]).unwrap_err();
        assert_eq!(err, LevoError::CycleLimit { limit: 100 });
    }

    #[test]
    fn ipc_exceeds_one_on_parallel_workloads() {
        let w = dee_workloads::eqntott::build(dee_workloads::Scale::Tiny);
        let report = run_levo(LevoConfig::default(), &w.program, &w.initial_memory);
        assert_eq!(report.output, w.expected_output);
        assert!(report.ipc() > 1.2, "ipc = {}", report.ipc());
    }
}
