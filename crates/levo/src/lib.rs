//! Levo: a cycle-level model of the paper's prototype DEE machine (§4).
//!
//! Levo extends the CONDEL-2 static-instruction-window microarchitecture:
//! an Instruction Queue (IQ) of `n` static instructions with `m` iteration
//! columns of bookkeeping state (RE/VE bits, Shadow-Sink and
//! Instruction-Sink-Address renaming matrices), one processing element and
//! one branch predictor per IQ row, minimal control dependences via
//! VE-predication, and Disjoint Eager Execution through extra state columns
//! that execute the opposite direction of the first `h_DEE` unresolved
//! predicted branches.
//!
//! This crate models those mechanisms at cycle level with an execution
//! engine that actually *runs* programs (architectural results are
//! validated against the functional VM):
//!
//! * **Static window**: only instructions whose static address lies in
//!   `[w0, w0 + n)` may be in flight; the window advances in linear-code
//!   mode when the program runs off its end, and *captures loops* whose
//!   backward branches stay inside it — each loop iteration occupies one of
//!   the `m` per-row instance columns, exactly CONDEL-2's RE/VE matrix
//!   geometry.
//! * **Data-flow execution**: an instance executes when its operands are
//!   available through renaming (latest older in-flight writer, else
//!   architectural state); one instance per row per cycle (one PE per row).
//!   Stores commit at retire; loads forward from executed older stores and
//!   conservatively wait for older stores whose address is unknown.
//! * **Branches**: predicted at dispatch by a per-row 2-bit counter
//!   (trained at retire, on the committed path only); `jr` targets come
//!   from a return-address stack. A misprediction squashes younger
//!   instances and redirects dispatch after a one-cycle penalty (§4.3).
//! * **DEE paths**: a mispredicted branch that holds one of the `dee_paths`
//!   DEE slots (it is among the first `dee_paths` unresolved branches) has
//!   already executed the correct continuation in its DEE column: up to
//!   `n × dee_cols` instructions down the correct path whose operands were
//!   available at resolution are injected as executed one cycle after the
//!   branch resolves — the state-copy penalty of §4.3 — instead of being
//!   re-fetched and re-executed.
//!
//! The [`cost`] module reproduces the paper's hardware-cost estimates
//! (transistor budget shares of the DEE additions).
//!
//! # Example
//!
//! ```
//! use dee_levo::{Levo, LevoConfig};
//! use dee_workloads::{xlisp, Scale};
//!
//! let w = xlisp::build(Scale::Tiny);
//! let report = Levo::new(LevoConfig::default())
//!     .run(&w.program, &w.initial_memory)
//!     .expect("runs to completion");
//! assert_eq!(report.output, w.expected_output);
//! assert!(report.ipc() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod cost;
mod machine;

pub use config::{LevoConfig, PredictorKind};
pub use machine::{Levo, LevoError, LevoReport};
