use std::fmt;

/// An execution model from §5.2 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Model {
    /// Eager Execution: both paths of every branch, breadth-first tree.
    Ee,
    /// Single Path: branch prediction only, restrictive control deps.
    Sp,
    /// Disjoint Eager Execution with restrictive control dependencies.
    Dee,
    /// SP with reduced control dependencies; branches serialized.
    SpCd,
    /// DEE with reduced control dependencies; branches serialized.
    DeeCd,
    /// SP with minimal control dependencies; branches execute in parallel.
    SpCdMf,
    /// DEE with minimal control dependencies; branches in parallel.
    DeeCdMf,
    /// Eager execution with unlimited resources; branches unconstrained.
    Oracle,
}

impl Model {
    /// The seven resource-constrained models, in the paper's listing order.
    #[must_use]
    pub fn all_constrained() -> [Model; 7] {
        [
            Model::Ee,
            Model::Sp,
            Model::Dee,
            Model::SpCd,
            Model::DeeCd,
            Model::SpCdMf,
            Model::DeeCdMf,
        ]
    }

    /// The paper's name for the model.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Model::Ee => "EE",
            Model::Sp => "SP",
            Model::Dee => "DEE",
            Model::SpCd => "SP-CD",
            Model::DeeCd => "DEE-CD",
            Model::SpCdMf => "SP-CD-MF",
            Model::DeeCdMf => "DEE-CD-MF",
            Model::Oracle => "Oracle",
        }
    }

    /// Whether the model uses the DEE static tree (coverage waivers).
    #[must_use]
    pub fn is_dee(self) -> bool {
        matches!(self, Model::Dee | Model::DeeCd | Model::DeeCdMf)
    }

    /// Whether the model restricts mispredict penalties to the
    /// control-dependence region (`-CD` variants).
    #[must_use]
    pub fn is_cd(self) -> bool {
        matches!(
            self,
            Model::SpCd | Model::DeeCd | Model::SpCdMf | Model::DeeCdMf
        )
    }

    /// Whether branches may resolve in parallel (`-MF` variants, EE, and
    /// the oracle).
    #[must_use]
    pub fn is_mf(self) -> bool {
        matches!(
            self,
            Model::SpCdMf | Model::DeeCdMf | Model::Ee | Model::Oracle
        )
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class instruction latencies in cycles.
///
/// The paper assumes unit latency throughout and lists non-unit latencies
/// as future work (§1.2, §5.3: "It is not yet clear what the net effect of
/// assuming non-unit latencies on the DEE-CD-MF model will be"). This
/// model lets the simulator answer that question: results are available to
/// consumers `latency` cycles after issue, and the ideal sequential
/// baseline takes the sum of latencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// Simple ALU operations, moves, and immediates.
    pub alu: u32,
    /// Multiply, divide, remainder.
    pub mul_div: u32,
    /// Loads and stores.
    pub mem: u32,
    /// Conditional branches and indirect jumps (resolution latency).
    pub branch: u32,
}

impl LatencyModel {
    /// The paper's machine: everything single-cycle.
    pub const UNIT: LatencyModel = LatencyModel {
        alu: 1,
        mul_div: 1,
        mem: 1,
        branch: 1,
    };

    /// A conventional early-90s pipeline: 4-cycle multiply/divide,
    /// 2-cycle memory, single-cycle ALU and branch resolution.
    pub const CLASSIC: LatencyModel = LatencyModel {
        alu: 1,
        mul_div: 4,
        mem: 2,
        branch: 1,
    };

    /// Validates that every latency is at least one cycle.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.alu >= 1 && self.mul_div >= 1 && self.mem >= 1 && self.branch >= 1
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::UNIT
    }
}

/// Configuration for one simulation run.
///
/// # Example
///
/// ```
/// use dee_ilpsim::{LatencyModel, Model, SimConfig};
///
/// let config = SimConfig::new(Model::DeeCdMf, 100)
///     .with_p(0.9053)
///     .with_latency(LatencyModel::CLASSIC)
///     .with_max_pe(64);
/// assert_eq!(config.et, 100);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// The execution model.
    pub model: Model,
    /// Branch-path resources `E_T` (ignored by the oracle).
    pub et: u32,
    /// Characteristic prediction accuracy for the DEE static tree shape.
    /// Defaults to the paper's measured 0.9053; pass the accuracy measured
    /// on your own traces for shape-faithful DEE trees.
    pub p: f64,
    /// Forward-scan cap for dynamic reconvergence searches in `-CD`
    /// models; branches whose join lies further away act restrictively.
    pub max_cd_scan: u32,
    /// Instruction latencies (default: the paper's unit latency).
    pub latency: LatencyModel,
    /// Explicit processing-element limit: at most this many instructions
    /// issue per cycle (fully pipelined PEs), scheduled greedily in
    /// program order. `None` reproduces the paper's implicit PE limit
    /// (bounded only by the branch paths in the window).
    pub max_pe: Option<u32>,
    /// Overrides the DEE tree shape: `(l, h)` instead of the §3.1
    /// heuristic, for tree-shape ablations. Must satisfy
    /// `l + h(h+1)/2 <= et`.
    pub dee_shape: Option<(u32, u32)>,
}

impl SimConfig {
    /// Creates a configuration with the paper's default `p` (0.9053).
    ///
    /// # Panics
    ///
    /// Panics if `et == 0` for a constrained model.
    #[must_use]
    pub fn new(model: Model, et: u32) -> Self {
        assert!(
            model == Model::Oracle || et >= 1,
            "constrained models need at least one branch path"
        );
        SimConfig {
            model,
            et,
            p: 0.9053,
            max_cd_scan: 4096,
            latency: LatencyModel::UNIT,
            max_pe: None,
            dee_shape: None,
        }
    }

    /// Sets the characteristic accuracy used to shape the DEE tree.
    #[must_use]
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Sets the reconvergence scan cap.
    #[must_use]
    pub fn with_max_cd_scan(mut self, cap: u32) -> Self {
        self.max_cd_scan = cap;
        self
    }

    /// Sets the instruction latency model.
    ///
    /// # Panics
    ///
    /// Panics if any latency is zero.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        assert!(latency.is_valid(), "latencies must be at least one cycle");
        self.latency = latency;
        self
    }

    /// Sets an explicit per-cycle PE (issue) limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_pe` is zero.
    #[must_use]
    pub fn with_max_pe(mut self, max_pe: u32) -> Self {
        assert!(max_pe >= 1, "need at least one PE");
        self.max_pe = Some(max_pe);
        self
    }

    /// Overrides the DEE tree's `(main-line length, h_DEE)` for shape
    /// ablations (ignored by non-DEE models).
    ///
    /// # Panics
    ///
    /// Panics unless `l >= 1` and `l + h(h+1)/2 <= et`.
    #[must_use]
    pub fn with_dee_shape(mut self, l: u32, h: u32) -> Self {
        assert!(l >= 1, "main line must be non-empty");
        assert!(
            l + h * (h + 1) / 2 <= self.et,
            "shape exceeds the resource budget"
        );
        self.dee_shape = Some((l, h));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Model::all_constrained().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "EE",
                "SP",
                "DEE",
                "SP-CD",
                "DEE-CD",
                "SP-CD-MF",
                "DEE-CD-MF"
            ]
        );
        assert_eq!(Model::Oracle.to_string(), "Oracle");
    }

    #[test]
    fn classification_flags() {
        assert!(Model::DeeCdMf.is_dee() && Model::DeeCdMf.is_cd() && Model::DeeCdMf.is_mf());
        assert!(Model::Dee.is_dee() && !Model::Dee.is_cd() && !Model::Dee.is_mf());
        assert!(!Model::Sp.is_dee() && !Model::Sp.is_cd() && !Model::Sp.is_mf());
        assert!(Model::SpCd.is_cd() && !Model::SpCd.is_mf());
        assert!(Model::Ee.is_mf() && !Model::Ee.is_cd());
        assert!(Model::Oracle.is_mf());
    }

    #[test]
    fn config_defaults() {
        let c = SimConfig::new(Model::Sp, 16);
        assert!((c.p - 0.9053).abs() < 1e-12);
        assert_eq!(c.max_cd_scan, 4096);
        assert_eq!(c.latency, LatencyModel::UNIT);
        assert_eq!(c.max_pe, None);
        let c = c
            .with_p(0.85)
            .with_max_cd_scan(100)
            .with_latency(LatencyModel::CLASSIC)
            .with_max_pe(8);
        assert!((c.p - 0.85).abs() < 1e-12);
        assert_eq!(c.max_cd_scan, 100);
        assert_eq!(c.latency.mul_div, 4);
        assert_eq!(c.max_pe, Some(8));
    }

    #[test]
    fn latency_models_valid() {
        assert!(LatencyModel::UNIT.is_valid());
        assert!(LatencyModel::CLASSIC.is_valid());
        assert!(!LatencyModel {
            alu: 0,
            ..LatencyModel::UNIT
        }
        .is_valid());
        assert_eq!(LatencyModel::default(), LatencyModel::UNIT);
    }

    #[test]
    #[should_panic(expected = "latencies must be at least one cycle")]
    fn zero_latency_rejected() {
        let _ = SimConfig::new(Model::Sp, 8).with_latency(LatencyModel {
            mem: 0,
            ..LatencyModel::UNIT
        });
    }

    #[test]
    #[should_panic(expected = "need at least one PE")]
    fn zero_pe_rejected() {
        let _ = SimConfig::new(Model::Sp, 8).with_max_pe(0);
    }

    #[test]
    fn dee_shape_override_validated() {
        let c = SimConfig::new(Model::DeeCdMf, 100).with_dee_shape(34, 11);
        assert_eq!(c.dee_shape, Some((34, 11)));
    }

    #[test]
    #[should_panic(expected = "shape exceeds the resource budget")]
    fn oversized_dee_shape_rejected() {
        let _ = SimConfig::new(Model::DeeCdMf, 10).with_dee_shape(10, 4);
    }

    #[test]
    fn oracle_allows_zero_et() {
        let c = SimConfig::new(Model::Oracle, 0);
        assert_eq!(c.et, 0);
    }

    #[test]
    #[should_panic(expected = "at least one branch path")]
    fn constrained_rejects_zero_et() {
        let _ = SimConfig::new(Model::Sp, 0);
    }
}
