use dee_isa::cfg::Cfg;
use dee_isa::{AluOp, Instr, Program};
use dee_predict::{BranchPredictor, TwoBitCounter};
use dee_vm::{Trace, TraceChunkSource, TraceRecord};

/// A trace annotated with everything the models need: per-record
/// misprediction flags (from a predictor replay), per-static-branch
/// reconvergence points (immediate post-dominators), and branch-path
/// indices.
///
/// Preparing once and simulating many configurations amortizes the
/// predictor replay and CFG analysis across the whole parameter sweep.
/// The representation is *columnar*: instead of holding the 40-byte
/// [`TraceRecord`]s, the models' hot loops read three dense per-record
/// columns (`meta`, `pcs`, `depths`, ~12 bytes/record) plus the load and
/// store address streams. Nothing here borrows the input trace, so a
/// prepared trace can be built incrementally from bounded chunks (see
/// [`PreparedTraceBuilder`]) and the full record vector never needs to
/// exist in memory at all.
#[derive(Clone, Debug)]
pub struct PreparedTrace {
    /// Number of dynamic records.
    pub(crate) len: usize,
    /// Per static pc: the branch's reconvergence point, if any.
    pub(crate) reconv: Vec<Option<u32>>,
    /// Number of branch paths.
    pub(crate) num_paths: u32,
    /// Per static pc: starting down the branch's *taken* side, can control
    /// re-reach the branch without passing its reconvergence point? (True
    /// for loop-closing directions: a wrong path that crosses an iteration
    /// boundary invalidates the operand context of everything younger, so
    /// `-CD` models treat such mispredicts restrictively.)
    pub(crate) loops_back_taken: Vec<bool>,
    /// Same, for the fall-through side.
    pub(crate) loops_back_fall: Vec<bool>,
    /// Per dynamic record: every field the hot simulate loops touch, fused
    /// into one u32 (see the `META_*` constants): source and destination
    /// register slots, memory-access and conditional-branch flags, the
    /// latency class, the branch direction, and the mispredict flag. One
    /// 4-byte load per record per cell instead of re-matching the ~40-byte
    /// `TraceRecord`.
    pub(crate) meta: Vec<u32>,
    /// Per dynamic record: the static pc (for `-CD` reconvergence scans).
    pub(crate) pcs: Vec<u32>,
    /// Per dynamic record: the call depth (for `-CD` reconvergence scans).
    pub(crate) depths: Vec<u32>,
    /// Effective word addresses of loads, in record order (records with
    /// the `META_HAS_READ` bit consume one entry each).
    pub(crate) read_addrs: Vec<u32>,
    /// Effective word addresses of stores, in record order (records with
    /// the `META_HAS_WRITE` bit consume one entry each).
    pub(crate) write_addrs: Vec<u32>,
    /// One past the highest memory word the trace touches, precomputed so
    /// every simulate call sizes its memory-time table without an extra
    /// full pass over the records.
    pub(crate) mem_words: usize,
    /// Dynamic record count per latency class (indexed by `InstrClass as
    /// usize`), giving O(1) sequential-machine cycles per latency model.
    pub(crate) class_counts: [u64; 4],
    /// Optional per-record memory-access latencies (e.g. from a cache
    /// model); overrides the configured `mem` latency per access.
    pub(crate) mem_latency: Option<Vec<u32>>,
    /// The program's output stream (carried through from the trace so
    /// byte-identity checks need no separate trace handle).
    output: Vec<i32>,
    /// Cached count of dynamic conditional branches.
    num_branches: u64,
    /// Cached count of mispredicted dynamic branches.
    num_mispredicts: u64,
    /// Measured accuracy of the predictor used for the flags.
    accuracy: f64,
}

impl PreparedTrace {
    /// Prepares `trace` with the paper's default predictor: the 2-bit
    /// saturating counter, one per static instruction, initialized weakly
    /// taken.
    #[must_use]
    pub fn new(program: &Program, trace: &Trace) -> Self {
        Self::with_predictor(program, trace, &mut TwoBitCounter::new())
    }

    /// Prepares `trace` with a caller-supplied predictor.
    #[must_use]
    pub fn with_predictor(
        program: &Program,
        trace: &Trace,
        predictor: &mut dyn BranchPredictor,
    ) -> Self {
        let mut builder = PreparedTraceBuilder::new(program, predictor);
        builder.reserve(trace.len());
        builder.push_chunk(trace.records());
        builder.finish(trace.output().to_vec())
    }

    /// Prepares a trace incrementally from a chunked producer, pulling at
    /// most `chunk_records` records at a time: the steady-state footprint
    /// is the columnar output plus one chunk buffer, never the full record
    /// vector. Byte-identical to [`with_predictor`] over the same stream.
    ///
    /// # Errors
    ///
    /// Propagates the source's transport/execution error.
    pub fn from_source(
        program: &Program,
        source: &mut dyn TraceChunkSource,
        chunk_records: usize,
        predictor: &mut dyn BranchPredictor,
    ) -> Result<Self, String> {
        let chunk = chunk_records.max(1);
        let mut builder = PreparedTraceBuilder::new(program, predictor);
        if let Some(hint) = source.len_hint() {
            // Trust the hint only up to a sane bound; hostile headers can
            // claim anything, and the columns grow fine without it.
            builder.reserve(usize::try_from(hint).unwrap_or(usize::MAX).min(1 << 20));
        }
        let mut buf: Vec<TraceRecord> = Vec::with_capacity(chunk);
        loop {
            buf.clear();
            if source.next_chunk(&mut buf, chunk)? == 0 {
                break;
            }
            builder.push_chunk(&buf);
        }
        let output = source.take_output()?;
        Ok(builder.finish(output))
    }

    /// Attaches per-record memory-access latencies (one entry per dynamic
    /// record; non-memory records are ignored), typically produced by
    /// `dee_mem::annotate_latencies`. Entries for memory records must be
    /// at least 1.
    ///
    /// # Panics
    ///
    /// Panics when the length does not match the trace or a memory
    /// record's latency is zero. Untrusted latency vectors should go
    /// through [`try_with_mem_latencies`](Self::try_with_mem_latencies).
    #[must_use]
    pub fn with_mem_latencies(self, latencies: Vec<u32>) -> Self {
        self.try_with_mem_latencies(latencies)
            .expect("invalid memory latencies")
    }

    /// Fallible form of [`with_mem_latencies`](Self::with_mem_latencies):
    /// validates instead of asserting, for latency vectors that arrive
    /// from outside the process.
    ///
    /// # Errors
    ///
    /// Returns a message when the length does not match the trace or a
    /// memory record's latency is zero.
    pub fn try_with_mem_latencies(mut self, latencies: Vec<u32>) -> Result<Self, String> {
        if latencies.len() != self.len {
            return Err(format!(
                "latency vector has {} entries for a {}-record trace",
                latencies.len(),
                self.len
            ));
        }
        for (i, (lat, &m)) in latencies.iter().zip(&self.meta).enumerate() {
            if m & (META_HAS_READ | META_HAS_WRITE) != 0 && *lat == 0 {
                return Err(format!("memory record {i} has zero latency"));
            }
        }
        self.mem_latency = Some(latencies);
        Ok(self)
    }

    /// Number of dynamic records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The program's output stream.
    #[must_use]
    pub fn output(&self) -> &[i32] {
        &self.output
    }

    /// Measured accuracy of the predictor that produced the flags — the
    /// natural choice for [`SimConfig::with_p`](crate::SimConfig::with_p).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Number of dynamic branch paths in the trace.
    #[must_use]
    pub fn num_paths(&self) -> u32 {
        self.num_paths
    }

    /// Number of dynamic conditional branches in the trace.
    #[must_use]
    pub fn num_branches(&self) -> u64 {
        self.num_branches
    }

    /// Number of mispredicted dynamic branches.
    #[must_use]
    pub fn num_mispredicts(&self) -> u64 {
        self.num_mispredicts
    }
}

/// Incremental [`PreparedTrace`] construction: feed records in order
/// (whole traces or bounded chunks), then [`finish`](Self::finish).
///
/// The CFG analysis (reconvergence points, loop-back classification) and
/// the per-pc latency classes depend only on the *program*, so they are
/// computed once up front; each pushed record is packed into the columnar
/// form and replayed through the predictor in stream order. Feeding the
/// same records in any chunking therefore yields bit-identical results.
pub struct PreparedTraceBuilder<'p> {
    class_of: Vec<InstrClass>,
    reconv: Vec<Option<u32>>,
    loops_back_taken: Vec<bool>,
    loops_back_fall: Vec<bool>,
    predictor: &'p mut dyn BranchPredictor,
    meta: Vec<u32>,
    pcs: Vec<u32>,
    depths: Vec<u32>,
    read_addrs: Vec<u32>,
    write_addrs: Vec<u32>,
    mem_words: usize,
    class_counts: [u64; 4],
    num_branches: u64,
    wrong: u64,
    last_was_branch: bool,
}

impl<'p> PreparedTraceBuilder<'p> {
    /// Runs the program-level analysis and readies an empty accumulator.
    #[must_use]
    pub fn new(program: &Program, predictor: &'p mut dyn BranchPredictor) -> Self {
        // The per-static-pc latency classes, resolved up front so the
        // per-record pass below can pack them per dynamic record.
        let class_of: Vec<InstrClass> = program
            .instrs()
            .iter()
            .map(|instr| match instr {
                Instr::Alu { op, .. } | Instr::AluImm { op, .. } => match op {
                    AluOp::Mul | AluOp::Div | AluOp::Rem => InstrClass::MulDiv,
                    _ => InstrClass::Alu,
                },
                Instr::Lw { .. } | Instr::Sw { .. } => InstrClass::Mem,
                Instr::Branch { .. } | Instr::Jr { .. } => InstrClass::Branch,
                _ => InstrClass::Alu,
            })
            .collect();

        let cfg = Cfg::new(program);
        let postdoms = cfg.postdominators();
        let mut reconv = vec![None; program.len()];
        let mut loops_back_taken = vec![false; program.len()];
        let mut loops_back_fall = vec![false; program.len()];
        for pc in program.cond_branch_pcs() {
            reconv[pc as usize] = postdoms.reconvergence(pc);
            let (target, fall) = match program[pc] {
                dee_isa::Instr::Branch { target, .. } => (target, pc + 1),
                _ => unreachable!("cond_branch_pcs returns branches"),
            };
            let stop = reconv[pc as usize];
            loops_back_taken[pc as usize] = reaches_without(&cfg, target, pc, stop);
            loops_back_fall[pc as usize] = reaches_without(&cfg, fall, pc, stop);
        }

        PreparedTraceBuilder {
            class_of,
            reconv,
            loops_back_taken,
            loops_back_fall,
            predictor,
            meta: Vec::new(),
            pcs: Vec::new(),
            depths: Vec::new(),
            read_addrs: Vec::new(),
            write_addrs: Vec::new(),
            mem_words: 0,
            class_counts: [0u64; 4],
            num_branches: 0,
            wrong: 0,
            last_was_branch: false,
        }
    }

    /// Pre-sizes the per-record columns for `records` entries.
    pub fn reserve(&mut self, records: usize) {
        self.meta.reserve(records);
        self.pcs.reserve(records);
        self.depths.reserve(records);
    }

    /// Packs one dynamic record into the columns and replays it through
    /// the predictor.
    pub fn push_record(&mut self, record: &TraceRecord) {
        let class = self.class_of[record.pc as usize];
        self.class_counts[class as usize] += 1;
        let mut m = record.srcs[0].map_or(META_READ_SINK, |r| r.index() as u32)
            | record.srcs[1].map_or(META_READ_SINK, |r| r.index() as u32) << META_SRC2_SHIFT
            | record.dst.map_or(META_WRITE_SINK, |r| r.index() as u32) << META_DST_SHIFT
            | (class as u32) << META_CLASS_SHIFT;
        if let Some(addr) = record.mem_read {
            m |= META_HAS_READ;
            self.read_addrs.push(addr);
            self.mem_words = self.mem_words.max(addr as usize + 1);
        }
        if let Some(addr) = record.mem_write {
            m |= META_HAS_WRITE;
            self.write_addrs.push(addr);
            self.mem_words = self.mem_words.max(addr as usize + 1);
        }
        self.last_was_branch = false;
        if let Some(outcome) = record.branch {
            m |= META_IS_COND;
            if outcome.taken {
                m |= META_TAKEN;
            }
            if self.predictor.predict(record.pc) != outcome.taken {
                m |= META_MISPREDICT;
                self.wrong += 1;
            }
            self.predictor.resolve(record.pc, outcome.taken);
            self.num_branches += 1;
            self.last_was_branch = true;
        }
        self.meta.push(m);
        self.pcs.push(record.pc);
        self.depths.push(record.depth);
    }

    /// Pushes a batch of records in order.
    pub fn push_chunk(&mut self, records: &[TraceRecord]) {
        for record in records {
            self.push_record(record);
        }
    }

    /// Number of records pushed so far.
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.meta.len()
    }

    /// Seals the accumulated columns into a [`PreparedTrace`].
    #[must_use]
    pub fn finish(self, output: Vec<i32>) -> PreparedTrace {
        let num_branches = self.num_branches;
        let accuracy = if num_branches == 0 {
            1.0
        } else {
            1.0 - self.wrong as f64 / num_branches as f64
        };
        let num_paths = if self.meta.is_empty() {
            0
        } else if self.last_was_branch {
            num_branches as u32
        } else {
            num_branches as u32 + 1
        };
        PreparedTrace {
            len: self.meta.len(),
            reconv: self.reconv,
            num_paths,
            loops_back_taken: self.loops_back_taken,
            loops_back_fall: self.loops_back_fall,
            meta: self.meta,
            pcs: self.pcs,
            depths: self.depths,
            read_addrs: self.read_addrs,
            write_addrs: self.write_addrs,
            mem_words: self.mem_words,
            class_counts: self.class_counts,
            mem_latency: None,
            output,
            num_branches,
            num_mispredicts: self.wrong,
            accuracy,
        }
    }
}

/// Bit layout of the packed per-record `meta` word.
///
/// Register fields hold 6-bit *slots* into a [`META_REG_SLOTS`]-entry
/// availability table: real registers occupy slots `0..Reg::COUNT`;
/// absent sources read the always-zero slot [`META_READ_SINK`] and an
/// absent destination writes the never-read slot [`META_WRITE_SINK`], so
/// the simulate loops have no per-operand branches at all.
pub(crate) const META_REG_MASK: u32 = 0x3F;
pub(crate) const META_SRC2_SHIFT: u32 = 6;
pub(crate) const META_DST_SHIFT: u32 = 12;
pub(crate) const META_HAS_READ: u32 = 1 << 18;
pub(crate) const META_HAS_WRITE: u32 = 1 << 19;
pub(crate) const META_IS_COND: u32 = 1 << 20;
pub(crate) const META_MISPREDICT: u32 = 1 << 21;
pub(crate) const META_CLASS_SHIFT: u32 = 22;
/// Actual direction of a conditional branch (set = taken); only
/// meaningful when `META_IS_COND` is set.
pub(crate) const META_TAKEN: u32 = 1 << 24;

/// Size of the register availability tables in the simulate loops.
pub(crate) const META_REG_SLOTS: usize = 64;

/// Slot absent sources read: nothing ever writes it, so it stays zero.
pub(crate) const META_READ_SINK: u32 = 63;

/// Slot absent destinations write: nothing ever reads it.
pub(crate) const META_WRITE_SINK: u32 = 62;

/// Latency class of a static instruction (see
/// [`LatencyModel`](crate::LatencyModel)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum InstrClass {
    /// Simple ALU / move / immediate.
    Alu,
    /// Multiply, divide, remainder.
    MulDiv,
    /// Load or store.
    Mem,
    /// Conditional branch or indirect jump.
    Branch,
}

/// Whether control starting at `from` can reach `goal` without passing
/// through `avoid` (the branch's reconvergence point). BFS over the CFG.
fn reaches_without(cfg: &Cfg, from: u32, goal: u32, avoid: Option<u32>) -> bool {
    if Some(from) == avoid {
        return false;
    }
    let mut visited = vec![false; (cfg.exit() + 1) as usize];
    let mut queue = vec![from];
    visited[from as usize] = true;
    while let Some(node) = queue.pop() {
        if node == goal {
            return true;
        }
        if node == cfg.exit() {
            continue;
        }
        for &s in cfg.successors(node) {
            if Some(s) == avoid || visited[s as usize] {
                continue;
            }
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{Assembler, Reg};
    use dee_vm::{trace_program, TraceChunks};

    fn countdown(n: i32) -> (Program, Trace) {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, n);
        asm.label("top");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100_000).unwrap();
        (p, t)
    }

    #[test]
    fn path_indices_advance_at_branches() {
        let (p, t) = countdown(3);
        let prepared = PreparedTrace::new(&p, &t);
        // records: li, addi, bgt, addi, bgt, addi, bgt, halt — the
        // trailing halt opens a fourth (partial) path.
        assert_eq!(prepared.num_paths(), 4);
        let cond_flags: Vec<bool> = prepared
            .meta
            .iter()
            .map(|&m| m & META_IS_COND != 0)
            .collect();
        assert_eq!(
            cond_flags,
            vec![false, false, true, false, true, false, true, false]
        );
    }

    #[test]
    fn num_paths_counts_trailing_branch_exactly() {
        // A trace that *ends* on the conditional branch: no trailing
        // partial path beyond it.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 1);
        asm.beq_label(r1, Reg::ZERO, "skip");
        asm.label("skip");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        // records: li, beq, halt — halt trails the branch, so 2 paths.
        assert_eq!(prepared.num_paths(), 2);
    }

    #[test]
    fn meta_packs_operands_and_sinks() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 7); // dst r1, no srcs
        asm.sw(r1, Reg::ZERO, 3); // src r1, mem write, no dst
        asm.lw(r2, Reg::ZERO, 3); // mem read, dst r2
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[0, 0, 0, 0], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        let m0 = prepared.meta[0];
        assert_eq!(m0 & META_REG_MASK, META_READ_SINK, "li reads nothing");
        assert_eq!((m0 >> META_DST_SHIFT) & META_REG_MASK, 1);
        let m1 = prepared.meta[1];
        assert_eq!(m1 & META_REG_MASK, 1, "sw reads r1");
        assert_eq!(
            (m1 >> META_DST_SHIFT) & META_REG_MASK,
            META_WRITE_SINK,
            "sw writes no register"
        );
        assert_ne!(m1 & META_HAS_WRITE, 0);
        let m2 = prepared.meta[2];
        assert_ne!(m2 & META_HAS_READ, 0);
        assert_eq!(prepared.read_addrs, vec![3]);
        assert_eq!(prepared.write_addrs, vec![3]);
        assert_eq!(prepared.mem_words, 4);
    }

    #[test]
    fn meta_records_branch_direction() {
        let (p, t) = countdown(2);
        let prepared = PreparedTrace::new(&p, &t);
        // records: li, addi, bgt(taken), addi, bgt(not taken), halt
        assert_ne!(prepared.meta[2] & META_TAKEN, 0);
        assert_eq!(prepared.meta[4] & META_TAKEN, 0);
        for (i, rec) in t.records().iter().enumerate() {
            assert_eq!(prepared.pcs[i], rec.pc);
            assert_eq!(prepared.depths[i], rec.depth);
        }
        assert_eq!(prepared.output(), t.output());
    }

    #[test]
    fn try_with_mem_latencies_validates_instead_of_panicking() {
        let (p, t) = countdown(3);
        let prepared = PreparedTrace::new(&p, &t);
        // Wrong length: typed error, not an assert.
        let err = prepared.try_with_mem_latencies(vec![1; 3]).unwrap_err();
        assert!(err.contains("3 entries"), "{err}");
        // Right length with no memory records: any latencies accepted.
        let prepared = PreparedTrace::new(&p, &t);
        let n = t.len();
        assert!(prepared.try_with_mem_latencies(vec![0; n]).is_ok());
    }

    #[test]
    fn try_with_mem_latencies_rejects_zero_latency_memory_records() {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.lw(r1, Reg::ZERO, 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[7], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        let err = prepared
            .try_with_mem_latencies(vec![0; t.len()])
            .unwrap_err();
        assert!(err.contains("zero latency"), "{err}");
        let prepared = PreparedTrace::new(&p, &t);
        assert!(prepared.try_with_mem_latencies(vec![2; t.len()]).is_ok());
    }

    #[test]
    fn accuracy_matches_flag_count() {
        let (p, t) = countdown(50);
        let prepared = PreparedTrace::new(&p, &t);
        let branches = t.num_cond_branches() as u64;
        let wrong = prepared.num_mispredicts();
        assert!((prepared.accuracy() - (1.0 - wrong as f64 / branches as f64)).abs() < 1e-12);
        // Counter inits taken; the loop mispredicts only near the exit.
        assert!(wrong <= 2, "wrong = {wrong}");
    }

    #[test]
    fn reconvergence_computed_for_branches_only() {
        let (p, t) = countdown(2);
        let prepared = PreparedTrace::new(&p, &t);
        // Static pc 2 is the loop branch, reconverging at halt (pc 3).
        assert_eq!(prepared.reconv[2], Some(3));
        assert_eq!(prepared.reconv[0], None);
        assert_eq!(prepared.reconv[1], None);
        let _ = t;
    }

    #[test]
    fn loop_back_edges_classified() {
        let (p, t) = countdown(2);
        let prepared = PreparedTrace::new(&p, &t);
        // pc 2: bgt -> pc 1 (backward). Taken side loops back to the
        // branch; fall-through exits.
        assert!(prepared.loops_back_taken[2]);
        assert!(!prepared.loops_back_fall[2]);
        let _ = t;
    }

    #[test]
    fn if_arms_do_not_loop_back() {
        // 0: beq -> 3 ; 1: nop ; 2: j 4 ; 3: nop ; 4: halt
        let mut asm = Assembler::new();
        asm.beq_label(Reg::new(1), Reg::ZERO, "arm");
        asm.nop();
        asm.j_label("join");
        asm.label("arm");
        asm.nop();
        asm.label("join");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        assert!(!prepared.loops_back_taken[0]);
        assert!(!prepared.loops_back_fall[0]);
    }

    #[test]
    fn forward_exit_test_loop_classified() {
        // Test-at-top loop: branch forward to exit; fall-through body jumps
        // back above the branch. The *fall-through* side loops back.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 3); // 0
        asm.label("top");
        asm.ble_label(r1, Reg::ZERO, "exit"); // 1
        asm.addi(r1, r1, -1); // 2
        asm.j_label("top"); // 3
        asm.label("exit");
        asm.halt(); // 4
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        assert!(!prepared.loops_back_taken[1], "taken side exits");
        assert!(
            prepared.loops_back_fall[1],
            "fall-through re-reaches the test"
        );
    }

    #[test]
    fn empty_like_trace_tolerated() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 10).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        assert_eq!(prepared.num_paths(), 1);
        assert_eq!(prepared.accuracy(), 1.0);
    }

    /// The streaming cornerstone: any chunking of the same record stream
    /// produces a bit-identical prepared trace.
    #[test]
    fn from_source_identical_to_with_predictor_at_every_chunk_size() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 25);
        asm.li(r2, 0);
        asm.label("top");
        asm.sw(r1, Reg::ZERO, 40);
        asm.lw(r2, Reg::ZERO, 40);
        asm.call_label("bump");
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.out(r2);
        asm.halt();
        asm.label("bump");
        asm.addi(r1, r1, -1);
        asm.ret();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100_000).unwrap();
        let whole = PreparedTrace::with_predictor(&p, &t, &mut TwoBitCounter::new());
        for chunk in [1usize, 7, 4093, 1 << 16] {
            let mut source = TraceChunks::new(&t);
            let streamed =
                PreparedTrace::from_source(&p, &mut source, chunk, &mut TwoBitCounter::new())
                    .unwrap();
            assert_eq!(streamed.meta, whole.meta, "chunk={chunk}");
            assert_eq!(streamed.pcs, whole.pcs);
            assert_eq!(streamed.depths, whole.depths);
            assert_eq!(streamed.read_addrs, whole.read_addrs);
            assert_eq!(streamed.write_addrs, whole.write_addrs);
            assert_eq!(streamed.class_counts, whole.class_counts);
            assert_eq!(streamed.mem_words, whole.mem_words);
            assert_eq!(streamed.num_paths(), whole.num_paths());
            assert_eq!(streamed.num_branches(), whole.num_branches());
            assert_eq!(streamed.num_mispredicts(), whole.num_mispredicts());
            assert_eq!(streamed.output(), whole.output());
            assert!((streamed.accuracy() - whole.accuracy()).abs() < 1e-15);
        }
    }

    #[test]
    fn from_source_handles_empty_stream() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let empty = Trace::from_parts(vec![], vec![]);
        let mut source = TraceChunks::new(&empty);
        let prepared =
            PreparedTrace::from_source(&p, &mut source, 64, &mut TwoBitCounter::new()).unwrap();
        assert_eq!(prepared.num_paths(), 0);
        assert!(prepared.is_empty());
    }
}
