use std::borrow::Cow;

use dee_isa::cfg::Cfg;
use dee_isa::{AluOp, Instr, Program};
use dee_predict::{BranchPredictor, TwoBitCounter};
use dee_vm::Trace;

/// A trace annotated with everything the models need: per-record
/// misprediction flags (from a predictor replay), per-static-branch
/// reconvergence points (immediate post-dominators), and branch-path
/// indices.
///
/// Preparing once and simulating many configurations amortizes the
/// predictor replay and CFG analysis across the whole parameter sweep.
/// The trace is held behind a [`Cow`]: the usual constructors borrow the
/// caller's trace, while [`into_owned`](Self::into_owned) detaches the
/// lifetime so prepared traces can live in long-lived caches (e.g. the
/// `dee-serve` prepared-trace cache).
#[derive(Clone, Debug)]
pub struct PreparedTrace<'a> {
    pub(crate) trace: Cow<'a, Trace>,
    /// Per static pc: the branch's reconvergence point, if any.
    pub(crate) reconv: Vec<Option<u32>>,
    /// Number of branch paths.
    pub(crate) num_paths: u32,
    /// Per static pc: starting down the branch's *taken* side, can control
    /// re-reach the branch without passing its reconvergence point? (True
    /// for loop-closing directions: a wrong path that crosses an iteration
    /// boundary invalidates the operand context of everything younger, so
    /// `-CD` models treat such mispredicts restrictively.)
    pub(crate) loops_back_taken: Vec<bool>,
    /// Same, for the fall-through side.
    pub(crate) loops_back_fall: Vec<bool>,
    /// Per dynamic record: every field the hot simulate loops touch, fused
    /// into one u32 (see the `META_*` constants): source and destination
    /// register slots, memory-access and conditional-branch flags, the
    /// latency class, and the mispredict flag. One 4-byte load per record
    /// per cell instead of re-matching the ~40-byte `TraceRecord`.
    pub(crate) meta: Vec<u32>,
    /// Effective word addresses of loads, in record order (records with
    /// the `META_HAS_READ` bit consume one entry each).
    pub(crate) read_addrs: Vec<u32>,
    /// Effective word addresses of stores, in record order (records with
    /// the `META_HAS_WRITE` bit consume one entry each).
    pub(crate) write_addrs: Vec<u32>,
    /// One past the highest memory word the trace touches, precomputed so
    /// every simulate call sizes its memory-time table without an extra
    /// full pass over the records.
    pub(crate) mem_words: usize,
    /// Dynamic record count per latency class (indexed by `InstrClass as
    /// usize`), giving O(1) sequential-machine cycles per latency model.
    pub(crate) class_counts: [u64; 4],
    /// Optional per-record memory-access latencies (e.g. from a cache
    /// model); overrides the configured `mem` latency per access.
    pub(crate) mem_latency: Option<Vec<u32>>,
    /// Cached count of dynamic conditional branches.
    num_branches: u64,
    /// Cached count of mispredicted dynamic branches.
    num_mispredicts: u64,
    /// Measured accuracy of the predictor used for the flags.
    accuracy: f64,
}

impl<'a> PreparedTrace<'a> {
    /// Prepares `trace` with the paper's default predictor: the 2-bit
    /// saturating counter, one per static instruction, initialized weakly
    /// taken.
    #[must_use]
    pub fn new(program: &Program, trace: &'a Trace) -> Self {
        Self::with_predictor(program, trace, &mut TwoBitCounter::new())
    }

    /// Prepares `trace` with a caller-supplied predictor.
    #[must_use]
    pub fn with_predictor(
        program: &Program,
        trace: &'a Trace,
        predictor: &mut dyn BranchPredictor,
    ) -> Self {
        // The per-static-pc latency classes, resolved up front so the
        // fused pass below can pack them per dynamic record.
        let class_of: Vec<InstrClass> = program
            .instrs()
            .iter()
            .map(|instr| match instr {
                Instr::Alu { op, .. } | Instr::AluImm { op, .. } => match op {
                    AluOp::Mul | AluOp::Div | AluOp::Rem => InstrClass::MulDiv,
                    _ => InstrClass::Alu,
                },
                Instr::Lw { .. } | Instr::Sw { .. } => InstrClass::Mem,
                Instr::Branch { .. } | Instr::Jr { .. } => InstrClass::Branch,
                _ => InstrClass::Alu,
            })
            .collect();

        // One linear pass fuses the record array into the packed `meta`
        // column plus the load/store address streams, and extracts the
        // conditional-branch stream (record index, static pc, outcome)
        // the predictor replays. Compared to replaying over the full
        // record array, the predictor update loop touches memory
        // linearly, and the accuracy count falls out of the same stream
        // instead of a second full pass.
        let records = trace.records();
        let n = records.len();
        let mut meta = Vec::with_capacity(n);
        let mut read_addrs: Vec<u32> = Vec::new();
        let mut write_addrs: Vec<u32> = Vec::new();
        let mut mem_words = 0usize;
        let mut class_counts = [0u64; 4];
        let mut branch_idx: Vec<u32> = Vec::new();
        let mut branch_pc: Vec<u32> = Vec::new();
        let mut branch_taken: Vec<bool> = Vec::new();
        for record in records {
            let class = class_of[record.pc as usize];
            class_counts[class as usize] += 1;
            let mut m = record.srcs[0].map_or(META_READ_SINK, |r| r.index() as u32)
                | record.srcs[1].map_or(META_READ_SINK, |r| r.index() as u32) << META_SRC2_SHIFT
                | record.dst.map_or(META_WRITE_SINK, |r| r.index() as u32) << META_DST_SHIFT
                | (class as u32) << META_CLASS_SHIFT;
            if let Some(addr) = record.mem_read {
                m |= META_HAS_READ;
                read_addrs.push(addr);
                mem_words = mem_words.max(addr as usize + 1);
            }
            if let Some(addr) = record.mem_write {
                m |= META_HAS_WRITE;
                write_addrs.push(addr);
                mem_words = mem_words.max(addr as usize + 1);
            }
            if let Some(outcome) = record.branch {
                m |= META_IS_COND;
                branch_idx.push(meta.len() as u32);
                branch_pc.push(record.pc);
                branch_taken.push(outcome.taken);
            }
            meta.push(m);
        }
        let mut wrong = 0u64;
        for ((&i, &pc), &taken) in branch_idx.iter().zip(&branch_pc).zip(&branch_taken) {
            if predictor.predict(pc) != taken {
                meta[i as usize] |= META_MISPREDICT;
                wrong += 1;
            }
            predictor.resolve(pc, taken);
        }
        let num_branches = branch_idx.len() as u64;
        let accuracy = if num_branches == 0 {
            1.0
        } else {
            1.0 - wrong as f64 / num_branches as f64
        };
        let num_paths = match records.last() {
            None => 0,
            Some(last) if last.is_cond_branch() => num_branches as u32,
            Some(_) => num_branches as u32 + 1,
        };

        let cfg = Cfg::new(program);
        let postdoms = cfg.postdominators();
        let mut reconv = vec![None; program.len()];
        let mut loops_back_taken = vec![false; program.len()];
        let mut loops_back_fall = vec![false; program.len()];
        for pc in program.cond_branch_pcs() {
            reconv[pc as usize] = postdoms.reconvergence(pc);
            let (target, fall) = match program[pc] {
                dee_isa::Instr::Branch { target, .. } => (target, pc + 1),
                _ => unreachable!("cond_branch_pcs returns branches"),
            };
            let stop = reconv[pc as usize];
            loops_back_taken[pc as usize] = reaches_without(&cfg, target, pc, stop);
            loops_back_fall[pc as usize] = reaches_without(&cfg, fall, pc, stop);
        }

        PreparedTrace {
            trace: Cow::Borrowed(trace),
            reconv,
            num_paths,
            loops_back_taken,
            loops_back_fall,
            meta,
            read_addrs,
            write_addrs,
            mem_words,
            class_counts,
            mem_latency: None,
            num_branches,
            num_mispredicts: wrong,
            accuracy,
        }
    }

    /// Attaches per-record memory-access latencies (one entry per dynamic
    /// record; non-memory records are ignored), typically produced by
    /// `dee_mem::annotate_latencies`. Entries for memory records must be
    /// at least 1.
    ///
    /// # Panics
    ///
    /// Panics when the length does not match the trace or a memory
    /// record's latency is zero. Untrusted latency vectors should go
    /// through [`try_with_mem_latencies`](Self::try_with_mem_latencies).
    #[must_use]
    pub fn with_mem_latencies(self, latencies: Vec<u32>) -> Self {
        self.try_with_mem_latencies(latencies)
            .expect("invalid memory latencies")
    }

    /// Fallible form of [`with_mem_latencies`](Self::with_mem_latencies):
    /// validates instead of asserting, for latency vectors that arrive
    /// from outside the process.
    ///
    /// # Errors
    ///
    /// Returns a message when the length does not match the trace or a
    /// memory record's latency is zero.
    pub fn try_with_mem_latencies(mut self, latencies: Vec<u32>) -> Result<Self, String> {
        if latencies.len() != self.trace.len() {
            return Err(format!(
                "latency vector has {} entries for a {}-record trace",
                latencies.len(),
                self.trace.len()
            ));
        }
        for (i, (lat, rec)) in latencies.iter().zip(self.trace.records()).enumerate() {
            if (rec.mem_read.is_some() || rec.mem_write.is_some()) && *lat == 0 {
                return Err(format!("memory record {i} has zero latency"));
            }
        }
        self.mem_latency = Some(latencies);
        Ok(self)
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Detaches the prepared trace from the borrowed input by cloning the
    /// trace exactly once, yielding a `'static` value that can be stored
    /// in caches or shared across threads.
    #[must_use]
    pub fn into_owned(self) -> PreparedTrace<'static> {
        PreparedTrace {
            trace: Cow::Owned(self.trace.into_owned()),
            reconv: self.reconv,
            num_paths: self.num_paths,
            loops_back_taken: self.loops_back_taken,
            loops_back_fall: self.loops_back_fall,
            meta: self.meta,
            read_addrs: self.read_addrs,
            write_addrs: self.write_addrs,
            mem_words: self.mem_words,
            class_counts: self.class_counts,
            mem_latency: self.mem_latency,
            num_branches: self.num_branches,
            num_mispredicts: self.num_mispredicts,
            accuracy: self.accuracy,
        }
    }

    /// Measured accuracy of the predictor that produced the flags — the
    /// natural choice for [`SimConfig::with_p`](crate::SimConfig::with_p).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Number of dynamic branch paths in the trace.
    #[must_use]
    pub fn num_paths(&self) -> u32 {
        self.num_paths
    }

    /// Number of dynamic conditional branches in the trace.
    #[must_use]
    pub fn num_branches(&self) -> u64 {
        self.num_branches
    }

    /// Number of mispredicted dynamic branches.
    #[must_use]
    pub fn num_mispredicts(&self) -> u64 {
        self.num_mispredicts
    }
}

/// Bit layout of the packed per-record `meta` word.
///
/// Register fields hold 6-bit *slots* into a [`META_REG_SLOTS`]-entry
/// availability table: real registers occupy slots `0..Reg::COUNT`;
/// absent sources read the always-zero slot [`META_READ_SINK`] and an
/// absent destination writes the never-read slot [`META_WRITE_SINK`], so
/// the simulate loops have no per-operand branches at all.
pub(crate) const META_REG_MASK: u32 = 0x3F;
pub(crate) const META_SRC2_SHIFT: u32 = 6;
pub(crate) const META_DST_SHIFT: u32 = 12;
pub(crate) const META_HAS_READ: u32 = 1 << 18;
pub(crate) const META_HAS_WRITE: u32 = 1 << 19;
pub(crate) const META_IS_COND: u32 = 1 << 20;
pub(crate) const META_MISPREDICT: u32 = 1 << 21;
pub(crate) const META_CLASS_SHIFT: u32 = 22;

/// Size of the register availability tables in the simulate loops.
pub(crate) const META_REG_SLOTS: usize = 64;

/// Slot absent sources read: nothing ever writes it, so it stays zero.
pub(crate) const META_READ_SINK: u32 = 63;

/// Slot absent destinations write: nothing ever reads it.
pub(crate) const META_WRITE_SINK: u32 = 62;

/// Latency class of a static instruction (see
/// [`LatencyModel`](crate::LatencyModel)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum InstrClass {
    /// Simple ALU / move / immediate.
    Alu,
    /// Multiply, divide, remainder.
    MulDiv,
    /// Load or store.
    Mem,
    /// Conditional branch or indirect jump.
    Branch,
}

/// Whether control starting at `from` can reach `goal` without passing
/// through `avoid` (the branch's reconvergence point). BFS over the CFG.
fn reaches_without(cfg: &Cfg, from: u32, goal: u32, avoid: Option<u32>) -> bool {
    if Some(from) == avoid {
        return false;
    }
    let mut visited = vec![false; (cfg.exit() + 1) as usize];
    let mut queue = vec![from];
    visited[from as usize] = true;
    while let Some(node) = queue.pop() {
        if node == goal {
            return true;
        }
        if node == cfg.exit() {
            continue;
        }
        for &s in cfg.successors(node) {
            if Some(s) == avoid || visited[s as usize] {
                continue;
            }
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dee_isa::{Assembler, Reg};
    use dee_vm::trace_program;

    fn countdown(n: i32) -> (Program, Trace) {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, n);
        asm.label("top");
        asm.addi(r1, r1, -1);
        asm.bgt_label(r1, Reg::ZERO, "top");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100_000).unwrap();
        (p, t)
    }

    #[test]
    fn path_indices_advance_at_branches() {
        let (p, t) = countdown(3);
        let prepared = PreparedTrace::new(&p, &t);
        // records: li, addi, bgt, addi, bgt, addi, bgt, halt — the
        // trailing halt opens a fourth (partial) path.
        assert_eq!(prepared.num_paths(), 4);
        let cond_flags: Vec<bool> = prepared
            .meta
            .iter()
            .map(|&m| m & META_IS_COND != 0)
            .collect();
        assert_eq!(
            cond_flags,
            vec![false, false, true, false, true, false, true, false]
        );
    }

    #[test]
    fn num_paths_counts_trailing_branch_exactly() {
        // A trace that *ends* on the conditional branch: no trailing
        // partial path beyond it.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 1);
        asm.beq_label(r1, Reg::ZERO, "skip");
        asm.label("skip");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        // records: li, beq, halt — halt trails the branch, so 2 paths.
        assert_eq!(prepared.num_paths(), 2);
    }

    #[test]
    fn meta_packs_operands_and_sinks() {
        let mut asm = Assembler::new();
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        asm.li(r1, 7); // dst r1, no srcs
        asm.sw(r1, Reg::ZERO, 3); // src r1, mem write, no dst
        asm.lw(r2, Reg::ZERO, 3); // mem read, dst r2
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[0, 0, 0, 0], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        let m0 = prepared.meta[0];
        assert_eq!(m0 & META_REG_MASK, META_READ_SINK, "li reads nothing");
        assert_eq!((m0 >> META_DST_SHIFT) & META_REG_MASK, 1);
        let m1 = prepared.meta[1];
        assert_eq!(m1 & META_REG_MASK, 1, "sw reads r1");
        assert_eq!(
            (m1 >> META_DST_SHIFT) & META_REG_MASK,
            META_WRITE_SINK,
            "sw writes no register"
        );
        assert_ne!(m1 & META_HAS_WRITE, 0);
        let m2 = prepared.meta[2];
        assert_ne!(m2 & META_HAS_READ, 0);
        assert_eq!(prepared.read_addrs, vec![3]);
        assert_eq!(prepared.write_addrs, vec![3]);
        assert_eq!(prepared.mem_words, 4);
    }

    #[test]
    fn try_with_mem_latencies_validates_instead_of_panicking() {
        let (p, t) = countdown(3);
        let prepared = PreparedTrace::new(&p, &t);
        // Wrong length: typed error, not an assert.
        let err = prepared.try_with_mem_latencies(vec![1; 3]).unwrap_err();
        assert!(err.contains("3 entries"), "{err}");
        // Right length with no memory records: any latencies accepted.
        let prepared = PreparedTrace::new(&p, &t);
        let n = t.len();
        assert!(prepared.try_with_mem_latencies(vec![0; n]).is_ok());
    }

    #[test]
    fn try_with_mem_latencies_rejects_zero_latency_memory_records() {
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.lw(r1, Reg::ZERO, 0);
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[7], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        let err = prepared
            .try_with_mem_latencies(vec![0; t.len()])
            .unwrap_err();
        assert!(err.contains("zero latency"), "{err}");
        let prepared = PreparedTrace::new(&p, &t);
        assert!(prepared.try_with_mem_latencies(vec![2; t.len()]).is_ok());
    }

    #[test]
    fn accuracy_matches_flag_count() {
        let (p, t) = countdown(50);
        let prepared = PreparedTrace::new(&p, &t);
        let branches = t.num_cond_branches() as u64;
        let wrong = prepared.num_mispredicts();
        assert!((prepared.accuracy() - (1.0 - wrong as f64 / branches as f64)).abs() < 1e-12);
        // Counter inits taken; the loop mispredicts only near the exit.
        assert!(wrong <= 2, "wrong = {wrong}");
    }

    #[test]
    fn reconvergence_computed_for_branches_only() {
        let (p, t) = countdown(2);
        let prepared = PreparedTrace::new(&p, &t);
        // Static pc 2 is the loop branch, reconverging at halt (pc 3).
        assert_eq!(prepared.reconv[2], Some(3));
        assert_eq!(prepared.reconv[0], None);
        assert_eq!(prepared.reconv[1], None);
        let _ = t;
    }

    #[test]
    fn loop_back_edges_classified() {
        let (p, t) = countdown(2);
        let prepared = PreparedTrace::new(&p, &t);
        // pc 2: bgt -> pc 1 (backward). Taken side loops back to the
        // branch; fall-through exits.
        assert!(prepared.loops_back_taken[2]);
        assert!(!prepared.loops_back_fall[2]);
        let _ = t;
    }

    #[test]
    fn if_arms_do_not_loop_back() {
        // 0: beq -> 3 ; 1: nop ; 2: j 4 ; 3: nop ; 4: halt
        let mut asm = Assembler::new();
        asm.beq_label(Reg::new(1), Reg::ZERO, "arm");
        asm.nop();
        asm.j_label("join");
        asm.label("arm");
        asm.nop();
        asm.label("join");
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        assert!(!prepared.loops_back_taken[0]);
        assert!(!prepared.loops_back_fall[0]);
    }

    #[test]
    fn forward_exit_test_loop_classified() {
        // Test-at-top loop: branch forward to exit; fall-through body jumps
        // back above the branch. The *fall-through* side loops back.
        let mut asm = Assembler::new();
        let r1 = Reg::new(1);
        asm.li(r1, 3); // 0
        asm.label("top");
        asm.ble_label(r1, Reg::ZERO, "exit"); // 1
        asm.addi(r1, r1, -1); // 2
        asm.j_label("top"); // 3
        asm.label("exit");
        asm.halt(); // 4
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 100).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        assert!(!prepared.loops_back_taken[1], "taken side exits");
        assert!(
            prepared.loops_back_fall[1],
            "fall-through re-reaches the test"
        );
    }

    #[test]
    fn empty_like_trace_tolerated() {
        let mut asm = Assembler::new();
        asm.halt();
        let p = asm.assemble().unwrap();
        let t = trace_program(&p, &[], 10).unwrap();
        let prepared = PreparedTrace::new(&p, &t);
        assert_eq!(prepared.num_paths(), 1);
        assert_eq!(prepared.accuracy(), 1.0);
    }
}
