use std::fmt;

use crate::model::Model;

/// The result of one simulation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimOutcome {
    /// The model simulated.
    pub model: Model,
    /// Branch-path resources (0 for the oracle).
    pub et: u32,
    /// Dynamic instructions in the trace.
    pub instructions: u64,
    /// Cycles the ideal sequential machine needs (equal to
    /// `instructions` under unit latency; the sum of latencies otherwise).
    pub sequential_cycles: u64,
    /// Total execution cycles under the model.
    pub cycles: u64,
    /// Dynamic conditional branches.
    pub branches: u64,
    /// Mispredicted dynamic branches (under the preparing predictor).
    pub mispredicts: u64,
    /// `resolve_level_histogram[k]` counts mispredicted branches that
    /// resolved at tree level `k + 1` (level 1 = the tree root). The last
    /// bucket accumulates deeper levels.
    pub resolve_level_histogram: Vec<u64>,
}

impl SimOutcome {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        model: Model,
        et: u32,
        instructions: u64,
        sequential_cycles: u64,
        cycles: u64,
        branches: u64,
        mispredicts: u64,
        resolve_level_histogram: Vec<u64>,
    ) -> Self {
        SimOutcome {
            model,
            et,
            instructions,
            sequential_cycles: sequential_cycles.max(1),
            cycles: cycles.max(1),
            branches,
            mispredicts,
            resolve_level_histogram,
        }
    }

    /// Speedup over the ideal sequential machine — exactly the paper's
    /// vertical axis. With unit latency this is `instructions / cycles`;
    /// with a non-unit [`LatencyModel`](crate::LatencyModel) the sequential
    /// machine pays the same latencies serially.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sequential_cycles as f64 / self.cycles as f64
    }

    /// Instructions per cycle (independent of the latency model).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// Fraction of resolved mispredictions at the tree root, the §5.3
    /// statistic ("around 70–80%"). `None` when there were no penalties.
    #[must_use]
    pub fn root_resolve_fraction(&self) -> Option<f64> {
        let total: u64 = self.resolve_level_histogram.iter().sum();
        if total == 0 {
            return None;
        }
        Some(self.resolve_level_histogram[0] as f64 / total as f64)
    }

    /// Misprediction rate of the preparing predictor on this trace.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

impl fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} paths: {:.2}x ({} instrs / {} cycles)",
            self.model,
            self.et,
            self.speedup(),
            self.instructions,
            self.cycles
        )
    }
}

/// Harmonic mean of positive values — the paper's cross-benchmark summary
/// statistic.
///
/// # Panics
///
/// Panics if `values` is empty or any value is not positive.
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "harmonic mean of no values");
    let mut sum = 0.0;
    for &v in values {
        assert!(v > 0.0, "harmonic mean needs positive values");
        sum += 1.0 / v;
    }
    values.len() as f64 / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(instrs: u64, cycles: u64) -> SimOutcome {
        SimOutcome::new(Model::Sp, 8, instrs, instrs, cycles, 10, 2, vec![3, 1, 0])
    }

    #[test]
    fn speedup_is_instructions_per_cycle() {
        let o = outcome(100, 25);
        assert!((o.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_clamped() {
        let o = outcome(10, 0);
        assert_eq!(o.cycles, 1);
    }

    #[test]
    fn root_fraction() {
        let o = outcome(100, 25);
        assert!((o.root_resolve_fraction().unwrap() - 0.75).abs() < 1e-12);
        let empty = SimOutcome::new(Model::Ee, 8, 10, 10, 5, 4, 0, vec![0, 0]);
        assert_eq!(empty.root_resolve_fraction(), None);
    }

    #[test]
    fn mispredict_rate() {
        let o = outcome(100, 25);
        assert!((o.mispredict_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_contains_model_and_speedup() {
        let s = outcome(100, 25).to_string();
        assert!(s.contains("SP"));
        assert!(s.contains("4.00x"));
    }

    #[test]
    fn harmonic_mean_reference() {
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 6.0]) - 3.0).abs() < 1e-12);
        // HM <= arithmetic mean.
        assert!(harmonic_mean(&[3.0, 5.0, 9.0]) < (3.0 + 5.0 + 9.0) / 3.0);
    }

    #[test]
    #[should_panic(expected = "harmonic mean of no values")]
    fn harmonic_mean_rejects_empty() {
        let _ = harmonic_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn harmonic_mean_rejects_nonpositive() {
        let _ = harmonic_mean(&[1.0, 0.0]);
    }
}
